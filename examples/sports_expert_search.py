#!/usr/bin/env python3
"""The paper's "49ers" walkthrough (§1, §6.1, Table 2) on synthetic data.

Picks the most popular sports topic (our "49ers"), then:

* shows the expertise domain the offline stage built around it
  (variants, activities, affiliated people — Figure 7's dark-blue set),
* shows the three closest communities (Figure 7's neighbours),
* compares baseline vs e# expert lists (Table 2),
* reveals the ground truth behind each returned account — including the
  *hidden experts*: accounts that are genuinely authoritative but never
  type the query term inside 140 characters.
"""

from repro import ESharp, ESharpConfig
from repro.community.neighbours import closest_communities


def main() -> None:
    system = ESharp(ESharpConfig.small(seed=42)).build()
    offline = system.offline
    world = offline.world

    # pick the sports topic where expansion helps most (our "49ers"):
    # scan head topics and keep the one with the widest e#-vs-baseline gap
    candidates = sorted(
        (t for t in world.topics_in_domain("sports")
         if t.microblog_affinity > 0.5),
        key=lambda t: t.popularity,
        reverse=True,
    )[:12]
    def gap(t):
        q = t.canonical.text
        return len(system.find_experts(q)) - len(
            system.find_experts_baseline(q)
        )
    topic = max(candidates, key=gap)
    query = topic.canonical.text
    print(f"our '49ers': {query!r}")
    print(f"  true surface forms: {', '.join(topic.keyword_texts())}")

    # ---- Figure 7: the community and its neighbours --------------------
    if query in offline.partition.assignment:
        community, neighbours = closest_communities(
            offline.multigraph, offline.partition, query
        )
        print(f"\ndomain built offline ({len(community)} keywords):")
        print("  " + ", ".join(community))
        print("closest communities:")
        for neighbour in neighbours:
            print(
                f"  [links={neighbour.link_weight}] "
                + ", ".join(neighbour.members[:6])
            )

    # ---- Table 2: baseline vs e# ---------------------------------------
    baseline = system.find_experts_baseline(query)
    esharp = system.find_experts(query)
    baseline_ids = {e.user_id for e in baseline}

    def describe(expert) -> str:
        user = system.platform.user(expert.user_id)
        genuine = user.is_expert_on(topic.topic_id)
        truth = "genuine expert" if genuine else f"({user.persona})"
        return f"{expert}   <- {truth}"

    print(f"\nBaseline — {len(baseline)} experts:")
    for expert in baseline[:6]:
        print("  " + describe(expert))

    print(f"\ne# — {len(esharp)} experts (* = newly found):")
    for expert in esharp[:10]:
        marker = "*" if expert.user_id not in baseline_ids else " "
        print(f" {marker} " + describe(expert))

    # ---- the recall story -----------------------------------------------
    hidden = [
        e for e in esharp
        if e.user_id not in baseline_ids
        and system.platform.user(e.user_id).is_expert_on(topic.topic_id)
    ]
    print(
        f"\nhidden experts recovered by expansion: {len(hidden)}"
    )
    for expert in hidden[:5]:
        user = system.platform.user(expert.user_id)
        preferred = user.preferred_keywords.get(topic.topic_id, ())
        print(
            f"  @{expert.screen_name} habitually writes "
            f"{', '.join(repr(k) for k in preferred)} — never {query!r}"
        )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""A guided tour of the offline stage (§4), including the Figure 4 SQL.

Walks the pipeline step by step with intermediate statistics:

1. the simulated search log and its support filter (§4.1),
2. click vectors → cosine similarity graph (Figure 2),
3. discretisation into the multigraph (footnote 1),
4. community detection — first three iterations narrated (Figure 3),
   then the same algorithm executed as *literal SQL* on the bundled
   relational engine (Figure 4),
5. the resulting domain store and its resource profile (Table 9).
"""

from repro.community.parallel import ParallelCommunityDetector, ParallelConfig
from repro.community.partition import singleton_partition
from repro.community.sizes import size_distribution
from repro.community.sql_runner import FIGURE4_SQL, SqlCommunityDetector
from repro.core.config import ESharpConfig
from repro.expansion.domainstore import DomainStore
from repro.querylog.generator import generate_query_log
from repro.simgraph.extract import extract_similarity_graph
from repro.simgraph.graph import MultiGraph
from repro.utils.timing import format_bytes
from repro.worldmodel.builder import build_world


def main() -> None:
    config = ESharpConfig.small(seed=42)

    # -- 1. the log -------------------------------------------------------
    world = build_world(config.world)
    store = generate_query_log(world, config.querylog)
    supported = store.supported_queries()
    print("§4.1 — the search log")
    print(f"  impressions: {store.impressions:,} "
          f"({format_bytes(store.raw_bytes)} raw)")
    print(f"  distinct queries: {store.distinct_queries():,}")
    print(f"  after min-support filter (≥{store.min_support}): "
          f"{len(supported):,}")

    # -- 2-3. the similarity graph ---------------------------------------
    extraction = extract_similarity_graph(store, config.similarity)
    graph = extraction.multigraph
    print("\n§4.1 — the term similarity graph (Figure 2)")
    print(f"  vertices: {graph.vertex_count:,}")
    print(f"  distinct edges: {graph.distinct_edge_count:,}")
    print(f"  unit edges after discretisation (m_G): {graph.total_edges:,}")

    # -- 4a. narrated clustering -----------------------------------------
    print("\n§4.2 — parallel modularity maximisation (Figure 3)")
    detector = ParallelCommunityDetector(graph, ParallelConfig())
    partition = singleton_partition(graph.vertices())
    for iteration in range(1, 4):
        targets = detector.choose_targets(partition)
        partition = detector.apply_targets(partition, targets)
        print(
            f"  iteration {iteration}: {len(targets)} communities found a "
            f"positive-gain neighbour → {partition.community_count()} "
            "communities"
        )
    final = detector.run()
    print(f"  ... ran to convergence: {final.community_count()} communities "
          f"in {len(detector.history) - 1} iterations")
    for bucket in size_distribution(final):
        print(f"    size {bucket.label:<13} {bucket.count:>5} "
              f"({bucket.fraction:.0%})")

    # -- 4b. the same thing as SQL ----------------------------------------
    print("\n§4.2.2 — the same algorithm as SQL (Figure 4):")
    print(FIGURE4_SQL)
    small = MultiGraph()
    for index, (u, v, m) in enumerate(graph.edges()):
        if index >= 600:
            break
        small.add_edge(u, v, m)
    sql_detector = SqlCommunityDetector(small, ParallelConfig(max_iterations=6))
    sql_partition = sql_detector.run()
    stats = sql_detector.run_stats
    print(
        f"  ran on a {small.vertex_count}-vertex subgraph: "
        f"{sql_partition.community_count()} communities in "
        f"{stats.iterations} iterations "
        f"({stats.rows_read:,} rows scanned, "
        f"{format_bytes(stats.bytes_written)} materialised)"
    )

    # -- 5. the product -----------------------------------------------------
    domains = DomainStore.from_partition(final)
    print("\n§5 — the domain collection")
    print(f"  {domains.domain_count} domains over {domains.keyword_count} "
          f"keywords ({format_bytes(domains.storage_bytes())})")
    example = next(
        d for d in domains.domains() if len(d) >= 3
    )
    print(f"  example domain: {', '.join(example.keywords[:8])}")
    print(f"  lookup('{example.keywords[0]}') → "
          f"{domains.expand(example.keywords[0])[:5]}")


if __name__ == "__main__":
    main()

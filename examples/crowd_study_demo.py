#!/usr/bin/env python3
"""The crowdsourcing protocol of §6.2.1, observable end to end.

Runs the full judging machinery for a handful of queries: gold-question
screening, interleaving of both algorithms' results, ≤6-expert chunks,
three judgments per account, majority voting — then compares the crowd's
impurity estimate with the exact ground-truth impurity (which only a
simulator can reveal).
"""

from repro import ESharp, ESharpConfig
from repro.crowd.metrics import impurity, true_impurity
from repro.crowd.study import CrowdStudy, StudyConfig


def main() -> None:
    system = ESharp(ESharpConfig.small(seed=42)).build()
    world = system.offline.world
    study = CrowdStudy(world, system.platform, StudyConfig(seed=7))

    screened = study.pool.screened()
    spammers_in = sum(1 for w in study.pool.workers if w.is_spammer)
    spammers_out = sum(1 for w in screened if w.is_spammer)
    print("worker pool")
    print(f"  recruited: {len(study.pool)} "
          f"(including {spammers_in} spammers)")
    print(f"  passed the gold screen: {len(screened)} "
          f"(spammers remaining: {spammers_out})")

    queries = [
        t.canonical.text
        for t in sorted(
            (t for t in world.topics if t.microblog_affinity > 0.5),
            key=lambda t: t.popularity,
            reverse=True,
        )[:5]
    ]

    print(f"\n{'query':<24} {'judged':>6} {'crowd imp':>10} {'true imp':>9}")
    for query in queries:
        baseline = system.find_experts_baseline(query)
        esharp = system.find_experts(query)
        outcome = study.judge_results(query, baseline, esharp)
        merged = {e.user_id: e for e in baseline + esharp}
        experts = list(merged.values())
        crowd = impurity(query, experts, outcome)
        relevance = {
            (query, e.user_id): study.truly_relevant(query, e.user_id)
            for e in experts
        }
        exact = true_impurity(query, experts, relevance)
        print(
            f"{query:<24} {outcome.judged_count():>6} "
            f"{crowd:>10.3f} {exact:>9.3f}"
        )

    print(
        "\nthe crowd's majority vote tracks ground truth closely — the "
        "noise\nintroduced by unreliable and unknowledgeable workers "
        "largely cancels\nunder 3-way voting, which is what the paper's "
        "protocol relies on."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Tuning the z-score threshold on health queries (Figures 9 & 10).

The detector's one user-facing knob is the minimum z-score (§6.2.3): a
low value returns many mediocre experts, a high value a few excellent
ones.  This example sweeps the threshold over the health query set and
prints, for baseline and e#:

* average experts per query (Figure 9's y-axis), and
* *true* impurity measured against the simulator's ground truth — the
  quantity the paper could only estimate with crowdworkers.
"""

from repro import ESharp, ESharpConfig
from repro.eval.querysets import QuerySetConfig, build_query_sets


def main() -> None:
    system = ESharp(ESharpConfig.small(seed=42)).build()
    offline = system.offline
    world = offline.world

    sets = build_query_sets(
        world, offline.store, QuerySetConfig(per_domain=15, top_set=30,
                                             min_frequency=5)
    )
    health = next(s for s in sets if s.name == "health")
    print(f"health queries ({len(health)}): {', '.join(health.examples(6))}\n")

    def relevant(query: str, user_id: int) -> bool:
        topic = world.primary_topic_for(query)
        if topic is None:
            return False
        user = system.platform.user(user_id)
        if user.is_expert_on(topic.topic_id):
            return True
        return user.persona == "broad_expert" and topic.domain in {
            world.topic(t).domain for t in user.expert_topics
        }

    header = (
        f"{'min z':>6} | {'base n/q':>8} {'base imp':>8} | "
        f"{'e# n/q':>8} {'e# imp':>8}"
    )
    print(header)
    print("-" * len(header))
    for threshold in (0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0):
        stats = {}
        for name, pools in (
            ("base", [system.find_experts_baseline(q, threshold)
                      for q in health.queries]),
            ("e#", [system.find_experts(q, threshold)
                    for q in health.queries]),
        ):
            total = sum(len(p) for p in pools)
            bad = sum(
                1
                for query, pool in zip(health.queries, pools)
                for expert in pool
                if not relevant(query, expert.user_id)
            )
            stats[name] = (
                total / len(health.queries),
                bad / total if total else 0.0,
            )
        print(
            f"{threshold:>6.1f} | {stats['base'][0]:>8.2f} "
            f"{stats['base'][1]:>8.3f} | {stats['e#'][0]:>8.2f} "
            f"{stats['e#'][1]:>8.3f}"
        )

    print(
        "\nreading: e# sustains a much higher expert count at every "
        "threshold;\ncompare impurities at equal n/q (different rows) to "
        "see the paper's\n'minimal, if not negligible' precision penalty."
    )


if __name__ == "__main__":
    main()

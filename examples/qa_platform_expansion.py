#!/usr/bin/env python3
"""§8 future work, realised: e# on a Quora-style Q&A platform.

The paper argues its expansion layer "can work with any Expertise
Retrieval system" and names Quora as the next target.  This example
builds a Q&A platform (questions, long-form answers, ask-to-answer
requests, shares) from the same world model, then runs the *unchanged*
Pal & Counts detector and e# online path over it — the expansion
collection still comes from the simulated web-search log.
"""

from repro.community.parallel import ParallelCommunityDetector
from repro.core.config import ESharpConfig
from repro.detector.palcounts import PalCountsDetector
from repro.detector.ranking import RankingConfig
from repro.expansion.domainstore import DomainStore
from repro.expansion.expander import QueryExpander
from repro.qa import QAConfig, generate_qa_platform
from repro.querylog.generator import generate_query_log
from repro.simgraph.extract import extract_similarity_graph
from repro.worldmodel.builder import build_world


def main() -> None:
    config = ESharpConfig.small(seed=42)
    world = build_world(config.world)

    print("building the Q&A platform...")
    qa = generate_qa_platform(world, QAConfig(seed=42, posts=20_000))
    print(f"  {qa}")
    sample = next(
        p for p in qa.tweets() if qa.kind_of(p.tweet_id) == "answer"
    )
    print(f"  sample answer ({len(sample.text)} chars): {sample.text[:90]}...")

    print("\nbuilding the expansion collection from the search log...")
    store = generate_query_log(world, config.querylog)
    graph = extract_similarity_graph(store, config.similarity).multigraph
    partition = ParallelCommunityDetector(graph).run()
    domains = DomainStore.from_partition(partition)
    print(f"  {domains}")

    detector = PalCountsDetector(qa, RankingConfig(min_zscore=1.0))
    expander = QueryExpander(domains, detector)

    queries = [
        t.canonical.text
        for t in sorted(
            (t for t in world.topics if t.microblog_affinity > 0.5),
            key=lambda t: t.popularity,
            reverse=True,
        )[:20]
    ]
    base_cov = esh_cov = base_n = esh_n = 0
    for query in queries:
        baseline = detector.detect(query)
        esharp = expander.detect(query).experts
        base_cov += bool(baseline)
        esh_cov += bool(esharp)
        base_n += len(baseline)
        esh_n += len(esharp)

    print(f"\nover {len(queries)} head queries on the Q&A platform:")
    print(f"  baseline: coverage {base_cov}/{len(queries)}, "
          f"{base_n} experts total")
    print(f"  e#:       coverage {esh_cov}/{len(queries)}, "
          f"{esh_n} experts total")

    query = max(
        queries,
        key=lambda q: len(expander.detect(q).experts)
        - len(detector.detect(q)),
    )
    print(f"\nbest showcase query: {query!r}")
    for expert in expander.detect(query).experts[:5]:
        user = qa.user(expert.user_id)
        role = "top writer" if user.is_expert else user.persona
        print(f"  {expert}   <- {role}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: build an e# system and find experts for a query.

Runs the complete pipeline at small scale (≈15 s):

1. build the synthetic world (topics, keywords, URLs),
2. offline stage — simulate a search log, extract the term-similarity
   graph, cluster it into expertise domains (§4),
3. generate the microblog corpus,
4. online stage — answer a query with and without expansion (§3, §5).

Usage::

    python examples/quickstart.py [query]
"""

import sys

from repro import ESharp, ESharpConfig


def main() -> None:
    print("building e# (small scale)...")
    system = ESharp(ESharpConfig.small(seed=42)).build()
    offline = system.offline
    print(
        f"  world: {len(offline.world.topics)} topics, "
        f"{len(offline.world.vocabulary())} keyword surface forms"
    )
    print(
        f"  domains: {offline.domain_store.domain_count} communities over "
        f"{offline.domain_store.keyword_count} logged keywords"
    )
    print(
        f"  corpus: {system.platform.tweet_count} tweets by "
        f"{system.platform.user_count} users"
    )

    if len(sys.argv) > 1:
        query = " ".join(sys.argv[1:])
    else:
        # default: the head sports query where expansion helps most
        candidates = sorted(
            (t for t in offline.world.topics_in_domain("sports")
             if t.microblog_affinity > 0.5),
            key=lambda t: t.popularity,
            reverse=True,
        )[:12]
        query = max(
            (t.canonical.text for t in candidates),
            key=lambda q: len(system.find_experts(q))
            - len(system.find_experts_baseline(q)),
        )

    print(f"\nquery: {query!r}")
    terms = system.expansion_terms(query)
    print(f"expansion terms ({len(terms)}): {', '.join(terms[:8])}"
          + (" ..." if len(terms) > 8 else ""))

    baseline = system.find_experts_baseline(query)
    esharp = system.find_experts(query)

    print(f"\nbaseline (Pal & Counts) — {len(baseline)} experts:")
    for expert in baseline[:5]:
        print(f"  {expert}")
    print(f"\ne# (with expansion) — {len(esharp)} experts:")
    baseline_ids = {e.user_id for e in baseline}
    for expert in esharp[:8]:
        marker = " " if expert.user_id in baseline_ids else "*"
        print(f" {marker} {expert}")
    new = sum(1 for e in esharp if e.user_id not in baseline_ids)
    print(f"\n* = {new} experts the baseline missed")


if __name__ == "__main__":
    main()

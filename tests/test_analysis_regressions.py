"""Regression tests for the violations the analyzer surfaced (PR 7).

Each test pins one concrete fix: typed errors where bare builtins used
to escape, stats reads that now take their lock, and the artifact
serialization that used to run inside the swap lock.
"""

from __future__ import annotations

import pytest

from repro.analysis.lockwatch import LockWatch, install, uninstall
from repro.artifact.errors import ArtifactError, ArtifactVersionError
from repro.artifact.store import ArtifactBuilder
from repro.fleet.errors import (
    FleetError,
    PromotionError,
    WorkerProtocolError,
)
from repro.fleet.merge import merge_partials
from repro.fleet.worker import FleetWorker
from repro.serving.admission import AdmissionController
from repro.serving.errors import AdmissionProtocolError, ServingError
from repro.serving.snapshot import StaleSnapshotError


class TestTypedErrors:
    def test_admission_release_without_acquire(self):
        with pytest.raises(AdmissionProtocolError):
            AdmissionController().release()
        # still a RuntimeError for pre-hierarchy callers
        assert issubclass(AdmissionProtocolError, RuntimeError)

    def test_worker_promote_before_preload(self):
        worker = FleetWorker.__new__(FleetWorker)
        with pytest.raises(PromotionError):
            FleetWorker._dispatch(worker, {"op": "promote"})

    def test_worker_unknown_op(self):
        worker = FleetWorker.__new__(FleetWorker)
        with pytest.raises(WorkerProtocolError):
            FleetWorker._dispatch(worker, {"op": "definitely-not-an-op"})

    def test_merge_with_no_pools(self):
        with pytest.raises(FleetError):
            merge_partials([], threshold=0.0, max_results=10)

    def test_finalize_rejects_bad_version_typed(self):
        builder = ArtifactBuilder.__new__(ArtifactBuilder)
        with pytest.raises(ArtifactVersionError):
            builder.finalize(0)
        assert issubclass(ArtifactVersionError, ArtifactError)

    def test_stale_snapshot_error_joined_the_hierarchy(self):
        assert issubclass(StaleSnapshotError, ServingError)
        # the re-parenting must not break RuntimeError handlers
        assert issubclass(StaleSnapshotError, RuntimeError)


class TestStatsReadsTakeTheirLock:
    """The counter properties used to read shared state without the lock;
    under the sanitizer, each read must now acquire it."""

    def test_singleflight_properties_acquire(self):
        watch = install(LockWatch())
        try:
            from repro.serving.singleflight import SingleFlight

            flight = SingleFlight()
            before = watch.acquisitions
            assert flight.leaders == 0
            assert flight.coalesced == 0
            assert watch.acquisitions >= before + 2
        finally:
            uninstall()

    def test_scheduler_properties_acquire(self):
        watch = install(LockWatch())
        try:
            from repro.serving.workers import MicroBatchScheduler, WorkerPool

            pool = WorkerPool(1, name="t-an-reg")
            scheduler = MicroBatchScheduler(pool)
            try:
                before = watch.acquisitions
                assert scheduler.batches_dispatched == 0
                assert scheduler.coalesced == 0
                assert watch.acquisitions >= before + 2
            finally:
                scheduler.close()
                pool.shutdown()
        finally:
            uninstall()


class TestSaveArtifactOutsideSwapLock:
    def test_serialization_runs_with_the_lock_released(
        self, system, tmp_path, monkeypatch
    ):
        """save_artifact() collects under _swap_lock but must write
        outside it — the disk I/O used to stall refresh/promote."""
        import repro.artifact as artifact_pkg

        observed = {}
        real = artifact_pkg.save_artifact

        def spying_save(path, **kwargs):
            observed["locked_during_write"] = system._swap_lock.locked()
            return real(path, **kwargs)

        monkeypatch.setattr(artifact_pkg, "save_artifact", spying_save)
        manifest = system.save_artifact(tmp_path / "artifact")
        assert observed["locked_during_write"] is False
        assert manifest.snapshot_version == system.snapshots.version

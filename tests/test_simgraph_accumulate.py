"""The one-pass accumulator similarity join vs the seed reference scan.

The contract is *byte identity*: over any query-log store, any
``min_similarity`` floor, and any ``max_posting_list`` hub cutoff, the
accumulator must return exactly the edge dict the seed scan returns —
same keys, bitwise-equal floats — on every backend and on the sharded
multi-process path.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.querylog.records import Impression
from repro.querylog.store import QueryLogStore
from repro.simgraph.accumulate import (
    JoinStats,
    accumulate_similarity_edges,
    accumulator_similarity_join,
)
from repro.simgraph.similarity import SimilarityConfig, similarity_edges
from repro.simgraph.vectors import SparseVector, build_click_vectors

# small alphabets force heavy URL sharing, which is where candidate
# enumeration, hub skipping and accumulation order all interact
queries = st.sampled_from([f"q{i}" for i in range(8)])
urls = st.sampled_from([f"u{i}" for i in range(6)])
impressions = st.builds(
    Impression,
    query=queries,
    clicked_urls=st.lists(urls, max_size=4).map(tuple),
)


def build_store(events, min_support: int = 1) -> QueryLogStore:
    store = QueryLogStore(min_support=min_support)
    store.extend(events)
    return store


def assert_byte_identical(expected, actual) -> None:
    assert set(expected) == set(actual)
    for key, weight in expected.items():
        assert actual[key] == weight, key


class TestEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(
        events=st.lists(impressions, max_size=60),
        min_similarity=st.sampled_from([0.0, 0.08, 0.5, 1.0]),
        max_posting_list=st.integers(2, 8),
        min_support=st.integers(1, 3),
    )
    def test_matches_seed_scan_over_random_stores(
        self, events, min_similarity, max_posting_list, min_support
    ):
        store = build_store(events, min_support)
        vectors = build_click_vectors(store)
        config = SimilarityConfig(
            min_similarity=min_similarity, max_posting_list=max_posting_list
        )
        expected = similarity_edges(vectors, config)
        assert_byte_identical(
            expected, accumulate_similarity_edges(vectors, config)
        )
        assert_byte_identical(
            expected,
            accumulate_similarity_edges(vectors, config, backend="python"),
        )

    def test_hub_components_still_count_toward_cosine(self):
        # u_hub is clicked by three queries -> skipped for candidate
        # generation at max_posting_list=2, but a/b share u1 so they pair
        # up, and their cosine must still include the hub components
        vectors = {
            "a": SparseVector({"u1": 2, "u_hub": 3}),
            "b": SparseVector({"u1": 1, "u_hub": 5}),
            "c": SparseVector({"u_hub": 7}),
        }
        config = SimilarityConfig(min_similarity=0.0, max_posting_list=2)
        expected = similarity_edges(vectors, config)
        assert set(expected) == {("a", "b")}  # c only shares the hub
        for backend in ("numpy", "python"):
            assert_byte_identical(
                expected,
                accumulate_similarity_edges(vectors, config, backend=backend),
            )

    def test_hub_only_pairs_generate_no_candidates(self):
        vectors = {
            f"q{i}": SparseVector({"hub": i + 1}) for i in range(10)
        }
        config = SimilarityConfig(max_posting_list=5)
        assert accumulate_similarity_edges(vectors, config) == {}

    def test_similarity_floor_is_inclusive(self):
        # two identical vectors have cosine exactly 1.0; the floor keeps it
        vectors = {
            "a": SparseVector({"u": 3}),
            "b": SparseVector({"u": 3}),
        }
        config = SimilarityConfig(min_similarity=1.0)
        edges = accumulate_similarity_edges(vectors, config)
        assert edges == similarity_edges(vectors, config)
        assert ("a", "b") in edges

    def test_huge_counts_fall_back_to_exact_backend(self):
        # products beyond 2**53 would round in float64; the gate must
        # route to the big-int backend and still match the seed scan
        big = 2**40
        vectors = {
            "a": SparseVector({"u1": big, "u2": 3}),
            "b": SparseVector({"u1": big - 1, "u2": 7}),
        }
        config = SimilarityConfig(min_similarity=0.0)
        result = accumulator_similarity_join(vectors, config)
        assert result.stats.backend == "python"
        assert_byte_identical(
            similarity_edges(vectors, config), result.edges
        )

    def test_empty_input(self):
        result = accumulator_similarity_join({}, SimilarityConfig())
        assert result.edges == {}
        assert result.stats.queries == 0
        assert result.stats.workers == 1


class TestShardedPool:
    def test_forced_pool_is_byte_identical_and_honest(self, query_store, small_config):
        vectors = build_click_vectors(query_store)
        serial = accumulator_similarity_join(vectors, small_config.similarity)
        pooled = accumulator_similarity_join(
            vectors,
            small_config.similarity,
            workers=3,
            force_workers=True,
        )
        assert_byte_identical(serial.edges, pooled.edges)
        assert pooled.stats.workers == 3
        assert pooled.stats.shards == 3
        assert serial.stats.workers == 1

    def test_small_joins_stay_serial_regardless_of_request(self):
        # the work-size gate: a join far below _MIN_POOL_OPS must never
        # pay for a process pool, on any machine, however many workers
        # were requested — and the honest stats must say so
        vectors = {
            "a": SparseVector({"u1": 1, "u2": 2}),
            "b": SparseVector({"u1": 2, "u3": 1}),
            "c": SparseVector({"u2": 1, "u3": 2}),
        }
        result = accumulator_similarity_join(
            vectors, SimilarityConfig(min_similarity=0.0), workers=64
        )
        assert result.stats.workers == 1
        assert result.stats.shards == 1

    def test_python_backend_pool(self, query_store, small_config):
        vectors = build_click_vectors(query_store)
        serial = accumulate_similarity_edges(
            vectors, small_config.similarity, backend="python"
        )
        pooled = accumulate_similarity_edges(
            vectors,
            small_config.similarity,
            workers=2,
            force_workers=True,
            backend="python",
        )
        assert_byte_identical(serial, pooled)


class TestValidation:
    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            accumulator_similarity_join({}, workers=0)

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            accumulator_similarity_join({}, backend="cuda")

    def test_stats_shape(self, query_store, small_config):
        result = accumulator_similarity_join(
            build_click_vectors(query_store), small_config.similarity
        )
        stats = result.stats
        assert isinstance(stats, JoinStats)
        assert stats.edges == len(result.edges)
        assert stats.candidate_pairs >= stats.edges
        assert stats.accumulate_ops >= stats.candidate_pairs

"""Zipf sampling."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.utils.zipf import ZipfSampler, zipf_weights


class TestZipfWeights:
    def test_basic_values(self):
        assert zipf_weights(3) == [1.0, 0.5, 1 / 3]

    def test_exponent_zero_is_uniform(self):
        assert zipf_weights(4, 0.0) == [1.0, 1.0, 1.0, 1.0]

    def test_empty(self):
        assert zipf_weights(0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            zipf_weights(-1)

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            zipf_weights(5, -0.5)

    @given(st.integers(1, 200), st.floats(0.0, 3.0))
    def test_monotone_decreasing(self, count, exponent):
        weights = zipf_weights(count, exponent)
        assert all(a >= b for a, b in zip(weights, weights[1:]))


class TestZipfSampler:
    def test_sample_in_range(self):
        sampler = ZipfSampler(10, rng=random.Random(0))
        for _ in range(100):
            assert 0 <= sampler.sample() < 10

    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(20, 1.3, random.Random(0))
        total = sum(sampler.probability(i) for i in range(20))
        assert abs(total - 1.0) < 1e-9

    def test_head_heavier_than_tail(self):
        sampler = ZipfSampler(50, 1.0, random.Random(1))
        draws = sampler.sample_many(5000)
        head = sum(1 for d in draws if d == 0)
        tail = sum(1 for d in draws if d == 49)
        assert head > tail

    def test_empirical_matches_theoretical(self):
        sampler = ZipfSampler(5, 1.0, random.Random(2))
        draws = sampler.sample_many(20000)
        freq0 = draws.count(0) / len(draws)
        assert abs(freq0 - sampler.probability(0)) < 0.02

    def test_deterministic_given_rng(self):
        a = ZipfSampler(10, rng=random.Random(5)).sample_many(20)
        b = ZipfSampler(10, rng=random.Random(5)).sample_many(20)
        assert a == b

    def test_sample_item(self):
        items = ["a", "b", "c"]
        sampler = ZipfSampler(3, rng=random.Random(0))
        assert sampler.sample_item(items) in items

    def test_sample_item_length_mismatch(self):
        sampler = ZipfSampler(3, rng=random.Random(0))
        with pytest.raises(ValueError):
            sampler.sample_item(["only", "two"])

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)

    def test_negative_draws_rejected(self):
        sampler = ZipfSampler(3, rng=random.Random(0))
        with pytest.raises(ValueError):
            sampler.sample_many(-1)

    def test_probability_index_bounds(self):
        sampler = ZipfSampler(3, rng=random.Random(0))
        with pytest.raises(IndexError):
            sampler.probability(3)

"""The Quora-style Q&A substrate (§8 future work) and detector reuse."""

import pytest

from repro.detector.palcounts import PalCountsDetector
from repro.detector.ranking import RankingConfig
from repro.expansion.domainstore import DomainStore, ExpertiseDomain
from repro.expansion.expander import QueryExpander
from repro.microblog.tweets import Tweet
from repro.microblog.users import UserProfile
from repro.qa.config import QAConfig
from repro.qa.generator import QAGenerator, generate_qa_platform
from repro.qa.platform import QAPlatform


class TestQAConfig:
    def test_defaults_valid(self):
        QAConfig()

    def test_rate_bounds(self):
        with pytest.raises(ValueError):
            QAConfig(share_rate=1.5)

    def test_max_chars_floor(self):
        with pytest.raises(ValueError):
            QAConfig(max_chars=50)


class TestQAPlatform:
    @pytest.fixture
    def qa(self):
        platform = QAPlatform()
        platform.add_user(UserProfile(1, "asker", "d", "casual", ()))
        platform.add_user(UserProfile(2, "writer", "d", "focused_expert", (1,)))
        question = Tweet(tweet_id=1, author_id=1, text="how good is topicx?")
        platform.add_post(question, kind="question")
        answer = Tweet(tweet_id=2, author_id=2, text="topicx is solid")
        platform.add_post(answer, kind="answer", answers=1)
        share = Tweet(
            tweet_id=3, author_id=1, text="sharing: topicx is solid",
            retweet_of=2, mentions=(2,),
        )
        platform.add_post(share, kind="share")
        return platform

    def test_kind_tracking(self, qa):
        assert qa.kind_of(1) == "question"
        assert qa.kind_of(2) == "answer"
        assert qa.count_kind("share") == 1

    def test_answer_links_to_question(self, qa):
        assert qa.question_of(2) == 1
        with pytest.raises(KeyError):
            qa.question_of(1)

    def test_share_requires_reference(self, qa):
        with pytest.raises(ValueError):
            qa.add_post(
                Tweet(tweet_id=9, author_id=1, text="x"), kind="share"
            )

    def test_answer_requires_question(self, qa):
        with pytest.raises(ValueError):
            qa.add_post(Tweet(tweet_id=9, author_id=2, text="x"), kind="answer")

    def test_unknown_kind_rejected(self, qa):
        with pytest.raises(ValueError):
            qa.add_post(Tweet(tweet_id=9, author_id=1, text="x"), kind="rant")

    def test_share_credits_author_like_retweet(self, qa):
        # the detector's RI feature depends on this mapping
        assert qa.totals(2).retweets_received == 1
        assert qa.totals(2).mentions_received == 1


class TestQAGeneration:
    @pytest.fixture(scope="class")
    def qa(self, world):
        return generate_qa_platform(
            world, QAConfig(seed=5, posts=8_000, askers=150)
        )

    def test_post_count(self, qa):
        assert qa.tweet_count == 8_000

    def test_all_kinds_generated(self, qa):
        assert qa.count_kind("question") > 0
        assert qa.count_kind("answer") > 0
        assert qa.count_kind("share") > 0

    def test_answers_linked(self, qa):
        for post in qa.tweets():
            if qa.kind_of(post.tweet_id) == "answer":
                question_id = qa.question_of(post.tweet_id)
                assert qa.kind_of(question_id) == "question"

    def test_shares_reference_answers(self, qa):
        for post in qa.tweets():
            if qa.kind_of(post.tweet_id) == "share":
                assert qa.kind_of(post.retweet_of) == "answer"

    def test_posts_respect_length(self, qa):
        assert all(len(p.text) <= 500 for p in qa.tweets())

    def test_some_posts_longer_than_tweets(self, qa):
        assert any(len(p.text) > 140 for p in qa.tweets())

    def test_deterministic(self, world):
        config = QAConfig(seed=5, posts=500, askers=40)
        a = QAGenerator(world, config).build()
        b = QAGenerator(world, config).build()
        assert [t.text for t in a.tweets()] == [t.text for t in b.tweets()]

    def test_search_only_topics_have_no_writers(self, qa, world):
        ghost = {
            t.topic_id for t in world.topics if t.microblog_affinity < 0.5
        }
        for user in qa.users():
            if user.persona == "focused_expert":
                assert not (set(user.expert_topics) & ghost)


class TestDetectorOnQA:
    """The §7 claim: e# works with any expertise-retrieval substrate."""

    @pytest.fixture(scope="class")
    def qa(self, world):
        return generate_qa_platform(
            world, QAConfig(seed=5, posts=12_000, askers=150)
        )

    @pytest.fixture(scope="class")
    def detector(self, qa):
        return PalCountsDetector(qa, RankingConfig(min_zscore=0.5))

    def test_detector_runs_unchanged(self, qa, detector, world):
        answered = 0
        for topic in world.topics:
            if topic.microblog_affinity < 0.5:
                continue
            if detector.detect(topic.canonical.text):
                answered += 1
        assert answered > 0

    def test_writers_rank_above_askers(self, qa, detector, world):
        hits = genuine = 0
        for topic in sorted(
            (t for t in world.topics if t.microblog_affinity > 0.5),
            key=lambda t: t.popularity, reverse=True,
        )[:10]:
            for expert in detector.detect(topic.canonical.text)[:3]:
                hits += 1
                if qa.user(expert.user_id).is_expert_on(topic.topic_id):
                    genuine += 1
        if hits == 0:
            pytest.skip("no answers at this scale")
        assert genuine / hits > 0.5

    def test_expansion_helps_on_qa(self, qa, detector, world, multigraph):
        from repro.community.parallel import ParallelCommunityDetector

        partition = ParallelCommunityDetector(multigraph).run()
        expander = QueryExpander(DomainStore.from_partition(partition), detector)
        queries = [
            t.canonical.text
            for t in world.topics
            if t.microblog_affinity > 0.5
        ][:25]
        base = sum(len(detector.detect(q)) for q in queries)
        expanded = sum(len(expander.detect(q).experts) for q in queries)
        assert expanded >= base

"""Deterministic fault injection: plans, the injector's trigger
schedule, wire-frame mangling, and the crash-atomic artifact publish.

The load-bearing property is *determinism*: a seeded
:class:`~repro.chaos.FaultPlan` makes the same decisions every run, so a
failure a chaos test finds is a failure a human can replay.  The second
property is the torn-write regression at the bottom: a crash injected
mid-``save_artifact`` must leave the previous complete generation
loadable, never a half-written directory.
"""

from __future__ import annotations

import io
import time

import pytest

from repro.chaos import (
    ChaosCrashError,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    inject,
)
from repro.chaos.inject import CORRUPTION
from repro.core.esharp import ESharp
from repro.fleet import WorkerProtocolError, wire


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """Every test leaves the process chaos-free."""
    yield
    inject.uninstall()


def crash_spec(site: str, **kwargs) -> FaultSpec:
    return FaultSpec(site=site, kind="crash", **kwargs)


# -- the plan ----------------------------------------------------------------


class TestFaultPlan:
    def test_round_trips_through_json(self):
        plan = FaultPlan(
            seed=7,
            faults=(
                FaultSpec(
                    site="wire.worker.write",
                    kind="corrupt_frame",
                    after_calls=2,
                    times=3,
                    probability=0.5,
                    match=(("worker", "replica-1"),),
                ),
                FaultSpec(site="worker.dispatch", kind="exit", exit_code=9),
                FaultSpec(
                    site="replica.call", kind="latency", seconds=0.25
                ),
            ),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultSpec(site="s", kind="meteor")

    def test_schedule_fields_are_validated(self):
        with pytest.raises(FaultPlanError, match="non-empty site"):
            crash_spec("")
        with pytest.raises(FaultPlanError, match="after_calls"):
            crash_spec("s", after_calls=-1)
        with pytest.raises(FaultPlanError, match="times"):
            crash_spec("s", times=-1)
        with pytest.raises(FaultPlanError, match="probability"):
            crash_spec("s", probability=1.5)
        with pytest.raises(FaultPlanError, match="seconds > 0"):
            FaultSpec(site="s", kind="latency")
        with pytest.raises(FaultPlanError, match="registry key"):
            FaultSpec(site="s", kind="error")

    def test_malformed_json_is_typed(self):
        with pytest.raises(FaultPlanError, match="not valid JSON"):
            FaultPlan.from_json("{nope")
        with pytest.raises(FaultPlanError, match="must be an object"):
            FaultPlan.from_json("[1]")
        with pytest.raises(FaultPlanError, match="must be a list"):
            FaultPlan.from_json('{"faults": 3}')
        with pytest.raises(FaultPlanError, match="malformed fault spec"):
            FaultPlan.from_json('{"faults": [{"kind": "crash"}]}')


# -- the injector's trigger schedule ------------------------------------------


class TestInjectorSchedule:
    def test_after_calls_then_times_bounds_firing(self):
        injector = FaultInjector(
            FaultPlan(faults=(crash_spec("s", after_calls=2, times=1),))
        )
        decisions = [injector.decide("s", {}) for _ in range(5)]
        assert [d is not None for d in decisions] == [
            False, False, True, False, False,
        ]
        assert injector.call_count("s") == 5
        assert injector.events() == [("s", "crash")]

    def test_times_zero_means_unlimited(self):
        injector = FaultInjector(
            FaultPlan(faults=(crash_spec("s", times=0),))
        )
        assert all(
            injector.decide("s", {}) is not None for _ in range(10)
        )

    def test_match_filters_compare_as_strings(self):
        spec = crash_spec("s", times=0, match=(("op", "query"),))
        injector = FaultInjector(FaultPlan(faults=(spec,)))
        assert injector.decide("s", {"op": "health"}) is None
        assert injector.decide("s", {}) is None
        assert injector.decide("s", {"op": "query"}) is spec
        # non-string context values match through str()
        numbered = crash_spec("n", times=0, match=(("shard", "2"),))
        injector2 = FaultInjector(FaultPlan(faults=(numbered,)))
        assert injector2.decide("n", {"shard": 2}) is numbered

    def test_unmatched_calls_do_not_consume_the_schedule(self):
        spec = crash_spec("s", after_calls=1, match=(("op", "query"),))
        injector = FaultInjector(FaultPlan(faults=(spec,)))
        # a flood of non-matching traffic leaves after_calls untouched
        for _ in range(5):
            assert injector.decide("s", {"op": "health"}) is None
        assert injector.decide("s", {"op": "query"}) is None  # skipped
        assert injector.decide("s", {"op": "query"}) is spec

    def test_other_tenants_never_consume_a_tenant_scoped_budget(self):
        """A plan targeting one tenant's traffic must fire on exactly
        the scheduled calls *of that tenant*, no matter how much other
        tenants' traffic interleaves at the same site — otherwise a
        noisy neighbour would silently burn the spec's
        ``after_calls``/``times`` schedule."""
        spec = crash_spec(
            "replica.call", after_calls=1, times=1, match=(("tenant", "a"),)
        )
        injector = FaultInjector(FaultPlan(faults=(spec,)))
        for _ in range(5):
            assert injector.decide("replica.call", {"tenant": "b"}) is None
        assert injector.decide("replica.call", {"tenant": "a"}) is None
        for _ in range(5):  # more interleaved foreign traffic
            assert injector.decide("replica.call", {"tenant": "b"}) is None
        assert injector.decide("replica.call", {"tenant": "a"}) is spec
        assert injector.decide("replica.call", {"tenant": "a"}) is None

    def test_probabilistic_specs_replay_identically(self):
        plan = FaultPlan(
            seed=99, faults=(crash_spec("s", times=0, probability=0.4),)
        )
        pattern_a = [
            FaultInjector(plan).decide("s", {}) is not None
            for _ in range(1)
        ]
        runs = []
        for _ in range(2):
            injector = FaultInjector(plan)
            runs.append(
                [injector.decide("s", {}) is not None for _ in range(64)]
            )
        assert runs[0] == runs[1]  # seeded: same decisions every run
        assert any(runs[0]) and not all(runs[0])
        del pattern_a


# -- module hooks: fire / install / env ---------------------------------------


class TestModuleHooks:
    def test_fire_is_a_noop_without_a_plan(self):
        assert inject.active() is None
        inject.fire("anything.at.all", op="query")  # must not raise

    def test_installed_scopes_the_plan(self):
        plan = FaultPlan(faults=(crash_spec("site"),))
        with inject.installed(plan):
            with pytest.raises(ChaosCrashError, match="injected crash"):
                inject.fire("site")
        assert inject.active() is None
        inject.fire("site")  # uninstalled: back to a no-op

    def test_error_faults_raise_the_registry_type(self):
        from repro.artifact.errors import ArtifactCorruptError

        plan = FaultPlan(
            faults=(
                FaultSpec(site="s", kind="error", error="artifact-corrupt"),
            )
        )
        with inject.installed(plan):
            with pytest.raises(ArtifactCorruptError, match="injected"):
                inject.fire("s")

    def test_latency_faults_sleep(self):
        plan = FaultPlan(
            faults=(
                FaultSpec(site="s", kind="latency", seconds=0.05),
            )
        )
        with inject.installed(plan):
            started = time.perf_counter()
            inject.fire("s")
            assert time.perf_counter() - started >= 0.04

    def test_install_from_env(self):
        plan = FaultPlan(seed=5, faults=(crash_spec("s"),))
        assert inject.install_from_env(environ={}) is None
        injector = inject.install_from_env(
            environ={inject.ENV_PLAN: plan.to_json()}
        )
        assert injector is not None
        assert injector.plan == plan
        assert inject.active() is injector


# -- wire-frame mangling -------------------------------------------------------


class TestFilterFrame:
    def frame_plan(self, kind: str) -> FaultPlan:
        return FaultPlan(
            faults=(FaultSpec(site="wire.client.write", kind=kind),)
        )

    def test_passthrough_without_a_plan(self):
        assert inject.filter_frame("wire.client.write", "hello") == "hello"

    def test_drop_truncate_corrupt(self):
        line = '{"op":"query","id":7}'
        with inject.installed(self.frame_plan("drop_frame")):
            assert inject.filter_frame("wire.client.write", line) is None
        with inject.installed(self.frame_plan("truncate_frame")):
            half = inject.filter_frame("wire.client.write", line)
            assert half == line[: len(line) // 2]
        with inject.installed(self.frame_plan("corrupt_frame")):
            mangled = inject.filter_frame("wire.client.write", line)
            assert CORRUPTION in mangled
            assert mangled.startswith(line[: len(line) // 2])

    def test_write_message_drops_the_frame_entirely(self):
        stream = io.StringIO()
        with inject.installed(self.frame_plan("drop_frame")):
            wire.write_message(
                stream, {"op": "query"}, chaos_site="wire.client.write"
            )
        assert stream.getvalue() == ""  # the peer never sees the frame

    def test_write_message_corruption_breaks_the_parse(self):
        stream = io.StringIO()
        with inject.installed(self.frame_plan("corrupt_frame")):
            wire.write_message(
                stream, {"op": "query"}, chaos_site="wire.client.write"
            )
        line = stream.getvalue().splitlines()[0]
        with pytest.raises(WorkerProtocolError, match="undecodable"):
            wire.parse_message(line)

    def test_unrelated_site_leaves_frames_alone(self):
        stream = io.StringIO()
        with inject.installed(self.frame_plan("drop_frame")):
            wire.write_message(
                stream, {"op": "query"}, chaos_site="wire.worker.write"
            )
        assert wire.parse_message(stream.getvalue()) == {"op": "query"}


# -- the torn-write regression -------------------------------------------------


class TestCrashAtomicArtifactPublish:
    """A crash anywhere inside save_artifact must not tear the artifact."""

    def reference_answer(self, artifact_dir):
        system = ESharp.from_artifact(artifact_dir)
        version = system.snapshots.version
        return version

    # save_stage: crash midway through the stage sequence (a torn
    # multi-file write); finalize: crash after every stage landed but
    # before the manifest — the classic missing-commit-record tear
    @pytest.mark.parametrize(
        "site,after",
        [("artifact.save_stage", 1), ("artifact.finalize", 0)],
    )
    def test_crash_mid_save_preserves_previous_generation(
        self, system, tmp_path, site, after
    ):
        target = tmp_path / "artifact"
        system.save_artifact(target)
        before = self.reference_answer(target)
        plan = FaultPlan(faults=(crash_spec(site, after_calls=after),))
        with inject.installed(plan):
            with pytest.raises(ChaosCrashError):
                system.save_artifact(target)
        # the previous complete generation still loads and serves
        assert self.reference_answer(target) == before
        # and the torn scratch directory was cleaned up
        leftovers = [
            p.name
            for p in target.parent.iterdir()
            if ".saving." in p.name or ".previous." in p.name
        ]
        assert leftovers == []

    def test_crash_on_first_save_leaves_no_directory(
        self, system, tmp_path
    ):
        target = tmp_path / "artifact"
        plan = FaultPlan(faults=(crash_spec("artifact.finalize"),))
        with inject.installed(plan):
            with pytest.raises(ChaosCrashError):
                system.save_artifact(target)
        assert not target.exists()

    def test_injected_read_error_surfaces_typed(self, system, tmp_path):
        from repro.artifact.errors import ArtifactCorruptError

        target = tmp_path / "artifact"
        system.save_artifact(target)
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    site="artifact.read",
                    kind="error",
                    error="artifact-corrupt",
                ),
            )
        )
        with inject.installed(plan):
            with pytest.raises(ArtifactCorruptError):
                ESharp.from_artifact(target)

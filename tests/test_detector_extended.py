"""The extended Pal & Counts feature set (ABL6 comparator)."""

import pytest

from repro.detector.extended_features import (
    ExtendedPalCountsDetector,
    ExtendedWeights,
    compute_extended_features,
)
from repro.detector.ranking import RankingConfig
from repro.microblog.platform import MicroblogPlatform
from repro.microblog.tweets import Tweet
from repro.microblog.users import UserProfile


@pytest.fixture
def platform():
    """An original author, a repetitive bot, a conversationalist."""
    p = MicroblogPlatform()
    p.add_user(UserProfile(1, "author", "d", "focused_expert", (1,),
                           followers=500))
    p.add_user(UserProfile(2, "bot", "d", "news_bot", (1,), followers=10))
    p.add_user(UserProfile(3, "talker", "d", "casual", (), followers=50))
    tid = 0

    def post(author, text, mentions=(), retweet_of=None):
        nonlocal tid
        tid += 1
        p.add_tweet(Tweet(tweet_id=tid, author_id=author, text=text,
                          mentions=mentions, retweet_of=retweet_of))
        return tid

    origin = post(1, "quantum deep dive part one")
    post(1, "fresh quantum angle on hardware")
    post(1, "another quantum topic entirely different words")
    for _ in range(4):
        post(2, "quantum headline quantum headline quantum")  # repetitive
    post(3, "@author loved your quantum thread", mentions=(1,))
    post(3, "rt @author: quantum deep dive part one", retweet_of=origin,
         mentions=(1,))
    return p


class TestExtendedFeatures:
    def test_rows_cover_candidates(self, platform):
        rows = compute_extended_features(platform, "quantum")
        assert [r.user_id for r in rows] == [1, 2, 3]

    def test_originality_separates_author_from_retweeter(self, platform):
        rows = {r.user_id: r for r in
                compute_extended_features(platform, "quantum")}
        assert rows[1].originality == 1.0
        assert rows[3].originality == 0.5  # one original, one retweet

    def test_self_similarity_flags_bot(self, platform):
        rows = {r.user_id: r for r in
                compute_extended_features(platform, "quantum")}
        assert rows[2].self_similarity > rows[1].self_similarity

    def test_conversation_share(self, platform):
        rows = {r.user_id: r for r in
                compute_extended_features(platform, "quantum")}
        assert rows[3].conversation == 0.5   # the mention tweet, not the rt
        assert rows[1].conversation == 0.0

    def test_graph_influence_log_scaled(self, platform):
        import math

        rows = {r.user_id: r for r in
                compute_extended_features(platform, "quantum")}
        assert rows[1].graph_influence == pytest.approx(math.log1p(500))

    def test_no_match_empty(self, platform):
        assert compute_extended_features(platform, "blockchain") == []


class TestExtendedDetector:
    def test_author_beats_bot(self, platform):
        detector = ExtendedPalCountsDetector(
            platform, RankingConfig(min_zscore=-10.0)
        )
        ranked = detector.detect("quantum")
        names = [e.screen_name for e in ranked]
        assert names.index("author") < names.index("bot")

    def test_interface_parity(self, platform):
        detector = ExtendedPalCountsDetector(platform)
        assert detector.candidate_count("quantum") == 3
        assert detector.detect("quantum", min_zscore=1e9) == []

    def test_weights_validated(self):
        with pytest.raises(ValueError):
            ExtendedWeights(
                topical_signal=0, mention_impact=0, retweet_impact=0,
                originality=0, conversation=0, hashtag_ratio=0,
                graph_influence=0,
            )

    def test_composes_with_expander(self, platform):
        from repro.community.partition import Partition
        from repro.expansion.domainstore import DomainStore
        from repro.expansion.expander import QueryExpander

        store = DomainStore.from_partition(
            Partition({"quantum": "c", "qubits": "c"})
        )
        expander = QueryExpander(
            store,
            ExtendedPalCountsDetector(platform, RankingConfig(min_zscore=-10)),
        )
        assert expander.detect("quantum").experts

    def test_deterministic(self, platform):
        a = ExtendedPalCountsDetector(platform).score("quantum")
        b = ExtendedPalCountsDetector(platform).score("quantum")
        assert [(e.user_id, e.score) for e in a] == [
            (e.user_id, e.score) for e in b
        ]

"""End-to-end integration of the assembled e# system."""

import pytest

from repro.core.config import ESharpConfig
from repro.core.esharp import ESharp, NotBuiltError
from repro.core.offline import OfflinePipeline


class TestESharpConfig:
    def test_small_profile(self):
        config = ESharpConfig.small(seed=5)
        assert config.world.topics_per_domain == 8
        assert config.querylog.seed == 5

    def test_standard_profile(self):
        config = ESharpConfig.standard()
        assert config.querylog.impressions == 300_000


class TestLifecycle:
    def test_query_before_build_raises(self):
        system = ESharp(ESharpConfig.small())
        with pytest.raises(NotBuiltError):
            system.find_experts("anything")
        with pytest.raises(NotBuiltError):
            system.offline
        with pytest.raises(NotBuiltError):
            system.platform

    def test_is_built_flag(self, system):
        assert system.is_built


class TestOfflinePipeline:
    def test_artifacts_consistent(self, system):
        offline = system.offline
        assert offline.partition.community_count() == (
            offline.domain_store.domain_count
        )
        offline.partition.validate_covers(offline.multigraph)

    def test_stage_reports(self, system):
        names = [r.name for r in system.offline.clock.reports]
        assert names == ["Extraction", "Clustering"]
        extraction = system.offline.clock.reports[0]
        # massive reduction: the graph is much smaller than the raw log
        assert extraction.bytes_read > 10 * extraction.bytes_written > 0

    def test_clustering_history_seeded(self, system):
        history = system.offline.clustering_history
        assert history[0].communities == system.offline.multigraph.vertex_count

    def test_sql_clustering_path(self):
        from repro.querylog.config import QueryLogConfig

        base = ESharpConfig.small(seed=77)
        config = ESharpConfig(
            seed=77,
            world=base.world.scaled(0.5),
            querylog=QueryLogConfig(seed=77, impressions=8_000, min_support=10),
            use_sql_clustering=True,
        )
        artifacts = OfflinePipeline(config).run()
        assert artifacts.domain_store.domain_count > 0
        # the SQL path produced a real clustering, not just singletons
        assert artifacts.domain_store.domain_count < (
            artifacts.multigraph.vertex_count
        )


class TestOnlineQueries:
    def test_expansion_beats_baseline_in_aggregate(self, system):
        world = system.offline.world
        queries = [
            t.canonical.text
            for t in world.topics
            if t.microblog_affinity > 0.5
        ][:30]
        base_total = sum(
            len(system.find_experts_baseline(q)) for q in queries
        )
        esharp_total = sum(len(system.find_experts(q)) for q in queries)
        assert esharp_total >= base_total

    def test_expansion_terms_include_query(self, system):
        vertex = next(iter(system.offline.partition.assignment))
        terms = system.expansion_terms(vertex)
        assert terms[0] == vertex

    def test_answer_times_stages(self, system):
        vertex = next(iter(system.offline.partition.assignment))
        answer = system.answer(vertex)
        assert answer.expansion_seconds >= 0.0
        assert answer.detection_seconds >= 0.0
        assert answer.terms

    def test_results_capped_at_15(self, system):
        world = system.offline.world
        for topic in world.topics[:20]:
            assert len(system.find_experts(topic.canonical.text)) <= 15

    def test_experts_have_presentation_fields(self, system):
        world = system.offline.world
        for topic in world.topics[:10]:
            for expert in system.find_experts(topic.canonical.text):
                assert expert.screen_name
                assert expert.description
                assert expert.followers >= 0

    def test_found_experts_mostly_genuine(self, system):
        """Precision sanity: most returned accounts are true experts for
        popular queries."""
        world = system.offline.world
        genuine = 0
        total = 0
        for topic in sorted(
            (t for t in world.topics if t.microblog_affinity > 0.5),
            key=lambda t: t.popularity,
            reverse=True,
        )[:15]:
            for expert in system.find_experts_baseline(topic.canonical.text):
                total += 1
                user = system.platform.user(expert.user_id)
                if user.is_expert_on(topic.topic_id):
                    genuine += 1
        if total == 0:
            pytest.skip("no baseline answers at this scale")
        assert genuine / total > 0.5

    def test_deterministic_answers(self, small_config):
        a = ESharp(small_config).build()
        vertex = next(iter(a.offline.partition.assignment))
        first = [e.user_id for e in a.find_experts(vertex)]
        b = ESharp(small_config).build()
        second = [e.user_id for e in b.find_experts(vertex)]
        assert first == second

"""Platform storage, §3 matching, totals bookkeeping."""

import pytest

from repro.microblog.platform import MicroblogPlatform
from repro.microblog.tweets import Tweet
from repro.microblog.users import UserProfile


def make_user(user_id: int, name: str | None = None) -> UserProfile:
    return UserProfile(
        user_id=user_id,
        screen_name=name or f"user{user_id}",
        description="a test account",
        persona="casual",
        expert_topics=(),
    )


@pytest.fixture
def small_platform():
    platform = MicroblogPlatform()
    for uid in (1, 2, 3):
        platform.add_user(make_user(uid))
    platform.add_tweet(
        Tweet(tweet_id=1, author_id=1, text="go 49ers big win today")
    )
    platform.add_tweet(
        Tweet(tweet_id=2, author_id=2, text="what a day", mentions=(1,))
    )
    platform.add_tweet(
        Tweet(
            tweet_id=3,
            author_id=3,
            text="rt @user1: go 49ers big win today",
            mentions=(1,),
            retweet_of=1,
        )
    )
    return platform


class TestIngestion:
    def test_duplicate_user_rejected(self, small_platform):
        with pytest.raises(ValueError):
            small_platform.add_user(make_user(1))

    def test_duplicate_tweet_rejected(self, small_platform):
        with pytest.raises(ValueError):
            small_platform.add_tweet(Tweet(tweet_id=1, author_id=1, text="x"))

    def test_unknown_author_rejected(self, small_platform):
        with pytest.raises(ValueError):
            small_platform.add_tweet(Tweet(tweet_id=9, author_id=99, text="x"))

    def test_counts(self, small_platform):
        assert small_platform.user_count == 3
        assert small_platform.tweet_count == 3


class TestTotals:
    def test_tweets_counted(self, small_platform):
        assert small_platform.totals(1).tweets == 1
        assert small_platform.totals(3).tweets == 1

    def test_mentions_counted(self, small_platform):
        assert small_platform.totals(1).mentions_received == 2

    def test_retweets_credited_to_original_author(self, small_platform):
        assert small_platform.totals(1).retweets_received == 1
        assert small_platform.totals(3).retweets_received == 0

    def test_unknown_user(self, small_platform):
        with pytest.raises(KeyError):
            small_platform.totals(42)


class TestOutOfOrderIngestion:
    def test_retweet_before_original_resolves_retroactively(self):
        platform = MicroblogPlatform()
        for uid in (1, 2):
            platform.add_user(make_user(uid))
        platform.add_tweet(
            Tweet(tweet_id=2, author_id=2, text="rt big news", retweet_of=1)
        )
        # before the original arrives: nothing credited, arrival parked
        assert platform.totals(1).retweets_received == 0
        assert platform.pending_retweet_count == 1
        platform.add_tweet(Tweet(tweet_id=1, author_id=1, text="big news"))
        # the original's ingestion back-fills the denominator
        assert platform.totals(1).retweets_received == 1
        assert platform.pending_retweet_count == 0

    def test_multiple_pending_retweets_all_credited(self):
        platform = MicroblogPlatform()
        for uid in (1, 2, 3):
            platform.add_user(make_user(uid))
        for tid, author in ((10, 2), (11, 3)):
            platform.add_tweet(
                Tweet(tweet_id=tid, author_id=author, text="rt scoop",
                      retweet_of=1)
            )
        platform.add_tweet(Tweet(tweet_id=1, author_id=1, text="the scoop"))
        assert platform.totals(1).retweets_received == 2

    def test_never_ingested_original_stays_uncredited(self):
        platform = MicroblogPlatform()
        for uid in (1, 2):
            platform.add_user(make_user(uid))
        platform.add_tweet(
            Tweet(tweet_id=2, author_id=2, text="rt ghost", retweet_of=99)
        )
        assert platform.totals(1).retweets_received == 0
        assert platform.pending_retweet_count == 1

    def test_mention_before_registration_credited_at_signup(self):
        platform = MicroblogPlatform()
        platform.add_user(make_user(1))
        platform.add_tweet(
            Tweet(tweet_id=1, author_id=1, text="welcome", mentions=(7, 7))
        )
        platform.add_user(make_user(7))
        # both pre-registration mentions land in the MI denominator
        assert platform.totals(7).mentions_received == 2
        platform.add_tweet(
            Tweet(tweet_id=2, author_id=1, text="again", mentions=(7,))
        )
        assert platform.totals(7).mentions_received == 3


class TestColumnarLedger:
    def test_rows_align_with_ingestion_order(self, small_platform):
        ledger = small_platform.ledger()
        assert list(ledger.tweet_ids) == [1, 2, 3]
        assert list(ledger.authors) == [1, 2, 3]
        # row 2 is the retweet of tweet 1 (author 1); rows 0/1 are not
        assert list(ledger.retweet_authors) == [-1, -1, 1]
        assert ledger.estimated_bytes() > 0

    def test_mention_slices(self, small_platform):
        ledger = small_platform.ledger()
        spans = [
            list(
                ledger.mention_ids[
                    ledger.mention_offsets[row] : ledger.mention_offsets[row + 1]
                ]
            )
            for row in range(len(ledger))
        ]
        assert spans == [[], [1], [1]]

    def test_mutation_count_monotonic(self, small_platform):
        before = small_platform.mutation_count
        small_platform.add_user(make_user(9))
        small_platform.add_tweet(Tweet(tweet_id=9, author_id=9, text="hi"))
        assert small_platform.mutation_count == before + 2

    def test_posting_rows_sorted(self, small_platform):
        rows = small_platform.posting_rows("49ers")
        assert list(rows) == sorted(rows)
        assert small_platform.posting_rows("absent-token") is None


class TestMatching:
    def test_all_terms_required(self, small_platform):
        assert small_platform.matching_tweet_ids("49ers win") == [1, 3]
        assert small_platform.matching_tweet_ids("49ers loss") == []

    def test_case_insensitive(self, small_platform):
        assert small_platform.matching_tweet_ids("49ERS") == [1, 3]

    def test_unknown_term_no_matches(self, small_platform):
        assert small_platform.matching_tweet_ids("quantum") == []

    def test_empty_query_no_matches(self, small_platform):
        assert small_platform.matching_tweet_ids("") == []

    def test_retweet_text_matches_original_query(self, small_platform):
        # the rt copy carries the original tokens — §3 matching sees it
        assert 3 in small_platform.matching_tweet_ids("49ers")

    def test_matching_tweets_objects(self, small_platform):
        tweets = small_platform.matching_tweets("49ers")
        assert [t.tweet_id for t in tweets] == [1, 3]

    def test_user_by_screen_name(self, small_platform):
        assert small_platform.user_by_screen_name("user2").user_id == 2
        with pytest.raises(KeyError):
            small_platform.user_by_screen_name("ghost")


class TestTweet:
    def test_tokens_computed(self):
        tweet = Tweet(tweet_id=1, author_id=1, text="Go #49ers GO")
        assert tweet.tokens == frozenset({"go", "#49ers"})

    def test_matches_rule(self):
        tweet = Tweet(tweet_id=1, author_id=1, text="alpha beta gamma")
        assert tweet.matches(["alpha", "gamma"])
        assert not tweet.matches(["alpha", "delta"])

    def test_is_retweet(self):
        assert Tweet(tweet_id=1, author_id=1, text="x", retweet_of=5).is_retweet
        assert not Tweet(tweet_id=2, author_id=1, text="x").is_retweet


class TestUserProfile:
    def test_unknown_persona_rejected(self):
        with pytest.raises(ValueError):
            UserProfile(1, "n", "d", "wizard", ())

    def test_negative_followers_rejected(self):
        with pytest.raises(ValueError):
            UserProfile(1, "n", "d", "casual", (), followers=-1)

    def test_expertise_flags(self):
        expert = UserProfile(1, "n", "d", "focused_expert", (7,))
        assert expert.is_expert
        assert expert.is_expert_on(7)
        assert not expert.is_expert_on(8)

    def test_casual_never_expert(self):
        casual = UserProfile(1, "n", "d", "casual", ())
        assert not casual.is_expert

"""Text normalisation — the §3 and §5 matching rules."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.text import (
    contains_all_terms,
    ngrams,
    normalize,
    phrase_key,
    tokenize,
    truncate_to_chars,
)


class TestNormalize:
    def test_lowercases(self):
        assert normalize("NFL Draft") == "nfl draft"

    def test_collapses_whitespace(self):
        assert normalize("  san   francisco\t49ers ") == "san francisco 49ers"

    def test_empty(self):
        assert normalize("") == ""

    @given(st.text(max_size=80))
    def test_idempotent(self, text):
        assert normalize(normalize(text)) == normalize(text)


class TestTokenize:
    def test_keeps_hashtag_sigil(self):
        assert tokenize("#49ers rule") == ["#49ers", "rule"]

    def test_keeps_mention_sigil(self):
        assert tokenize("@niners rock") == ["@niners", "rock"]

    def test_numbers_kept(self):
        assert tokenize("top 250") == ["top", "250"]

    def test_apostrophes_kept(self):
        assert tokenize("let's go") == ["let's", "go"]

    def test_punctuation_split(self):
        assert tokenize("win,lose;draw") == ["win", "lose", "draw"]

    def test_case_folded(self):
        assert tokenize("NFL") == ["nfl"]

    @given(st.text(max_size=80))
    def test_tokens_are_lowercase(self, text):
        for token in tokenize(text):
            assert token == token.lower()


class TestPhraseKey:
    def test_exact_in_order(self):
        assert phrase_key("Dow  FUTURES") == "dow futures"

    def test_key_stability(self):
        assert phrase_key(phrase_key("San Francisco")) == "san francisco"

    def test_distinct_orders_distinct_keys(self):
        # §5 match is "exactly and in order" — order must matter
        assert phrase_key("futures dow") != phrase_key("dow futures")


class TestNgrams:
    def test_bigrams(self):
        assert ngrams(["a", "b", "c"], 2) == [("a", "b"), ("b", "c")]

    def test_size_larger_than_input(self):
        assert ngrams(["a"], 2) == []

    def test_full_width(self):
        assert ngrams(["a", "b"], 2) == [("a", "b")]

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            ngrams(["a"], 0)


class TestContainsAllTerms:
    def test_positive(self):
        assert contains_all_terms({"go", "49ers", "win"}, ["49ers"])

    def test_negative(self):
        assert not contains_all_terms({"go", "49ers"}, ["49ers", "draft"])

    def test_empty_query_matches(self):
        assert contains_all_terms({"x"}, [])


class TestTruncate:
    def test_short_text_untouched(self):
        assert truncate_to_chars("short", 140) == "short"

    def test_cuts_on_word_boundary(self):
        text = "aaaa bbbb cccc"
        clipped = truncate_to_chars(text, 10)
        assert clipped == "aaaa bbbb"

    def test_hard_cut_without_spaces(self):
        assert truncate_to_chars("a" * 200, 140) == "a" * 140

    def test_limit_must_be_positive(self):
        with pytest.raises(ValueError):
            truncate_to_chars("x", 0)

    @given(st.text(max_size=300), st.integers(1, 140))
    def test_never_exceeds_limit(self, text, limit):
        assert len(truncate_to_chars(text, limit)) <= limit

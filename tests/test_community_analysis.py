"""Size distribution (Fig 6), neighbourhoods (Fig 7), quality metrics."""

import math

import pytest

from repro.community.neighbours import closest_communities
from repro.community.partition import Partition
from repro.community.quality import normalized_mutual_information, purity
from repro.community.sizes import orphan_fraction, size_distribution
from repro.simgraph.graph import MultiGraph


class TestSizeDistribution:
    def test_bucket_counts(self):
        partition = Partition(
            {
                **{f"s{i}": f"solo{i}" for i in range(4)},          # 4 orphans
                **{f"m{i}": "medium" for i in range(5)},            # one size-5
                **{f"l{i}": "large" for i in range(20)},            # one size-20
                **{f"x{i}": "giant" for i in range(60)},            # one size-60
            }
        )
        buckets = {b.label: b.count for b in size_distribution(partition)}
        assert buckets == {
            "1": 4, "2 to 10": 1, "10 to 50": 1, "More than 50": 1,
        }

    def test_fractions_sum_to_one(self):
        partition = Partition({"a": "x", "b": "x", "c": "y"})
        total = sum(b.fraction for b in size_distribution(partition))
        assert math.isclose(total, 1.0)

    def test_orphan_fraction(self):
        partition = Partition({"a": "x", "b": "y", "c": "y"})
        assert orphan_fraction(partition) == 0.5

    def test_empty_partition(self):
        assert orphan_fraction(Partition({})) == 0.0


class TestClosestCommunities:
    @pytest.fixture
    def setup(self):
        graph = MultiGraph()
        # home community {a,b}; neighbour X strongly linked, Y weakly
        graph.add_edge("a", "b", 10)
        graph.add_edge("a", "x1", 5)
        graph.add_edge("b", "x2", 4)
        graph.add_edge("x1", "x2", 8)
        graph.add_edge("b", "y1", 1)
        partition = Partition(
            {"a": "H", "b": "H", "x1": "X", "x2": "X", "y1": "Y"}
        )
        return graph, partition

    def test_ranked_by_link_weight(self, setup):
        graph, partition = setup
        community, neighbours = closest_communities(graph, partition, "a")
        assert community == ("a", "b")
        assert [n.community for n in neighbours] == ["X", "Y"]
        assert neighbours[0].link_weight == 9

    def test_count_limits_output(self, setup):
        graph, partition = setup
        _, neighbours = closest_communities(graph, partition, "a", count=1)
        assert len(neighbours) == 1

    def test_unknown_seed(self, setup):
        graph, partition = setup
        with pytest.raises(KeyError):
            closest_communities(graph, partition, "ghost")


class TestQuality:
    def test_perfect_purity(self):
        partition = Partition({"a": "c1", "b": "c1", "c": "c2"})
        truth = {"a": "g1", "b": "g1", "c": "g2"}
        assert purity(partition, truth) == 1.0

    def test_mixed_community_purity(self):
        partition = Partition({"a": "c1", "b": "c1", "c": "c1", "d": "c2"})
        truth = {"a": "g1", "b": "g1", "c": "g2", "d": "g2"}
        assert purity(partition, truth) == 0.75

    def test_unlabelled_vertices_ignored(self):
        partition = Partition({"a": "c1", "mystery": "c1"})
        assert purity(partition, {"a": "g1"}) == 1.0

    def test_empty_truth(self):
        assert purity(Partition({"a": "c"}), {}) == 0.0

    def test_nmi_perfect_match(self):
        partition = Partition({"a": "c1", "b": "c1", "c": "c2", "d": "c2"})
        truth = {"a": "g1", "b": "g1", "c": "g2", "d": "g2"}
        assert math.isclose(normalized_mutual_information(partition, truth), 1.0)

    def test_nmi_single_class_zero(self):
        partition = Partition({"a": "c1", "b": "c2"})
        truth = {"a": "g", "b": "g"}
        assert normalized_mutual_information(partition, truth) == 0.0

    def test_nmi_bounded(self):
        partition = Partition({"a": "c1", "b": "c1", "c": "c2", "d": "c1"})
        truth = {"a": "g1", "b": "g2", "c": "g2", "d": "g1"}
        value = normalized_mutual_information(partition, truth)
        assert -1e-9 <= value <= 1.0 + 1e-9

    def test_nmi_empty(self):
        assert normalized_mutual_information(Partition({}), {}) == 0.0

"""Newman CNM, Louvain, label propagation — the ABL1 algorithms."""

import pytest

from repro.community.labelprop import (
    LabelPropagationConfig,
    LabelPropagationDetector,
)
from repro.community.louvain import LouvainConfig, LouvainDetector
from repro.community.modularity import total_modularity
from repro.community.newman import NewmanConfig, NewmanGreedyDetector
from repro.community.partition import singleton_partition


class TestNewman:
    def test_triangles_recovered(self, triangle_graph):
        partition = NewmanGreedyDetector(triangle_graph).run()
        assert partition.community_count() == 2
        assert partition.members(partition.community_of("b1")) == {
            "b1", "b2", "b3",
        }

    def test_merge_sequence_gains_positive(self, triangle_graph):
        detector = NewmanGreedyDetector(triangle_graph)
        detector.run()
        assert detector.merge_sequence
        assert all(gain > 0 for _, _, gain in detector.merge_sequence)

    def test_modularity_beats_singletons(self, multigraph):
        partition = NewmanGreedyDetector(multigraph).run()
        singles = singleton_partition(multigraph.vertices())
        assert total_modularity(multigraph, partition) > total_modularity(
            multigraph, singles
        )

    def test_target_communities(self, triangle_graph):
        config = NewmanConfig(target_communities=4)
        partition = NewmanGreedyDetector(triangle_graph, config).run()
        assert partition.community_count() >= 4

    def test_max_merges(self, triangle_graph):
        config = NewmanConfig(max_merges=1)
        partition = NewmanGreedyDetector(triangle_graph, config).run()
        assert partition.community_count() == 5

    def test_deterministic(self, multigraph):
        a = NewmanGreedyDetector(multigraph).run()
        b = NewmanGreedyDetector(multigraph).run()
        assert a.assignment == b.assignment

    def test_covers_graph(self, multigraph):
        NewmanGreedyDetector(multigraph).run().validate_covers(multigraph)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            NewmanConfig(target_communities=-1)


class TestLouvain:
    def test_triangles_recovered(self, triangle_graph):
        partition = LouvainDetector(triangle_graph).run()
        assert partition.community_count() == 2

    def test_levels_recorded(self, triangle_graph):
        detector = LouvainDetector(triangle_graph)
        detector.run()
        assert detector.levels

    def test_modularity_competitive_with_newman(self, multigraph):
        louvain = LouvainDetector(multigraph).run()
        newman = NewmanGreedyDetector(multigraph).run()
        q_louvain = total_modularity(multigraph, louvain)
        q_newman = total_modularity(multigraph, newman)
        assert q_louvain > 0.8 * q_newman

    def test_deterministic(self, multigraph):
        a = LouvainDetector(multigraph).run()
        b = LouvainDetector(multigraph).run()
        assert a.assignment == b.assignment

    def test_covers_graph(self, multigraph):
        LouvainDetector(multigraph).run().validate_covers(multigraph)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            LouvainConfig(max_levels=0)


class TestLabelPropagation:
    def test_triangles_recovered(self, triangle_graph):
        partition = LabelPropagationDetector(triangle_graph).run()
        assert partition.community_count() == 2

    def test_seed_determinism(self, multigraph):
        config = LabelPropagationConfig(seed=5)
        a = LabelPropagationDetector(multigraph, config).run()
        b = LabelPropagationDetector(multigraph, config).run()
        assert a.assignment == b.assignment

    def test_sweeps_bounded(self, multigraph):
        config = LabelPropagationConfig(max_sweeps=3)
        detector = LabelPropagationDetector(multigraph, config)
        detector.run()
        assert detector.sweeps_run <= 3

    def test_isolated_vertex_keeps_own_label(self):
        from repro.simgraph.graph import MultiGraph

        graph = MultiGraph()
        graph.add_edge("a", "b")
        graph.add_vertex("solo")
        partition = LabelPropagationDetector(graph).run()
        assert partition.community_of("solo") == "solo"

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            LabelPropagationConfig(max_sweeps=0)

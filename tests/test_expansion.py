"""Domain store (§5 exact match) and the expansion executor."""

import pytest

from repro.community.partition import Partition
from repro.expansion.domainstore import DomainStore, ExpertiseDomain
from repro.expansion.expander import QueryExpander
from repro.detector.palcounts import PalCountsDetector
from repro.detector.ranking import RankingConfig
from repro.microblog.platform import MicroblogPlatform
from repro.microblog.tweets import Tweet
from repro.microblog.users import UserProfile


@pytest.fixture
def store():
    return DomainStore(
        [
            ExpertiseDomain("d1", ("49ers", "niners", "#49ers", "49ers draft")),
            ExpertiseDomain("d2", ("dow futures", "nasdaq")),
        ]
    )


class TestDomainStore:
    def test_exact_match(self, store):
        domain = store.lookup("49ers")
        assert domain is not None and domain.domain_id == "d1"

    def test_lowercasing(self, store):
        assert store.lookup("Dow FUTURES").domain_id == "d2"

    def test_order_matters(self, store):
        assert store.lookup("futures dow") is None

    def test_no_partial_match(self, store):
        assert store.lookup("dow") is None

    def test_expand_query_first(self, store):
        terms = store.expand("niners")
        assert terms[0] == "niners"
        assert set(terms) == {"49ers", "niners", "#49ers", "49ers draft"}

    def test_expand_unmatched_returns_query(self, store):
        assert store.expand("unknown thing") == ["unknown thing"]

    def test_from_partition(self):
        partition = Partition({"a": "c1", "b": "c1", "c": "c2"})
        store = DomainStore.from_partition(partition)
        assert store.domain_count == 2
        assert set(store.expand("a")) == {"a", "b"}

    def test_duplicate_domain_rejected(self):
        with pytest.raises(ValueError):
            DomainStore(
                [ExpertiseDomain("d", ("x",)), ExpertiseDomain("d", ("y",))]
            )

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            ExpertiseDomain("d", ())

    def test_to_table_and_bytes(self, store):
        table = store.to_table()
        assert table.row_count == store.keyword_count
        assert store.storage_bytes() == table.estimated_bytes()

    def test_counts(self, store):
        assert store.domain_count == 2
        assert store.keyword_count == 6


@pytest.fixture
def expansion_platform():
    """An expert hidden behind a variant keyword."""
    platform = MicroblogPlatform()
    platform.add_user(
        UserProfile(1, "hidden_expert", "all about the team", "focused_expert", (1,))
    )
    platform.add_user(UserProfile(2, "visible_expert", "d", "focused_expert", (1,)))
    platform.add_user(UserProfile(3, "bystander", "d", "casual", ()))
    tid = 0

    def post(author, text):
        nonlocal tid
        tid += 1
        platform.add_tweet(Tweet(tweet_id=tid, author_id=author, text=text))

    for _ in range(6):
        post(1, "niners looking sharp")      # hidden: never says "49ers"
    for _ in range(6):
        post(2, "49ers looking sharp")
    post(3, "nothing topical here")
    return platform


class TestQueryExpander:
    @pytest.fixture
    def expander(self, store, expansion_platform):
        detector = PalCountsDetector(
            expansion_platform, RankingConfig(min_zscore=-10.0)
        )
        return QueryExpander(store, detector)

    def test_expansion_finds_hidden_expert(self, expander):
        result = expander.detect("49ers")
        found = {e.screen_name for e in result.experts}
        assert "hidden_expert" in found
        assert "visible_expert" in found

    def test_baseline_misses_hidden_expert(self, expander):
        baseline = expander.detector.detect("49ers")
        assert "hidden_expert" not in {e.screen_name for e in baseline}

    def test_terms_include_community(self, expander):
        result = expander.detect("49ers")
        assert "niners" in result.terms
        assert result.matched_domain == "d1"

    def test_unmatched_query_single_term(self, expander):
        result = expander.detect("nothing topical")
        assert result.terms == ["nothing topical"]
        assert result.matched_domain is None

    def test_union_keeps_best_score_per_user(self, expander):
        result = expander.score("49ers")
        ids = [e.user_id for e in result.scored_pool]
        assert len(ids) == len(set(ids))

    def test_threshold_override(self, expander):
        result = expander.detect("49ers", min_zscore=1e9)
        assert result.experts == []


class TestLoadCanonicalisation:
    """Satellite regression: a hand-edited or legacy TSV with
    non-canonical domain ids must not bypass the canonical-id invariant
    that :meth:`DomainStore.rebuilt` instance-reuse depends on."""

    def _legacy_tsv(self, tmp_path, rows):
        from repro.relational.io import save_table
        from repro.relational.schema import Schema
        from repro.relational.table import Table

        path = tmp_path / "legacy.tsv"
        save_table(Table(Schema.of("domain_id", "keyword"), rows), path)
        return path

    def test_legacy_ids_are_canonicalised(self, tmp_path):
        path = self._legacy_tsv(
            tmp_path,
            [("c17", "niners"), ("c17", "49ers"), ("c99", "nasdaq")],
        )
        loaded = DomainStore.load(path)
        assert [d.domain_id for d in loaded.domains()] == ["49ers", "nasdaq"]
        assert loaded.lookup("niners").domain_id == "49ers"

    def test_rebuilt_reuses_canonicalised_domains(self, tmp_path):
        """The invariant the canonicalisation exists for: after a reload,
        an unchanged partition reuses the loaded ExpertiseDomain
        instances instead of rebuilding every domain."""
        path = self._legacy_tsv(
            tmp_path,
            [("legacy-a", "aa"), ("legacy-a", "bb"), ("legacy-b", "cc")],
        )
        loaded = DomainStore.load(path)
        partition = Partition({"aa": "x", "bb": "x", "cc": "y"})
        rebuilt = DomainStore.rebuilt(partition, loaded)
        assert rebuilt.lookup("aa") is loaded.lookup("aa")
        assert rebuilt.lookup("cc") is loaded.lookup("cc")

    def test_duplicate_keyword_within_a_domain_is_collapsed(self, tmp_path):
        path = self._legacy_tsv(
            tmp_path, [("d", "aa"), ("d", "aa"), ("d", "bb")]
        )
        loaded = DomainStore.load(path)
        assert loaded.lookup("aa").keywords == ("aa", "bb")

    def test_keyword_in_two_domains_is_rejected(self, tmp_path):
        path = self._legacy_tsv(
            tmp_path, [("d1", "aa"), ("d1", "bb"), ("d2", "bb")]
        )
        with pytest.raises(ValueError, match="hard partition"):
            DomainStore.load(path)

    def test_save_load_is_stable_for_canonical_stores(self, tmp_path):
        store = DomainStore.from_partition(
            Partition({"aa": "x", "bb": "x", "cc": "y"})
        )
        path = tmp_path / "canonical.tsv"
        store.save(path)
        assert DomainStore.load(path).domains() == store.domains()

"""Ranking metrics and the new SQL ORDER BY / LIMIT."""

import pytest

from repro.eval.metrics import (
    average_precision,
    mean_over_queries,
    ndcg,
    precision_at_k,
)
from tests.test_crowd import make_expert


def relevant_in(*ids):
    allowed = set(ids)
    return lambda user_id: user_id in allowed


class TestPrecisionAtK:
    def test_basic(self):
        experts = [make_expert(1), make_expert(2), make_expert(3)]
        assert precision_at_k(experts, relevant_in(1, 3), 2) == 0.5

    def test_k_beyond_length(self):
        experts = [make_expert(1)]
        assert precision_at_k(experts, relevant_in(1), 10) == 1.0

    def test_empty(self):
        assert precision_at_k([], relevant_in(1), 3) == 0.0

    def test_k_validated(self):
        with pytest.raises(ValueError):
            precision_at_k([], relevant_in(), 0)


class TestAveragePrecision:
    def test_perfect_ranking(self):
        experts = [make_expert(1), make_expert(2)]
        assert average_precision(experts, relevant_in(1, 2)) == 1.0

    def test_relevant_last(self):
        experts = [make_expert(1), make_expert(2)]
        assert average_precision(experts, relevant_in(2)) == 0.5

    def test_nothing_relevant(self):
        assert average_precision([make_expert(1)], relevant_in()) == 0.0


class TestNdcg:
    def test_perfect(self):
        experts = [make_expert(1), make_expert(2)]
        assert ndcg(experts, relevant_in(1)) == 1.0

    def test_swapped_is_discounted(self):
        experts = [make_expert(1), make_expert(2)]
        value = ndcg(experts, relevant_in(2))
        assert 0.0 < value < 1.0

    def test_k_cutoff(self):
        experts = [make_expert(1), make_expert(2), make_expert(3)]
        assert ndcg(experts, relevant_in(3), k=2) == 0.0

    def test_empty(self):
        assert ndcg([], relevant_in(1)) == 0.0


class TestMeanOverQueries:
    def test_average(self):
        assert mean_over_queries([0.5, 1.0]) == 0.75

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_over_queries([])


class TestSqlOrderLimit:
    @pytest.fixture
    def session(self):
        from repro.relational.sql import SqlSession
        from repro.relational.table import Table

        s = SqlSession()
        s.register(
            "t",
            Table.from_dicts(
                ["k", "v"],
                [{"k": "b", "v": 2}, {"k": "a", "v": 3}, {"k": "c", "v": 1}],
            ),
        )
        return s

    def test_order_by_asc(self, session):
        out = session.run("SELECT k FROM t ORDER BY v")
        assert [r[0] for r in out.rows] == ["c", "b", "a"]

    def test_order_by_desc(self, session):
        out = session.run("SELECT k FROM t ORDER BY v DESC")
        assert [r[0] for r in out.rows] == ["a", "b", "c"]

    def test_order_by_multiple_keys(self, session):
        from repro.relational.table import Table

        session.register(
            "u",
            Table.from_dicts(
                ["g", "v"],
                [{"g": 1, "v": 2}, {"g": 1, "v": 1}, {"g": 0, "v": 9}],
            ),
        )
        out = session.run("SELECT g, v FROM u ORDER BY g, v DESC")
        assert out.rows == [(0, 9), (1, 2), (1, 1)]

    def test_limit(self, session):
        out = session.run("SELECT k FROM t ORDER BY v DESC LIMIT 2")
        assert [r[0] for r in out.rows] == ["a", "b"]

    def test_limit_requires_integer(self, session):
        from repro.relational.sql import SqlError

        with pytest.raises(SqlError):
            session.run("SELECT k FROM t LIMIT 2.5")

    def test_order_by_expression(self, session):
        out = session.run("SELECT k FROM t ORDER BY v * -1")
        assert [r[0] for r in out.rows] == ["a", "b", "c"]

    def test_order_with_group_by(self, session):
        from repro.relational.table import Table

        session.register(
            "w",
            Table.from_dicts(
                ["g", "v"],
                [{"g": "x", "v": 1}, {"g": "y", "v": 5}, {"g": "x", "v": 2}],
            ),
        )
        out = session.run(
            "SELECT g, sum(v) AS total FROM w GROUP BY g "
            "ORDER BY total DESC LIMIT 1"
        )
        assert out.rows == [("y", 5)]

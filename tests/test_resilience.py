"""End-to-end resilience over real subprocess workers.

The contract these tests hold the fleet to: under injected faults —
SIGKILL, scheduled worker exits, dropped/corrupted wire frames, a
bit-flipped artifact — the router **never returns a wrong answer** (every
served answer is byte-identical to the single-replica reference), every
failure surfaces typed, and the supervisor restores killed replicas so
full coverage resumes.  The deterministic in-process halves of the same
machinery live in ``test_chaos.py`` and ``test_supervisor.py``.
"""

from __future__ import annotations

import os
import shutil
import signal
import time

import pytest

from repro.artifact import ArtifactError
from repro.chaos import FaultPlan, FaultSpec, inject
from repro.core.esharp import ESharp
from repro.fleet import (
    FleetConfig,
    FleetRouter,
    ReplicaStartupError,
    ReplicaSupervisor,
    SubprocessReplica,
    SupervisorConfig,
)
from repro.serving.service import ExpertService


# -- fixtures -----------------------------------------------------------------


@pytest.fixture(scope="module")
def artifact_dir(system, tmp_path_factory):
    path = tmp_path_factory.mktemp("resilience") / "artifact"
    system.save_artifact(path)
    return path


@pytest.fixture(scope="module")
def queries(system):
    from repro.serving.loadgen import candidate_queries

    return candidate_queries(system, 10)


def answer_key(answer):
    """Everything observable about an answer except timings."""
    return (
        answer.experts,
        tuple(answer.terms),
        answer.matched_domain,
        answer.snapshot_version,
    )


@pytest.fixture(scope="module")
def reference(system, queries):
    with ExpertService(system) as service:
        return {q: answer_key(service.query(q)) for q in queries}


def spawn(name, artifact_dir, **kwargs):
    kwargs.setdefault("detection_workers", 1)
    kwargs.setdefault("request_timeout_seconds", 30.0)
    return SubprocessReplica(name, artifact_dir, **kwargs)


def wait_until(predicate, timeout, step=0.02) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(step)
    return predicate()


def shard_query(router, shard, pool):
    return next(
        q for q in pool if router.sharding.shard_of_term(q) == shard
    )


# -- SIGKILL -> failover -> supervised recovery --------------------------------


class TestKillAndRecover:
    def test_sigkill_fails_over_then_supervisor_restores_coverage(
        self, artifact_dir, queries, reference
    ):
        replicas = [spawn(f"replica-{i}", artifact_dir) for i in range(2)]
        router = FleetRouter.from_artifact(
            artifact_dir,
            replicas,
            sharding="hash",
            config=FleetConfig(hedging=False),
        )
        supervisor = ReplicaSupervisor(
            router,
            {
                replica.name: (
                    lambda name=replica.name: spawn(name, artifact_dir)
                )
                for replica in replicas
            },
            SupervisorConfig(
                probe_timeout_seconds=2.0,
                backoff_initial_seconds=0.05,
                restart_budget=5,
            ),
        )
        try:
            victim = router.replica("replica-0")
            os.kill(victim.pid, signal.SIGKILL)
            assert wait_until(lambda: not victim.is_alive(), timeout=10)

            # the fleet keeps answering, byte-identically, via failover
            for query in queries:
                assert answer_key(router.query(query)) == reference[query]
            assert router.stats().failovers >= 1

            # the supervisor swaps in a fresh warm-started worker
            def restored():
                supervisor.check_now()
                fresh = router.replica("replica-0")
                return (
                    fresh is not victim
                    and fresh.is_alive()
                    and fresh.ping(timeout=2.0)
                )

            assert wait_until(restored, timeout=120, step=0.05)
            stats = supervisor.stats()
            assert stats.restarts >= 1
            assert stats.gave_up == 0
            slot = next(s for s in stats.slots if s.name == "replica-0")
            assert slot.state == "healthy"
            assert slot.last_recovery_seconds is not None

            # full coverage again: both replicas answer, byte-identically
            for query in queries:
                assert answer_key(router.query(query)) == reference[query]
            assert router.replica("replica-0").health().requests >= 0
        finally:
            router.close()


# -- startup discipline --------------------------------------------------------


class TestStartupFailures:
    def test_missing_artifact_is_a_typed_startup_error(self, tmp_path):
        with pytest.raises(ReplicaStartupError, match="warm start") as info:
            spawn("doomed", tmp_path / "no-such-artifact")
        err = info.value
        # the worker's dying words ride along for diagnosis
        assert any("artifact" in line for line in err.stderr_tail)

    def test_startup_timeout_is_enforced(self, artifact_dir):
        # a latency fault on the worker's artifact reads stalls its warm
        # start well past the startup budget
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    site="artifact.read",
                    kind="latency",
                    seconds=30.0,
                    times=1,
                ),
            )
        )
        started = time.perf_counter()
        with pytest.raises(ReplicaStartupError, match="not ready within"):
            spawn(
                "stalled",
                artifact_dir,
                startup_timeout_seconds=1.0,
                extra_env={inject.ENV_PLAN: plan.to_json()},
            )
        assert time.perf_counter() - started < 20.0

    def test_bit_flipped_artifact_is_rejected_typed(
        self, artifact_dir, tmp_path
    ):
        corrupt = tmp_path / "corrupt-artifact"
        shutil.copytree(artifact_dir, corrupt)
        # skip legacy files shadowed by a sidecar sibling — the loader
        # prefers the sidecar form, so only still-read files count
        stage = max(
            (
                p
                for p in corrupt.glob("stage-*.jsonl")
                if p.name.endswith(".meta.jsonl")
                or not (p.parent / f"{p.stem}.meta.jsonl").exists()
            ),
            key=lambda p: p.stat().st_size,
        )
        payload = bytearray(stage.read_bytes())
        middle = len(payload) // 2
        payload[middle] ^= 0xFF  # one flipped bit-pattern mid-file
        stage.write_bytes(bytes(payload))

        # a restart factory pointed at it fails loud, not wrong: the
        # manifest checksum rejects the stage before anything decodes
        with pytest.raises(ArtifactError):
            ESharp.from_artifact(corrupt)
        with pytest.raises(ReplicaStartupError) as info:
            spawn("poisoned", corrupt)
        assert any(
            "artifact" in line.lower() for line in info.value.stderr_tail
        )


# -- chaos plans against live workers ------------------------------------------


class TestWorkerChaosPlans:
    def test_scheduled_worker_exit_fails_over_and_kills_no_answers(
        self, artifact_dir, queries, reference
    ):
        # the worker hard-exits on its second dispatched request — the
        # REPRO_CHAOS_PLAN env route subprocess workers install at boot
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    site="worker.dispatch",
                    kind="exit",
                    after_calls=1,
                    times=1,
                    exit_code=70,
                ),
            )
        )
        replicas = [
            spawn(
                "replica-0",
                artifact_dir,
                extra_env={inject.ENV_PLAN: plan.to_json()},
            ),
            spawn("replica-1", artifact_dir),
        ]
        router = FleetRouter.from_artifact(
            artifact_dir,
            replicas,
            sharding="hash",
            config=FleetConfig(hedging=False),
        )
        try:
            for query in queries:
                assert answer_key(router.query(query)) == reference[query]
            stats = router.stats()
            assert stats.failovers >= 1
            # the plan really did kill the worker mid-stream
            assert not router.replica("replica-0").is_alive()
        finally:
            router.close()

    def test_corrupted_reply_frame_is_detected_never_served(
        self, artifact_dir, queries, reference
    ):
        # corrupt the worker's first post-handshake reply frame: the
        # client must fail typed and fail over, never parse garbage
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    site="wire.worker.write",
                    kind="corrupt_frame",
                    after_calls=1,  # let the ready handshake through
                    times=1,
                ),
            )
        )
        replicas = [
            spawn(
                "replica-0",
                artifact_dir,
                extra_env={inject.ENV_PLAN: plan.to_json()},
            ),
            spawn("replica-1", artifact_dir),
        ]
        router = FleetRouter.from_artifact(
            artifact_dir,
            replicas,
            sharding="hash",
            config=FleetConfig(hedging=False),
        )
        try:
            query = shard_query(router, 0, queries)
            assert answer_key(router.query(query)) == reference[query]
            assert router.stats().failovers == 1
        finally:
            router.close()

    def test_dropped_request_frame_times_out_typed_and_fails_over(
        self, system, artifact_dir
    ):
        # swallow the client's first query frame entirely; the bounded
        # reply timeout turns the silence into a typed failover
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    site="wire.client.write",
                    kind="drop_frame",
                    times=1,
                    match=(("op", "query"),),
                ),
            )
        )
        replicas = [
            spawn(f"replica-{i}", artifact_dir, request_timeout_seconds=2.0)
            for i in range(2)
        ]
        router = FleetRouter.from_artifact(
            artifact_dir,
            replicas,
            sharding="hash",
            config=FleetConfig(hedging=False),
        )
        try:
            # an unmatched phrase expands to itself: exactly one shard,
            # one 'query' frame — the one the plan swallows
            query = shard_query(
                router, 0, (f"unmatched probe {i}" for i in range(64))
            )
            with ExpertService(system) as service:
                expected = answer_key(service.query(query))
            with inject.installed(plan):
                started = time.perf_counter()
                assert answer_key(router.query(query)) == expected
                assert time.perf_counter() - started < 25.0
            assert router.stats().failovers == 1
        finally:
            inject.uninstall()
            router.close()

"""Shared fixtures.

Expensive artifacts (world, log, graph, platform, built system) are
session-scoped at a deliberately small scale so the whole suite stays
fast while every integration path is still exercised on real data.

Set ``REPRO_LOCKWATCH=1`` to run the whole suite on instrumented locks
(:mod:`repro.analysis.lockwatch`): every lock created by project code
feeds a runtime lock-order graph, and each test fails if it introduced
an ordering cycle or held a watched lock past the budget.  CI runs the
concurrency-heavy test files under this flag.
"""

from __future__ import annotations

import pytest

from repro.core.config import ESharpConfig
from repro.core.esharp import ESharp
from repro.microblog.generator import generate_platform
from repro.querylog.generator import generate_query_log
from repro.simgraph.extract import extract_similarity_graph
from repro.simgraph.graph import MultiGraph
from repro.worldmodel.builder import build_world


TEST_SEED = 1234


def pytest_configure(config):
    from repro.analysis import lockwatch

    # before any session fixture builds a system, so those locks are
    # watched too
    lockwatch.install_from_env()


def pytest_unconfigure(config):
    from repro.analysis import lockwatch

    if lockwatch.active_watch() is not None:
        lockwatch.uninstall()


@pytest.fixture(autouse=True)
def _lockwatch_check():
    """Per-test sanitizer gate (no-op unless REPRO_LOCKWATCH=1)."""
    from repro.analysis import lockwatch

    yield
    watch = lockwatch.active_watch()
    if watch is None:
        return
    watch.check()  # raises LockOrderError on a newly observed cycle
    violations = watch.drain_hold_violations()
    if violations:
        pytest.fail(
            "lock hold budget exceeded: "
            + ", ".join(repr(v) for v in violations)
        )


@pytest.fixture(scope="session")
def small_config() -> ESharpConfig:
    return ESharpConfig.small(seed=TEST_SEED)


@pytest.fixture(scope="session")
def world(small_config):
    return build_world(small_config.world)


@pytest.fixture(scope="session")
def query_store(world, small_config):
    return generate_query_log(world, small_config.querylog)


@pytest.fixture(scope="session")
def extraction(query_store, small_config):
    return extract_similarity_graph(query_store, small_config.similarity)


@pytest.fixture(scope="session")
def multigraph(extraction) -> MultiGraph:
    return extraction.multigraph


@pytest.fixture(scope="session")
def platform(world, small_config):
    return generate_platform(world, small_config.microblog)


@pytest.fixture(scope="session")
def system(small_config) -> ESharp:
    return ESharp(small_config).build()


@pytest.fixture(scope="session")
def system_b() -> ESharp:
    """A second, genuinely different corpus (different seed) — the
    other tenant in multi-tenant tests."""
    return ESharp(ESharpConfig.small(seed=TEST_SEED + 1)).build()


@pytest.fixture(scope="session")
def tenant_artifacts(system, system_b, tmp_path_factory):
    """Two complete tenant artifact directories: ``{"a": ..., "b": ...}``."""
    root = tmp_path_factory.mktemp("tenants")
    system.save_artifact(root / "a")
    system_b.save_artifact(root / "b")
    return {"a": root / "a", "b": root / "b"}


@pytest.fixture
def triangle_graph() -> MultiGraph:
    """Two dense triangles joined by one weak edge — the canonical
    community-detection toy instance."""
    graph = MultiGraph()
    for u, v in (("a1", "a2"), ("a1", "a3"), ("a2", "a3")):
        graph.add_edge(u, v, 5)
    for u, v in (("b1", "b2"), ("b1", "b3"), ("b2", "b3")):
        graph.add_edge(u, v, 5)
    graph.add_edge("a1", "b1", 1)
    return graph

"""Modularity arithmetic (Eq. 1–9), including the shortcut identity."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.community.modularity import (
    CommunityStats,
    community_modularity,
    delta_modularity,
    delta_modularity_direct,
    total_modularity,
)
from repro.community.partition import Partition, singleton_partition
from repro.simgraph.graph import MultiGraph


def random_graph_and_partition(seed: int, vertices: int = 8, edges: int = 14):
    rng = random.Random(seed)
    names = [f"v{i}" for i in range(vertices)]
    graph = MultiGraph()
    for name in names:
        graph.add_vertex(name)
    for _ in range(edges):
        u, v = rng.sample(names, 2)
        graph.add_edge(u, v, rng.randint(1, 4))
    communities = [f"c{i}" for i in range(rng.randint(2, 4))]
    partition = Partition({name: rng.choice(communities) for name in names})
    return graph, partition


class TestCommunityModularity:
    def test_empty_graph(self):
        assert community_modularity(0, 0, 0) == 0.0

    def test_whole_graph_zero(self):
        # all edges internal, D_C = D_G ⇒ Mod = m_G − m_G = 0
        assert community_modularity(10, 20, 10) == 0.0

    def test_known_value(self):
        # C has 3 internal edges, degree sum 8, in a graph of 10 edges
        assert community_modularity(3, 8, 10) == 3 - 10 * (8 / 20) ** 2


class TestCommunityStats:
    def test_triangle_example(self, triangle_graph):
        partition = Partition(
            {"a1": "A", "a2": "A", "a3": "A", "b1": "B", "b2": "B", "b3": "B"}
        )
        stats = CommunityStats.from_partition(triangle_graph, partition)
        assert stats.internal_edges["A"] == 15
        assert stats.internal_edges["B"] == 15
        assert stats.between("A", "B") == 1
        assert stats.degree_sum["A"] == 31  # 3 triangles * 10 + bridge
        assert stats.total_edges == 31

    def test_isolated_vertex_zero_degree(self):
        graph = MultiGraph()
        graph.add_edge("a", "b")
        graph.add_vertex("solo")
        partition = singleton_partition(graph.vertices())
        stats = CommunityStats.from_partition(graph, partition)
        assert stats.degree_sum["solo"] == 0
        assert stats.internal_edges["solo"] == 0


class TestDeltaModularity:
    def test_shortcut_formula(self):
        assert delta_modularity(5, 6, 8, 20) == 5 - (6 * 8) / 40

    def test_empty_graph(self):
        assert delta_modularity(0, 0, 0, 0) == 0.0

    @settings(max_examples=60)
    @given(st.integers(0, 10_000))
    def test_shortcut_equals_direct_three_term_form(self, seed):
        """Eq. 8–9 == Eq. 7 on random graphs and partitions."""
        graph, partition = random_graph_and_partition(seed)
        communities = partition.communities()
        if len(communities) < 2:
            return
        c1, c2 = communities[0], communities[1]
        stats = CommunityStats.from_partition(graph, partition)
        shortcut = delta_modularity(
            stats.between(c1, c2),
            stats.degree_sum.get(c1, 0),
            stats.degree_sum.get(c2, 0),
            stats.total_edges,
        )
        direct = delta_modularity_direct(graph, partition, c1, c2)
        assert math.isclose(shortcut, direct, rel_tol=1e-9, abs_tol=1e-9)

    def test_direct_requires_distinct_communities(self, triangle_graph):
        partition = singleton_partition(triangle_graph.vertices())
        with pytest.raises(ValueError):
            delta_modularity_direct(triangle_graph, partition, "a1", "a1")


class TestTotalModularity:
    def test_singletons_negative_or_zero(self, triangle_graph):
        # singletons have no internal edges, only expected-edge penalty
        value = total_modularity(
            triangle_graph, singleton_partition(triangle_graph.vertices())
        )
        assert value < 0

    def test_good_partition_beats_singletons(self, triangle_graph):
        good = Partition(
            {"a1": "A", "a2": "A", "a3": "A", "b1": "B", "b2": "B", "b3": "B"}
        )
        singles = singleton_partition(triangle_graph.vertices())
        assert total_modularity(triangle_graph, good) > total_modularity(
            triangle_graph, singles
        )

    @settings(max_examples=40)
    @given(st.integers(0, 10_000))
    def test_invariant_under_label_renaming(self, seed):
        graph, partition = random_graph_and_partition(seed)
        renamed = partition.relabel(
            {c: f"renamed-{c}" for c in partition.communities()}
        )
        assert math.isclose(
            total_modularity(graph, partition),
            total_modularity(graph, renamed),
            rel_tol=1e-12,
        )

    @settings(max_examples=40)
    @given(st.integers(0, 10_000))
    def test_merge_changes_total_by_delta(self, seed):
        """TMod(after merge) − TMod(before) == ΔMod(c1, c2)."""
        graph, partition = random_graph_and_partition(seed)
        communities = partition.communities()
        if len(communities) < 2:
            return
        c1, c2 = communities[0], communities[1]
        delta = delta_modularity_direct(graph, partition, c1, c2)
        merged = partition.relabel({c2: c1})
        assert math.isclose(
            total_modularity(graph, merged)
            - total_modularity(graph, partition),
            delta,
            rel_tol=1e-9,
            abs_tol=1e-9,
        )

    def test_one_community_total_is_zero(self, triangle_graph):
        partition = Partition(
            {v: "all" for v in triangle_graph.vertices()}
        )
        assert abs(total_modularity(triangle_graph, partition)) < 1e-12

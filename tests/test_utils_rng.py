"""Deterministic RNG derivation."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.utils.rng import SeedSequenceFactory, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a") == derive_seed(42, "a")

    def test_name_sensitivity(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_64_bit_range(self):
        seed = derive_seed(123456789, "component")
        assert 0 <= seed < 2**64

    @given(st.integers(), st.text(max_size=50))
    def test_always_in_range(self, root, name):
        assert 0 <= derive_seed(root, name) < 2**64

    def test_stable_value(self):
        # pin the mapping: a silent change would invalidate every
        # recorded experiment
        assert derive_seed(2016, "querylog") == derive_seed(2016, "querylog")
        assert isinstance(derive_seed(2016, "querylog"), int)


class TestSeedSequenceFactory:
    def test_same_name_same_stream(self):
        factory = SeedSequenceFactory(7)
        a = factory.stream("x")
        b = factory.stream("x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_differ(self):
        factory = SeedSequenceFactory(7)
        assert factory.stream("x").random() != factory.stream("y").random()

    def test_substreams_are_independent(self):
        factory = SeedSequenceFactory(7)
        streams = list(factory.substreams("worker", 4))
        values = [s.random() for s in streams]
        assert len(set(values)) == 4

    def test_substreams_count(self):
        factory = SeedSequenceFactory(7)
        assert len(list(factory.substreams("w", 10))) == 10

    def test_spawn_changes_root(self):
        factory = SeedSequenceFactory(7)
        child = factory.spawn("child")
        assert child.root_seed == factory.seed_for("child")
        assert child.stream("x").random() != factory.stream("x").random()

    def test_rejects_non_int_seed(self):
        with pytest.raises(TypeError):
            SeedSequenceFactory("seven")  # type: ignore[arg-type]

    def test_streams_are_random_instances(self):
        assert isinstance(SeedSequenceFactory(1).stream("s"), random.Random)

    def test_adding_consumers_does_not_perturb(self):
        """Deriving a new name never changes an existing stream."""
        factory = SeedSequenceFactory(99)
        before = factory.stream("stable").random()
        factory.stream("newcomer")
        assert factory.stream("stable").random() == before

"""Crowdsourcing simulator: workers, tasks, judging, the full study."""

import random

import pytest

from repro.crowd.judging import Vote, cast_vote, majority_vote
from repro.crowd.metrics import impurity, true_impurity
from repro.crowd.study import CrowdStudy, StudyConfig
from repro.crowd.tasks import JudgingChunk, build_chunks, interleave
from repro.crowd.workers import CrowdWorker, WorkerPool
from repro.detector.ranking import RankedExpert
from repro.detector.features import FeatureVector
from repro.detector.normalize import NormalizedFeatures


def make_expert(user_id: int, score: float = 1.0) -> RankedExpert:
    return RankedExpert(
        user_id=user_id,
        screen_name=f"u{user_id}",
        description="d",
        verified=False,
        followers=10,
        score=score,
        features=FeatureVector(user_id, 0.5, 0.5, 0.5),
        zscores=NormalizedFeatures(user_id, 0.0, 0.0, 0.0),
    )


class TestWorkerPool:
    def test_pool_size(self):
        pool = WorkerPool.build(("sports",), seed=1, size=64)
        assert len(pool) == 64

    def test_deterministic(self):
        a = WorkerPool.build(("sports",), seed=1)
        b = WorkerPool.build(("sports",), seed=1)
        assert [w.reliability for w in a.workers] == [
            w.reliability for w in b.workers
        ]

    def test_gold_screen_removes_spammers(self):
        pool = WorkerPool.build(("sports",), seed=1, size=60,
                                spammer_fraction=0.2)
        pool.run_gold_screen(seed=1)
        screened = pool.screened()
        spammers_total = sum(1 for w in pool.workers if w.is_spammer)
        spammers_left = sum(1 for w in screened if w.is_spammer)
        # a coin-flipper passes a 4-of-5 trivial screen ~19% of the time
        assert spammers_left <= 0.35 * spammers_total
        diligent_total = sum(1 for w in pool.workers if not w.is_spammer)
        diligent_kept = sum(1 for w in screened if not w.is_spammer)
        assert diligent_kept >= 0.8 * diligent_total

    def test_reliability_bounds(self):
        with pytest.raises(ValueError):
            CrowdWorker(1, 1.5, {})

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            WorkerPool.build(("s",), size=0)
        with pytest.raises(ValueError):
            WorkerPool.build(("s",), spammer_fraction=1.0)


class TestTasks:
    def test_interleave_alternates(self):
        first = [make_expert(1), make_expert(2)]
        second = [make_expert(3), make_expert(4)]
        merged = interleave(first, second)
        assert [e.user_id for e in merged] == [1, 3, 2, 4]

    def test_interleave_dedupes(self):
        shared = make_expert(1)
        merged = interleave([shared, make_expert(2)], [shared])
        assert [e.user_id for e in merged] == [1, 2]

    def test_interleave_empty(self):
        assert interleave([], []) == []

    def test_chunks_bounded(self):
        experts = [make_expert(i) for i in range(14)]
        chunks = build_chunks("q", experts, random.Random(0), chunk_size=6)
        assert [len(c.expert_ids) for c in chunks] == [6, 6, 2]

    def test_chunks_cover_everyone(self):
        experts = [make_expert(i) for i in range(9)]
        chunks = build_chunks("q", experts, random.Random(0))
        covered = {uid for c in chunks for uid in c.expert_ids}
        assert covered == set(range(9))

    def test_empty_chunk_rejected(self):
        with pytest.raises(ValueError):
            JudgingChunk("q", ())


class TestJudging:
    def test_reliable_knowledgeable_worker_correct(self):
        worker = CrowdWorker(1, 1.0, {"sports": 1.0})
        rng = random.Random(0)
        assert cast_vote(worker, "sports", True, rng) is Vote.EXPERT
        assert cast_vote(worker, "sports", False, rng) is Vote.NON_EXPERT

    def test_ignorant_worker_skips(self):
        worker = CrowdWorker(1, 1.0, {"sports": 0.0})
        assert cast_vote(worker, "sports", True, random.Random(0)) is Vote.SKIP

    def test_spammer_random(self):
        worker = CrowdWorker(1, 0.5, {}, is_spammer=True)
        rng = random.Random(0)
        votes = {cast_vote(worker, "sports", True, rng) for _ in range(50)}
        assert votes == {Vote.EXPERT, Vote.NON_EXPERT}

    def test_majority_vote(self):
        assert majority_vote(
            [Vote.NON_EXPERT, Vote.NON_EXPERT, Vote.EXPERT]
        ) is Vote.NON_EXPERT
        assert majority_vote([Vote.EXPERT, Vote.NON_EXPERT]) is Vote.EXPERT
        assert majority_vote([Vote.SKIP, Vote.SKIP]) is Vote.EXPERT


class TestCrowdStudy:
    @pytest.fixture(scope="class")
    def study(self, world, platform):
        return CrowdStudy(world, platform, StudyConfig(seed=4))

    def _experts_for(self, platform, world, topic, relevant: bool):
        users = list(platform.users())
        if relevant:
            pool = [u for u in users if u.is_expert_on(topic.topic_id)]
        else:
            pool = [u for u in users if u.persona == "spammer"]
        return [make_expert(u.user_id) for u in pool[:6]]

    def test_relevant_experts_survive(self, study, platform, world):
        topic = max(
            (t for t in world.topics if t.microblog_affinity > 0.5),
            key=lambda t: t.popularity,
        )
        experts = self._experts_for(platform, world, topic, relevant=True)
        if not experts:
            pytest.skip("no experts at this scale")
        outcome = study.judge_results(topic.canonical.text, experts, [])
        flagged = impurity(topic.canonical.text, experts, outcome)
        assert flagged < 0.35

    def test_spammers_flagged(self, study, platform, world):
        topic = max(
            (t for t in world.topics if t.microblog_affinity > 0.5),
            key=lambda t: t.popularity,
        )
        fakes = self._experts_for(platform, world, topic, relevant=False)
        outcome = study.judge_results(topic.canonical.text, fakes, [])
        flagged = impurity(topic.canonical.text, fakes, outcome)
        assert flagged > 0.65

    def test_three_judgments_per_expert(self, study, platform, world):
        topic = world.topics[0]
        experts = [make_expert(u.user_id) for u in list(platform.users())[:4]]
        outcome = study.judge_results(topic.canonical.text, experts, [])
        per_expert = {}
        for judgment in outcome.judgments:
            per_expert.setdefault(judgment.user_id, []).append(judgment)
        assert all(len(js) == 3 for js in per_expert.values())

    def test_empty_results_no_judgments(self, study):
        outcome = study.judge_results("whatever", [], [])
        assert outcome.judged_count() == 0

    def test_deterministic(self, world, platform):
        a = CrowdStudy(world, platform, StudyConfig(seed=4))
        b = CrowdStudy(world, platform, StudyConfig(seed=4))
        topic = world.topics[0]
        experts = [make_expert(u.user_id) for u in list(platform.users())[:5]]
        la = a.judge_results(topic.canonical.text, experts, []).labels
        lb = b.judge_results(topic.canonical.text, experts, []).labels
        assert la == lb


class TestMetrics:
    def test_impurity_empty(self):
        from repro.crowd.study import StudyOutcome

        assert impurity("q", [], StudyOutcome()) == 0.0

    def test_true_impurity(self):
        experts = [make_expert(1), make_expert(2)]
        relevance = {("q", 1): True, ("q", 2): False}
        assert true_impurity("q", experts, relevance) == 0.5

"""Codec-level artifact properties.

Every codec must satisfy, for arbitrary inputs:

* **exact round-trip** — decode(encode(x)) reproduces the object's
  state, including floats to the byte and insertion order where it is
  semantically load-bearing;
* **re-encode stability** — save → load → save produces byte-identical
  stage files;
* **typed failure** — a truncated, bit-flipped, mis-headed or
  structurally damaged file raises an :class:`ArtifactError` subclass,
  never returns a half-decoded object (and nothing is ever unpickled).
"""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.artifact.codecs import (
    CODECS,
    MAGIC,
    read_stage_records,
    write_stage_file,
)
from repro.artifact.errors import (
    ArtifactCorruptError,
    ArtifactError,
    ArtifactVersionError,
)
from repro.artifact.manifest import (
    Manifest,
    config_fingerprint,
    config_from_jsonable,
    config_to_jsonable,
    read_manifest,
)
from repro.community.parallel import IterationTrace
from repro.community.partition import Partition
from repro.core.config import ESharpConfig
from repro.detector.engine import IndexedDetectionEngine
from repro.expansion.domainstore import DomainStore
from repro.microblog.platform import MicroblogPlatform
from repro.microblog.tweets import Tweet
from repro.microblog.users import UserProfile
from repro.querylog.records import Impression
from repro.querylog.store import QueryLogStore
from repro.simgraph.graph import MultiGraph, WeightedGraph

SETTINGS = settings(max_examples=25, deadline=None)

names = st.text(alphabet="abcdefgh", min_size=1, max_size=6)
weights = st.floats(
    min_value=1e-6, max_value=100.0, allow_nan=False, allow_infinity=False
)


def roundtrip(tmp_path, name: str, value):
    """Encode → decode → re-encode one artifact through its codec.

    Returns the decoded object after asserting the two encodings are
    byte-identical on disk.
    """
    kind, version, encode, decode = CODECS[name]
    first = tmp_path / "first.jsonl"
    sha, size = write_stage_file(first, kind, version, encode(value))
    records = read_stage_records(first, kind, version, sha, size)
    decoded = decode(records)
    second = tmp_path / "second.jsonl"
    write_stage_file(second, kind, version, encode(decoded))
    assert first.read_bytes() == second.read_bytes()
    return decoded


# -- stage file mechanics ----------------------------------------------------


class TestStageFiles:
    def write(self, tmp_path, records=({"a": 1},), kind="edge-dict"):
        path = tmp_path / "stage.jsonl"
        sha, size = write_stage_file(path, kind, 1, iter(records))
        return path, sha, size

    def test_truncation_is_detected_before_parsing(self, tmp_path):
        path, sha, size = self.write(tmp_path)
        path.write_bytes(path.read_bytes()[: size - 3])
        with pytest.raises(ArtifactCorruptError, match="truncated"):
            read_stage_records(path, "edge-dict", 1, sha, size)

    def test_bit_flip_fails_the_checksum(self, tmp_path):
        path, sha, size = self.write(tmp_path)
        payload = bytearray(path.read_bytes())
        payload[size // 2] ^= 0xFF
        path.write_bytes(bytes(payload))
        with pytest.raises(ArtifactCorruptError, match="checksum"):
            read_stage_records(path, "edge-dict", 1, sha, size)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ArtifactCorruptError, match="missing"):
            read_stage_records(tmp_path / "nope", "edge-dict", 1, "0" * 64, 4)

    def _craft(self, tmp_path, text: str):
        path = tmp_path / "crafted.jsonl"
        payload = text.encode("utf-8")
        path.write_bytes(payload)
        return path, hashlib.sha256(payload).hexdigest(), len(payload)

    def test_unsupported_codec_version_is_typed(self, tmp_path):
        path, sha, size = self._craft(tmp_path, f"{MAGIC} edge-dict 99\n")
        with pytest.raises(ArtifactVersionError, match="version 99"):
            read_stage_records(path, "edge-dict", 1, sha, size)

    def test_wrong_kind_is_rejected(self, tmp_path):
        path, sha, size = self._craft(tmp_path, f"{MAGIC} partition 1\n")
        with pytest.raises(ArtifactCorruptError, match="expected 'edge-dict'"):
            read_stage_records(path, "edge-dict", 1, sha, size)

    def test_missing_header_is_rejected(self, tmp_path):
        path, sha, size = self._craft(tmp_path, '{"a": 1}\n')
        with pytest.raises(ArtifactCorruptError, match="header"):
            read_stage_records(path, "edge-dict", 1, sha, size)

    def test_malformed_record_is_rejected(self, tmp_path):
        path, sha, size = self._craft(
            tmp_path, f"{MAGIC} edge-dict 1\nnot json at all\n"
        )
        with pytest.raises(ArtifactCorruptError, match="malformed record"):
            read_stage_records(path, "edge-dict", 1, sha, size)


# -- per-structure round-trips -----------------------------------------------


class TestQueryLogCodec:
    @SETTINGS
    @given(
        rows=st.lists(
            st.tuples(names, st.lists(names, max_size=3)), max_size=40
        ),
        min_support=st.integers(1, 3),
    )
    def test_roundtrip(self, tmp_path_factory, rows, min_support):
        tmp_path = tmp_path_factory.mktemp("querylog")
        store = QueryLogStore(min_support=min_support)
        store.extend(
            Impression(query=query, clicked_urls=tuple(urls))
            for query, urls in rows
        )
        loaded = roundtrip(tmp_path, "store", store)
        assert loaded.min_support == store.min_support
        assert loaded.impressions == store.impressions
        assert loaded.raw_bytes == store.raw_bytes
        # exact content *and* insertion order (norm summation order)
        assert list(loaded.iter_query_counts()) == list(
            store.iter_query_counts()
        )
        assert list(loaded.iter_clicks()) == list(store.iter_clicks())

    def test_negative_count_is_corrupt(self, tmp_path):
        kind, version, _encode, decode = CODECS["store"]
        records = [
            {"meta": {"min_support": 1, "impressions": 1, "raw_bytes": 1}},
            {"q": [["q", -1]]},
        ]
        with pytest.raises(ArtifactCorruptError):
            decode(records)


class TestGraphCodecs:
    @SETTINGS
    @given(
        edges=st.dictionaries(
            st.tuples(names, names).filter(lambda p: p[0] != p[1]),
            weights,
            max_size=30,
        ),
        isolated=st.sets(names, max_size=5),
    )
    def test_weighted_roundtrip(self, tmp_path_factory, edges, isolated):
        tmp_path = tmp_path_factory.mktemp("weighted")
        graph = WeightedGraph.from_edges(
            {(min(u, v), max(u, v)): w for (u, v), w in edges.items()}
        )
        for vertex in isolated:
            graph.add_vertex(vertex)
        loaded = roundtrip(tmp_path, "weighted_graph", graph)
        assert list(loaded.edges()) == list(graph.edges())  # exact floats
        assert loaded.sorted_vertices() == graph.sorted_vertices()

    @SETTINGS
    @given(
        edges=st.dictionaries(
            st.tuples(names, names).filter(lambda p: p[0] != p[1]),
            st.integers(1, 9),
            max_size=30,
        ),
        isolated=st.sets(names, max_size=5),
    )
    def test_multigraph_roundtrip(self, tmp_path_factory, edges, isolated):
        tmp_path = tmp_path_factory.mktemp("multi")
        graph = MultiGraph()
        for (u, v), multiplicity in sorted(edges.items()):
            graph.add_edge(u, v, multiplicity)
        for vertex in isolated:
            graph.add_vertex(vertex)
        loaded = roundtrip(tmp_path, "multigraph", graph)
        assert loaded.sorted_edges() == graph.sorted_edges()
        assert loaded.sorted_vertices() == graph.sorted_vertices()
        assert loaded.total_edges == graph.total_edges

    @SETTINGS
    @given(
        edges=st.dictionaries(
            st.tuples(names, names).filter(lambda p: p[0] != p[1]),
            weights,
            max_size=30,
        )
    )
    def test_edge_dict_preserves_insertion_order(
        self, tmp_path_factory, edges
    ):
        tmp_path = tmp_path_factory.mktemp("edges")
        loaded = roundtrip(tmp_path, "refresher_edges", edges)
        assert list(loaded.items()) == list(edges.items())


class TestPartitionAndDomainCodecs:
    @SETTINGS
    @given(assignment=st.dictionaries(names, names, max_size=40))
    def test_partition_roundtrip(self, tmp_path_factory, assignment):
        tmp_path = tmp_path_factory.mktemp("partition")
        partition = Partition(dict(assignment))
        loaded = roundtrip(tmp_path, "partition", partition)
        assert loaded.assignment == partition.assignment
        assert list(loaded.assignment) == list(partition.assignment)

    @SETTINGS
    @given(assignment=st.dictionaries(names, names, min_size=1, max_size=40))
    def test_domain_store_roundtrip(self, tmp_path_factory, assignment):
        tmp_path = tmp_path_factory.mktemp("domains")
        store = DomainStore.from_partition(Partition(dict(assignment)))
        loaded = roundtrip(tmp_path, "domain_store", store)
        assert loaded.domains() == store.domains()

    def test_non_canonical_domain_id_is_corrupt(self):
        _kind, _version, _encode, decode = CODECS["domain_store"]
        with pytest.raises(ArtifactCorruptError, match="canonical"):
            decode([{"d": ["zz", ["aa", "zz"]]}])

    @SETTINGS
    @given(
        rows=st.lists(
            st.tuples(
                st.integers(0, 50),
                st.integers(0, 500),
                st.integers(0, 500),
                weights,
            ),
            max_size=20,
        )
    )
    def test_history_roundtrip(self, tmp_path_factory, rows):
        tmp_path = tmp_path_factory.mktemp("history")
        history = [
            IterationTrace(
                iteration=i, communities=c, merges=m, modularity_gain=g
            )
            for i, c, m, g in rows
        ]
        loaded = roundtrip(tmp_path, "clustering_history", history)
        assert loaded == history


# -- corpus + engine ---------------------------------------------------------


WORDS = ("alpha", "beta", "gamma", "delta", "epsilon", "zeta")


@st.composite
def platforms(draw) -> MicroblogPlatform:
    """A platform built through the real ingestion path, with users
    registering mid-stream, out-of-order retweets, mentions of unknown
    users, and duplicate screen names."""
    n_users = draw(st.integers(1, 5))
    n_tweets = draw(st.integers(0, 25))
    platform = MicroblogPlatform()

    def profile(user_id: int) -> UserProfile:
        return UserProfile(
            user_id=user_id,
            screen_name=draw(st.sampled_from(["dup", f"u{user_id}"])),
            description=f"user {user_id}",
            persona=draw(st.sampled_from(["casual", "focused_expert"])),
            expert_topics=(),
        )

    registered = [0]
    platform.add_user(profile(0))
    pending_users = list(range(1, n_users))
    for tweet_id in range(n_tweets):
        if pending_users and draw(st.booleans()):
            platform.add_user(profile(pending_users.pop(0)))
            registered.append(len(registered))
        author = draw(st.sampled_from(registered))
        text = " ".join(
            draw(
                st.lists(
                    st.sampled_from(WORDS), min_size=1, max_size=4
                )
            )
        )
        mentions = tuple(
            draw(st.lists(st.integers(0, n_users + 1), max_size=2))
        )
        retweet_of = draw(
            st.one_of(st.none(), st.integers(0, n_tweets + 1))
        )
        if retweet_of == tweet_id:
            retweet_of = None  # a tweet cannot retweet itself
        platform.add_tweet(
            Tweet(
                tweet_id=tweet_id,
                author_id=author,
                text=text,
                mentions=mentions,
                retweet_of=retweet_of,
                topic_id=draw(st.one_of(st.none(), st.integers(0, 3))),
            )
        )
    for user_id in pending_users:
        platform.add_user(profile(user_id))
    return platform


def assert_platform_state_equal(
    actual: MicroblogPlatform, expected: MicroblogPlatform
) -> None:
    actual._ensure_tweets()
    expected._ensure_tweets()
    assert actual._tweets == expected._tweets
    assert list(actual._tweets) == list(expected._tweets)
    assert actual._row_of == expected._row_of
    assert actual._users == expected._users
    assert list(actual._users) == list(expected._users)
    assert actual._totals == expected._totals
    assert actual._by_author == expected._by_author
    assert actual._by_screen_name == expected._by_screen_name
    assert actual._postings == expected._postings
    assert list(actual._postings) == list(expected._postings)
    assert actual._col_tweet_ids == expected._col_tweet_ids
    assert actual._col_authors == expected._col_authors
    assert actual._col_retweet_authors == expected._col_retweet_authors
    assert actual._mention_offsets == expected._mention_offsets
    assert actual._mention_ids == expected._mention_ids
    assert actual._pending_retweets == expected._pending_retweets
    assert actual._pending_mentions == expected._pending_mentions
    assert actual.mutation_count == expected.mutation_count


class TestCorpusCodec:
    @SETTINGS
    @given(platform=platforms())
    def test_roundtrip_restores_every_index(
        self, tmp_path_factory, platform
    ):
        tmp_path = tmp_path_factory.mktemp("corpus")
        loaded = roundtrip(tmp_path, "corpus", platform)
        assert_platform_state_equal(loaded, platform)

    @SETTINGS
    @given(platform=platforms())
    def test_deferred_save_is_byte_identical(
        self, tmp_path_factory, platform
    ):
        """Saving a warm-started (never hydrated) platform re-encodes the
        columnar payload without materialising tweets, byte-identically."""
        tmp_path = tmp_path_factory.mktemp("deferred")
        kind, version, encode, decode = CODECS["corpus"]
        first = tmp_path / "first.jsonl"
        sha, size = write_stage_file(first, kind, version, encode(platform))
        loaded = decode(read_stage_records(first, kind, version, sha, size))
        assert loaded._deferred is not None  # still columnar
        second = tmp_path / "second.jsonl"
        write_stage_file(second, kind, version, encode(loaded))
        assert loaded._deferred is not None  # export did not hydrate
        assert first.read_bytes() == second.read_bytes()

    @SETTINGS
    @given(platform=platforms())
    def test_ingestion_continues_after_restore(
        self, tmp_path_factory, platform
    ):
        """A restored platform accepts further add_* calls and ends in the
        same state as the original receiving the same calls — warm-started
        replicas stay first-class citizens for incremental ingest."""
        tmp_path = tmp_path_factory.mktemp("ingest")
        loaded = roundtrip(tmp_path, "corpus", platform)
        follow_up_user = UserProfile(
            user_id=9001,
            screen_name="late",
            description="late joiner",
            persona="casual",
            expert_topics=(),
        )
        follow_up = Tweet(
            tweet_id=9002,
            author_id=9001,
            text="alpha beta",
            mentions=(0,),
        )
        for target in (platform, loaded):
            target.add_user(follow_up_user)
            target.add_tweet(follow_up)
        assert_platform_state_equal(loaded, platform)


class TestEngineCodec:
    @SETTINGS
    @given(platform=platforms())
    def test_roundtrip(self, tmp_path_factory, platform):
        tmp_path = tmp_path_factory.mktemp("engine")
        engine = IndexedDetectionEngine(platform)
        engine.refresh()
        packed = engine.export_packed()
        index, built_at = roundtrip(tmp_path, "engine_index", packed)
        assert built_at == packed[1]
        assert list(index) == list(packed[0])
        for token, candidates in packed[0].items():
            restored = index[token]
            for field in (
                "user_ids",
                "on_topic_tweets",
                "on_topic_mentions",
                "on_topic_retweets_received",
                "topical_signal",
                "mention_impact",
                "retweet_impact",
            ):
                assert getattr(restored, field) == getattr(candidates, field)

    def test_restore_refuses_a_stale_index(self, tmp_path):
        platform = MicroblogPlatform()
        platform.add_user(
            UserProfile(
                user_id=0,
                screen_name="a",
                description="",
                persona="casual",
                expert_topics=(),
            )
        )
        engine = IndexedDetectionEngine(platform)
        engine.refresh()
        index, built_at = engine.export_packed()
        platform.add_tweet(Tweet(tweet_id=0, author_id=0, text="alpha"))
        fresh = IndexedDetectionEngine(platform)
        assert not fresh.restore_packed(index, built_at)
        assert fresh.restore_packed(*engine.export_packed()) is False
        fresh.refresh()  # falls back to an honest rebuild
        assert fresh.stats().built_at_mutation == platform.mutation_count


# -- manifest + config -------------------------------------------------------


class TestManifestAndConfig:
    @pytest.mark.parametrize(
        "config",
        [ESharpConfig.small(seed=7), ESharpConfig.standard(seed=2016)],
    )
    def test_config_roundtrip_preserves_fingerprint(self, config):
        rebuilt = config_from_jsonable(
            ESharpConfig, config_to_jsonable(config)
        )
        assert rebuilt == config
        assert config_fingerprint(rebuilt) == config_fingerprint(config)

    def test_missing_manifest_is_typed(self, tmp_path):
        with pytest.raises(ArtifactError, match="not an artifact directory"):
            read_manifest(tmp_path)

    def test_invalid_json_manifest_is_corrupt(self, tmp_path):
        (tmp_path / "manifest.json").write_text("{nope")
        with pytest.raises(ArtifactCorruptError):
            read_manifest(tmp_path)

    def test_foreign_format_version_is_typed(self, tmp_path):
        (tmp_path / "manifest.json").write_text(
            '{"format": "repro-artifact", "format_version": 999}'
        )
        with pytest.raises(ArtifactVersionError):
            read_manifest(tmp_path)

    def test_not_a_manifest_is_corrupt(self, tmp_path):
        (tmp_path / "manifest.json").write_text('{"format": "other"}')
        with pytest.raises(ArtifactCorruptError, match="format marker"):
            read_manifest(tmp_path)

    def test_manifest_jsonable_roundtrip(self):
        manifest = Manifest(
            format_version=1,
            config_fingerprint="ff",
            seed=7,
            snapshot_version=3,
            complete=True,
            config={"seed": 7},
        )
        assert Manifest.from_jsonable(manifest.to_jsonable()) == manifest

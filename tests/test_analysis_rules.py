"""Positive and negative fixtures for every static-analysis rule.

Each rule gets at least one snippet that must trigger it and one that
must stay clean, so a rule regression (either direction) fails here
before it floods — or silently stops guarding — the real codebase.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis.baseline import Baseline
from repro.analysis.engine import analyze_paths
from repro.analysis.errors import AnalysisUsageError
from repro.analysis.findings import fingerprint_of


def run_rules(tmp_path, source, filename="serving/mod.py"):
    target = tmp_path / filename
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    report = analyze_paths(paths=[target], root=tmp_path)
    return report.findings


def rule_ids(findings):
    return sorted({finding.rule for finding in findings})


class TestLockOrderRule:
    def test_inverted_order_is_a_cycle(self, tmp_path):
        findings = run_rules(tmp_path, """
            import threading

            class Engine:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self):
                    with self._a:
                        with self._b:
                            pass

                def backward(self):
                    with self._b:
                        with self._a:
                            pass
            """)
        assert "LOCK001" in rule_ids(findings)
        [finding] = [f for f in findings if f.rule == "LOCK001"]
        assert "_a" in finding.message and "_b" in finding.message

    def test_consistent_order_is_clean(self, tmp_path):
        findings = run_rules(tmp_path, """
            import threading

            class Engine:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def one(self):
                    with self._a:
                        with self._b:
                            pass

                def two(self):
                    with self._a:
                        with self._b:
                            pass
            """)
        assert "LOCK001" not in rule_ids(findings)

    def test_cycle_through_helper_call_is_found(self, tmp_path):
        """An ordering edge hidden behind a sibling-method call."""
        findings = run_rules(tmp_path, """
            import threading

            class Engine:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self):
                    with self._a:
                        self._grab_b()

                def _grab_b(self):
                    with self._b:
                        pass

                def backward(self):
                    with self._b:
                        with self._a:
                            pass
            """)
        assert "LOCK001" in rule_ids(findings)

    def test_condition_over_lock_is_the_same_lock(self, tmp_path):
        """Two condition views of one mutex must not fake an inversion."""
        findings = run_rules(tmp_path, """
            import threading

            class Gate:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._ready = threading.Condition(self._lock)
                    self._idle = threading.Condition(self._lock)

                def one(self):
                    with self._ready:
                        pass

                def two(self):
                    with self._idle:
                        pass
            """)
        assert findings == []


class TestBlockingUnderLockRule:
    def test_open_under_lock_flagged(self, tmp_path):
        findings = run_rules(tmp_path, """
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()

                def dump(self, path):
                    with self._lock:
                        with open(path, "w") as handle:
                            handle.write("x")
            """)
        assert "LOCK002" in rule_ids(findings)

    def test_sleep_under_lock_flagged(self, tmp_path):
        findings = run_rules(tmp_path, """
            import threading
            import time

            class Poller:
                def __init__(self):
                    self._lock = threading.Lock()

                def spin(self):
                    with self._lock:
                        time.sleep(0.1)
            """)
        assert "LOCK002" in rule_ids(findings)

    def test_condition_wait_on_held_lock_is_exempt(self, tmp_path):
        """``wait()`` releases the lock it waits on — not a blocking hold."""
        findings = run_rules(tmp_path, """
            import threading

            class Gate:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._cond = threading.Condition(self._lock)

                def park(self):
                    with self._cond:
                        self._cond.wait()
            """)
        assert "LOCK002" not in rule_ids(findings)

    def test_io_outside_lock_is_clean(self, tmp_path):
        findings = run_rules(tmp_path, """
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._payload = ""

                def dump(self, path):
                    with self._lock:
                        payload = self._payload
                    with open(path, "w") as handle:
                        handle.write(payload)
            """)
        assert "LOCK002" not in rule_ids(findings)


class TestNestedLockRule:
    def test_nested_plain_lock_is_a_deadlock(self, tmp_path):
        findings = run_rules(tmp_path, """
            import threading

            class Broken:
                def __init__(self):
                    self._lock = threading.Lock()

                def oops(self):
                    with self._lock:
                        with self._lock:
                            pass
            """)
        assert "LOCK003" in rule_ids(findings)

    def test_nested_rlock_is_fine(self, tmp_path):
        findings = run_rules(tmp_path, """
            import threading

            class Reentrant:
                def __init__(self):
                    self._lock = threading.RLock()

                def fine(self):
                    with self._lock:
                        with self._lock:
                            pass
            """)
        assert "LOCK003" not in rule_ids(findings)


class TestGuardedStateRule:
    GUARDED = """
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self._count = 0  # guarded-by: _lock

            def bump(self):
                with self._lock:
                    self._count += 1

            def peek(self):
                return self._count
        """

    def test_unlocked_access_flagged(self, tmp_path):
        findings = run_rules(tmp_path, self.GUARDED)
        guard = [f for f in findings if f.rule == "GUARD001"]
        assert len(guard) == 1
        assert guard[0].symbol == "Counter.peek"
        assert guard[0].subject == "_count"

    def test_locked_access_and_init_are_clean(self, tmp_path):
        findings = run_rules(tmp_path, """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0  # guarded-by: _lock

                def bump(self):
                    with self._lock:
                        self._count += 1
            """)
        assert "GUARD001" not in rule_ids(findings)

    def test_holds_pragma_covers_locked_helpers(self, tmp_path):
        findings = run_rules(tmp_path, """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0  # guarded-by: _lock

                def bump(self):
                    with self._lock:
                        self._bump_locked()

                def _bump_locked(self):  # holds: _lock
                    self._count += 1
            """)
        assert "GUARD001" not in rule_ids(findings)

    def test_condition_alias_satisfies_guard(self, tmp_path):
        """Holding a Condition over the lock *is* holding the lock."""
        findings = run_rules(tmp_path, """
            import threading

            class Gate:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._cond = threading.Condition(self._lock)
                    self._waiters = 0  # guarded-by: _lock

                def join(self):
                    with self._cond:
                        self._waiters += 1
            """)
        assert "GUARD001" not in rule_ids(findings)

    def test_inline_ignore_suppresses(self, tmp_path):
        findings = run_rules(tmp_path, """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0  # guarded-by: _lock

                def peek(self):
                    return self._count  # analysis: ignore[GUARD001]
            """)
        assert "GUARD001" not in rule_ids(findings)


class TestNoPickleRule:
    @pytest.mark.parametrize("line", [
        "import pickle",
        "import marshal",
        "from pickle import loads",
        "import dill",
    ])
    def test_banned_imports(self, tmp_path, line):
        findings = run_rules(tmp_path, f"{line}\n", filename="artifact/m.py")
        assert "PICKLE001" in rule_ids(findings)

    def test_eval_flagged(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "def f(payload):\n    return eval(payload)\n",
            filename="artifact/m.py",
        )
        assert "PICKLE001" in rule_ids(findings)

    def test_json_decode_clean(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "import json\n\ndef f(s):\n    return json.loads(s)\n",
            filename="artifact/m.py",
        )
        assert "PICKLE001" not in rule_ids(findings)


class TestExactnessRule:
    def test_unguarded_numpy_in_exact_module_flagged(self, tmp_path):
        findings = run_rules(tmp_path, """
            # analysis: exact-path
            import numpy as np

            def fast_sum(values):
                return float(np.sum(np.asarray(values)))
            """, filename="simgraph/m.py")
        assert "EXACT001" in rule_ids(findings)

    def test_guard_bearing_function_clean(self, tmp_path):
        findings = run_rules(tmp_path, """
            # analysis: exact-path
            import numpy as np

            _FLOAT64_EXACT = 2**53

            def fast_sum(values, bound):
                if bound >= _FLOAT64_EXACT:
                    return sum(values)
                return float(np.sum(np.asarray(values)))
            """, filename="simgraph/m.py")
        assert "EXACT001" not in rule_ids(findings)

    def test_helper_reached_only_via_guard_is_clean(self, tmp_path):
        findings = run_rules(tmp_path, """
            # analysis: exact-path
            import numpy as np

            _FLOAT64_EXACT = 2**53

            def _kernel(arr):
                return np.sum(arr)

            def join_safe(values, bound):
                if bound >= _FLOAT64_EXACT:
                    return sum(values)
                return float(_kernel(np.asarray(values)))
            """, filename="simgraph/m.py")
        assert "EXACT001" not in rule_ids(findings)

    def test_module_without_pragma_is_out_of_scope(self, tmp_path):
        findings = run_rules(tmp_path, """
            import numpy as np

            def fast_sum(values):
                return float(np.sum(np.asarray(values)))
            """, filename="simgraph/m.py")
        assert "EXACT001" not in rule_ids(findings)


class TestTypedRaiseRule:
    def test_builtin_raise_in_serving_flagged(self, tmp_path):
        findings = run_rules(tmp_path, """
            def handle(op):
                raise ValueError(f"unknown op {op!r}")
            """)
        raises = [f for f in findings if f.rule == "RAISE001"]
        assert len(raises) == 1
        assert raises[0].subject == "ValueError"

    def test_typed_raise_clean(self, tmp_path):
        findings = run_rules(tmp_path, """
            class ServingError(RuntimeError):
                pass

            def handle(op):
                raise ServingError(f"unknown op {op!r}")
            """)
        assert "RAISE001" not in rule_ids(findings)

    def test_constructor_validation_exempt(self, tmp_path):
        findings = run_rules(tmp_path, """
            class Gate:
                def __init__(self, size):
                    if size < 1:
                        raise ValueError("size must be >= 1")
            """)
        assert "RAISE001" not in rule_ids(findings)

    def test_out_of_scope_package_not_flagged(self, tmp_path):
        findings = run_rules(tmp_path, """
            def handle(op):
                raise ValueError(f"unknown op {op!r}")
            """, filename="worldmodel/m.py")
        assert "RAISE001" not in rule_ids(findings)


class TestEngineBehavior:
    def test_baseline_matches_on_fingerprint_not_line(self, tmp_path):
        source = """
            def handle(op):
                raise ValueError("bad")
            """
        [finding] = run_rules(tmp_path, source)
        fp = fingerprint_of(
            finding.rule, finding.path, finding.symbol, finding.subject
        )
        assert fp == finding.fingerprint

        # same violation, different line: still baselined
        shifted = "\n\n\n" + textwrap.dedent(source)
        target = tmp_path / "serving" / "mod.py"
        target.write_text(shifted, encoding="utf-8")
        from repro.analysis.baseline import BaselineEntry

        baseline = Baseline([BaselineEntry(fp, finding.rule, finding.path,
                                           finding.symbol, "known")])
        report = analyze_paths(
            paths=[target], root=tmp_path, baseline=baseline
        )
        assert report.findings == []
        assert len(report.baselined) == 1

    def test_missing_path_is_a_usage_error(self, tmp_path):
        with pytest.raises(AnalysisUsageError):
            analyze_paths(paths=[tmp_path / "nope.py"], root=tmp_path)

    def test_real_tree_is_green_under_checked_in_baseline(self):
        from repro.analysis.engine import default_baseline_path

        baseline = Baseline.load(default_baseline_path())
        report = analyze_paths(baseline=baseline)
        assert report.ok, report.render_text()
        # and the checked-in baseline carries no stale entries
        assert baseline.unused(report.findings + report.baselined) == []

"""Tenancy through the fleet tier: per-tenant routes, the tenant-scoped
promote, the wire protocol, and both replica transports.

The single-tenant fleet property was byte-identity with one
:class:`ExpertService`; the multi-tenant property is byte-identity *per
tenant*: a router over replicas that each serve N corpora must answer
tenant T exactly like a single service over tenant T's artifact — and a
promotion of one tenant must leave every other tenant's version (and
warm cache) untouched on every replica.
"""

from __future__ import annotations

import pytest

from repro.core.esharp import ESharp
from repro.detector.features import FeatureVector
from repro.detector.normalize import NormalizedFeatures
from repro.detector.ranking import RankedExpert
from repro.fleet import (
    FleetConfig,
    FleetRouter,
    FleetTenantMismatchError,
    InProcessReplica,
    ReplicaSupervisor,
    SubprocessReplica,
    SupervisorConfig,
    merge_partials,
    wire,
)
from repro.fleet.errors import FleetError
from repro.serving import (
    DEFAULT_TENANT,
    ExpertService,
    PartialPool,
    ServiceConfig,
    TenantOverloadedError,
    TenantSpec,
    UnknownTenantError,
)


def answer_key(answer):
    return (
        answer.experts,
        tuple(answer.terms),
        answer.matched_domain,
        answer.snapshot_version,
    )


def tenant_specs(tenant_artifacts):
    return [
        TenantSpec("a", str(tenant_artifacts["a"])),
        TenantSpec("b", str(tenant_artifacts["b"])),
    ]


@pytest.fixture(scope="module")
def tenant_queries(system, system_b):
    from repro.serving.loadgen import candidate_queries

    return {
        "a": candidate_queries(system, 12),
        "b": candidate_queries(system_b, 12),
    }


@pytest.fixture(scope="module")
def single_services(system, system_b):
    """Per-tenant single-replica references for byte-identity."""
    config = ServiceConfig(detection_workers=2)
    with ExpertService(system, config) as service_a:
        with ExpertService(system_b, config) as service_b:
            yield {"a": service_a, "b": service_b}


@pytest.fixture(scope="module")
def tenant_fleet(tenant_artifacts):
    """Two in-process replicas, each serving both corpora."""
    replicas = [
        InProcessReplica(
            f"mt-{i}",
            tenant_specs=tenant_specs(tenant_artifacts),
            service_config=ServiceConfig(detection_workers=2),
        )
        for i in range(2)
    ]
    router = FleetRouter.from_tenant_artifacts(
        {name: path for name, path in tenant_artifacts.items()},
        replicas,
        sharding="hash",
    )
    yield router
    router.close()


# -- the replica transports ---------------------------------------------------


class TestMultiTenantReplica:
    def test_replica_serves_each_corpus_byte_identical(
        self, tenant_artifacts, single_services, tenant_queries
    ):
        replica = InProcessReplica(
            "solo", tenant_specs=tenant_specs(tenant_artifacts)
        )
        try:
            assert replica.tenants == ("a", "b")
            for tenant in ("a", "b"):
                for query in tenant_queries[tenant][:4]:
                    assert answer_key(
                        replica.query(query, tenant=tenant)
                    ) == answer_key(single_services[tenant].query(query))
        finally:
            replica.close()

    def test_unknown_tenant_is_typed(self, tenant_artifacts):
        replica = InProcessReplica(
            "solo", tenant_specs=tenant_specs(tenant_artifacts)
        )
        try:
            with pytest.raises(UnknownTenantError):
                replica.query("anything", tenant="ghost")
        finally:
            replica.close()

    def test_single_tenant_replica_rejects_foreign_tenants(self, system):
        replica = InProcessReplica("legacy", system)
        try:
            assert replica.tenants == (DEFAULT_TENANT,)
            with pytest.raises(UnknownTenantError):
                replica.query("anything", tenant="a")
        finally:
            replica.close()

    def test_system_and_tenant_specs_are_mutually_exclusive(
        self, system, tenant_artifacts
    ):
        with pytest.raises(ValueError, match="not both"):
            InProcessReplica(
                "both", system, tenant_specs=tenant_specs(tenant_artifacts)
            )


# -- the router's per-tenant routes -------------------------------------------


class TestTenantRouter:
    def test_router_lists_its_tenants(self, tenant_fleet):
        assert tenant_fleet.tenants() == ("a", "b")

    def test_each_tenant_routes_byte_identical(
        self, tenant_fleet, single_services, tenant_queries
    ):
        for tenant in ("a", "b"):
            for query in tenant_queries[tenant][:6]:
                assert answer_key(
                    tenant_fleet.query(query, tenant=tenant)
                ) == answer_key(single_services[tenant].query(query))

    def test_unknown_tenant_fails_before_any_scatter(self, tenant_fleet):
        with pytest.raises(UnknownTenantError):
            tenant_fleet.query("anything", tenant="ghost")

    def test_multi_tenant_router_has_no_default_route(self, tenant_fleet):
        with pytest.raises(UnknownTenantError):
            tenant_fleet.query("anything")

    def test_health_reports_every_tenant_version(
        self, tenant_fleet, tenant_queries
    ):
        tenant_fleet.query(tenant_queries["a"][0], tenant="a")
        for name, report in tenant_fleet.health().items():
            assert report.tenant_version("a") == 1
            assert report.tenant_version("b") == 1


class TestTenantMergeRefusal:
    def entry(self):
        return (
            0,
            RankedExpert(
                user_id=1,
                screen_name="user1",
                description="",
                verified=False,
                followers=101,
                score=5.0,
                features=FeatureVector(1, 1.0, 1.0, 1.0),
                zscores=NormalizedFeatures(1, 5.0, 5.0, 5.0),
            ),
        )

    def test_cross_tenant_pools_never_merge(self):
        pools = [
            PartialPool(
                query="q", snapshot_version=1,
                entries=(self.entry(),), tenant="a",
            ),
            PartialPool(
                query="q", snapshot_version=1,
                entries=(self.entry(),), tenant="b",
            ),
        ]
        with pytest.raises(FleetTenantMismatchError, match="a.*b"):
            merge_partials(pools, threshold=0.0, max_results=10)

    def test_same_tenant_pools_merge_fine(self):
        pools = [
            PartialPool(
                query="q", snapshot_version=1,
                entries=(self.entry(),), tenant="a",
            ),
            PartialPool(
                query="q", snapshot_version=1, entries=(), tenant="a"
            ),
        ]
        experts, version = merge_partials(
            pools, threshold=0.0, max_results=10
        )
        assert version == 1 and len(experts) == 1


# -- tenant-scoped fleet promotion --------------------------------------------


class TestTenantScopedPromotion:
    @pytest.fixture(scope="class")
    def artifact_a_v2(self, tenant_artifacts, tmp_path_factory):
        path = tmp_path_factory.mktemp("tenancy-fleet") / "a-v2"
        upgraded = ESharp.from_artifact(tenant_artifacts["a"])
        upgraded.refresh_domains()
        upgraded.save_artifact(path)
        return path

    def test_promote_rolls_one_tenant_everywhere_only(
        self, tenant_artifacts, artifact_a_v2, tenant_queries
    ):
        replicas = [
            InProcessReplica(
                f"roll-{i}",
                tenant_specs=tenant_specs(tenant_artifacts),
                service_config=ServiceConfig(detection_workers=1),
            )
            for i in range(2)
        ]
        router = FleetRouter.from_tenant_artifacts(
            dict(tenant_artifacts), replicas, sharding="hash"
        )
        try:
            query_b = tenant_queries["b"][0]
            before = {}
            for replica in replicas:
                before[replica.name] = replica.query(query_b, tenant="b")
                assert replica.query(query_b, tenant="b").cache_hit
            version = router.promote(str(artifact_a_v2), tenant="a")
            assert version == 2
            for replica in replicas:
                report = replica.health()
                assert report.tenant_version("a") == 2
                assert report.tenant_version("b") == 1  # untouched
                # tenant B's cache survived tenant A's promotion
                after = replica.query(query_b, tenant="b")
                assert after.cache_hit
                assert answer_key(after) == answer_key(before[replica.name])
        finally:
            router.close()


# -- the wire protocol --------------------------------------------------------


class TestTenantWire:
    def test_answer_round_trip_keeps_the_tenant(
        self, single_services, tenant_queries
    ):
        answer = single_services["b"].query(tenant_queries["b"][0])
        stamped = type(answer)(**{**answer.__dict__, "tenant": "b"})
        assert wire.answer_from_wire(wire.answer_to_wire(stamped)) == stamped

    def test_legacy_answer_frames_default_the_tenant(self):
        raw = {
            "query": "q", "experts": [], "terms": [],
            "matched_domain": None, "snapshot_version": 3,
            "cache_hit": False, "coalesced": False,
            "expansion_seconds": 0.0, "detection_seconds": 0.0,
            "total_seconds": 0.0,
        }
        assert wire.answer_from_wire(raw).tenant == DEFAULT_TENANT

    def test_partial_round_trip_keeps_the_tenant(self):
        pool = PartialPool(
            query="q", snapshot_version=2, entries=(), tenant="a"
        )
        assert wire.partial_from_wire(wire.partial_to_wire(pool)) == pool

    def test_tenant_errors_survive_the_wire(self):
        overloaded = wire.error_from_wire(
            wire.error_to_wire(TenantOverloadedError("a", "queue full"))
        )
        assert isinstance(overloaded, TenantOverloadedError)
        assert overloaded.tenant == "a"
        unknown = wire.error_from_wire(
            wire.error_to_wire(UnknownTenantError("ghost", ("a", "b")))
        )
        assert isinstance(unknown, UnknownTenantError)
        assert unknown.tenant == "ghost"

    def test_health_round_trip_keeps_tenant_breakdown(self, tenant_artifacts):
        replica = InProcessReplica(
            "h", tenant_specs=tenant_specs(tenant_artifacts)
        )
        try:
            replica.preload(str(tenant_artifacts["a"]), tenant="a")
            report = replica.health()
            decoded = wire.health_from_wire(report.to_dict())
            assert decoded == report
            assert decoded.tenant_version("a") == 1
        finally:
            replica.close()


# -- subprocess workers -------------------------------------------------------


class TestSubprocessMultiTenant:
    @pytest.fixture(scope="class")
    def worker(self, tenant_artifacts):
        replica = SubprocessReplica(
            "mtw-0",
            tenants={
                name: str(path) for name, path in tenant_artifacts.items()
            },
            detection_workers=1,
        )
        yield replica
        replica.close()

    def test_handshake_reports_the_tenants(self, worker):
        assert worker.tenants == ("a", "b")
        assert worker.ping()

    def test_each_tenant_matches_in_process(
        self, worker, single_services, tenant_queries
    ):
        for tenant in ("a", "b"):
            for query in tenant_queries[tenant][:3]:
                theirs = worker.query(query, tenant=tenant)
                assert theirs.tenant == tenant
                assert answer_key(theirs) == answer_key(
                    single_services[tenant].query(query)
                )

    def test_unknown_tenant_error_crosses_the_process_boundary(self, worker):
        with pytest.raises(UnknownTenantError):
            worker.query("anything", tenant="ghost")

    def test_artifact_dir_and_tenants_are_mutually_exclusive(
        self, tenant_artifacts
    ):
        with pytest.raises(ValueError, match="exactly one"):
            SubprocessReplica(
                "bad",
                str(tenant_artifacts["a"]),
                tenants={"a": str(tenant_artifacts["a"])},
            )
        with pytest.raises(ValueError, match="exactly one"):
            SubprocessReplica("bad")


# -- chaos scoped to one tenant ----------------------------------------------


class TestTenantScopedChaos:
    def test_fault_plan_breaks_exactly_one_corpus(
        self, tenant_artifacts, tenant_queries
    ):
        """A tenant-matched fault plan crashes tenant A's calls on the
        scheduled count while tenant B's interleaved traffic neither
        fires it nor consumes its budget."""
        from repro.chaos import ChaosCrashError, FaultPlan, FaultSpec, inject

        replica = InProcessReplica(
            "chaos-0",
            tenant_specs=tenant_specs(tenant_artifacts),
            service_config=ServiceConfig(detection_workers=1),
        )
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    site="replica.call",
                    kind="crash",
                    after_calls=1,
                    times=1,
                    match=(("tenant", "a"), ("op", "query")),
                ),
            )
        )
        inject.install(plan)
        try:
            query_a, query_b = tenant_queries["a"][0], tenant_queries["b"][0]
            assert replica.query(query_a, tenant="a").tenant == "a"
            for _ in range(3):  # foreign traffic must not burn the budget
                assert replica.query(query_b, tenant="b").tenant == "b"
            with pytest.raises(ChaosCrashError):
                replica.query(query_a, tenant="a")
            # the schedule is spent: both tenants serve again
            assert replica.query(query_a, tenant="a").tenant == "a"
            assert replica.query(query_b, tenant="b").tenant == "b"
        finally:
            inject.uninstall()
            replica.close()


# -- the supervisor records what a restarted replica serves -------------------


class FakeRouter:
    def __init__(self, replicas):
        self._by_name = {r.name: r for r in replicas}
        self.replaced = []

    def replica(self, name):
        if name not in self._by_name:
            raise FleetError(f"unknown replica {name!r}")
        return self._by_name[name]

    def replace_replica(self, name, replica):
        self._by_name[name] = replica
        self.replaced.append(name)


class DeadReplica:
    def __init__(self, name):
        self.name = name
        self.closed = False

    def is_alive(self):
        return False

    def ping(self, timeout=None):
        return False

    def close(self):
        self.closed = True


class TestSupervisorTenantLog:
    def test_restart_log_records_the_replicas_tenants(self, tenant_artifacts):
        router = FakeRouter([DeadReplica("mt-0")])

        def factory():
            return InProcessReplica(
                "mt-0",
                tenant_specs=tenant_specs(tenant_artifacts),
                service_config=ServiceConfig(detection_workers=1),
            )

        supervisor = ReplicaSupervisor(
            router,
            {"mt-0": factory},
            SupervisorConfig(
                probe_timeout_seconds=0.1,
                backoff_initial_seconds=0.0,
                jitter_fraction=0.0,
            ),
        )
        try:
            outcomes = supervisor.check_now()
            assert len(outcomes) == 1 and outcomes[0].ok
            assert outcomes[0].tenants == ("a", "b")
            logged = supervisor.stats().to_dict()["restart_log"]
            assert logged[-1]["tenants"] == ["a", "b"]
        finally:
            supervisor.close()
            router.replica("mt-0").close()

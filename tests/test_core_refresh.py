"""The §6.3 weekly refresh: re-run offline, keep serving."""

import pytest

from repro.core.esharp import NotBuiltError
from repro.querylog.config import QueryLogConfig


class TestRefreshDomains:
    def test_refresh_requires_built_system(self, small_config):
        from repro.core.esharp import ESharp

        with pytest.raises(NotBuiltError):
            ESharp(small_config).refresh_domains()

    def test_refresh_swaps_domains_keeps_corpus(self, small_config):
        from repro.core.esharp import ESharp

        system = ESharp(small_config).build()
        platform_before = system.platform
        domains_before = system.offline.domain_store
        vertex = next(iter(system.offline.partition.assignment))
        answer_before = [e.user_id for e in system.find_experts(vertex)]

        # "a new week of traffic": same world, different log seed
        new_log = QueryLogConfig(
            seed=small_config.querylog.seed + 1,
            impressions=small_config.querylog.impressions,
            min_support=small_config.querylog.min_support,
        )
        system.refresh_domains(new_log)

        assert system.platform is platform_before          # corpus untouched
        assert system.offline.domain_store is not domains_before
        assert system.offline.domain_store.domain_count > 0
        # the system still answers queries after the swap
        answer_after = system.find_experts(vertex)
        assert isinstance(answer_after, list)

    def test_refresh_same_log_reproduces_domains(self, small_config):
        from repro.core.esharp import ESharp

        system = ESharp(small_config).build()
        before = system.offline.partition.as_frozen()
        system.refresh_domains()  # identical config → identical clustering
        assert system.offline.partition.as_frozen() == before

"""World construction invariants."""

import pytest

from repro.utils.text import phrase_key
from repro.worldmodel.builder import build_world
from repro.worldmodel.config import WorldConfig


class TestWorldConfigValidation:
    def test_defaults_valid(self):
        WorldConfig()

    def test_zero_topics_rejected(self):
        with pytest.raises(ValueError):
            WorldConfig(topics_per_domain=0)

    def test_keyword_bounds_ordered(self):
        with pytest.raises(ValueError):
            WorldConfig(min_keywords_per_topic=10, max_keywords_per_topic=4)

    def test_rate_bounds(self):
        with pytest.raises(ValueError):
            WorldConfig(misspelling_rate=1.5)

    def test_empty_domains_rejected(self):
        with pytest.raises(ValueError):
            WorldConfig(domains=())

    def test_scaled(self):
        scaled = WorldConfig(topics_per_domain=40).scaled(0.5)
        assert scaled.topics_per_domain == 20

    def test_scaled_floor(self):
        assert WorldConfig(topics_per_domain=4).scaled(0.01).topics_per_domain == 2

    def test_scaled_rejects_non_positive(self):
        with pytest.raises(ValueError):
            WorldConfig().scaled(0.0)


class TestBuildWorld:
    @pytest.fixture(scope="class")
    def built(self):
        return build_world(WorldConfig(seed=99, topics_per_domain=10))

    def test_topic_count(self, built):
        assert len(built.topics) == 10 * len(built.domains)

    def test_determinism(self, built):
        again = build_world(WorldConfig(seed=99, topics_per_domain=10))
        assert [t.name for t in again.topics] == [t.name for t in built.topics]
        for t1, t2 in zip(built.topics, again.topics):
            assert [k.text for k in t1.keywords] == [k.text for k in t2.keywords]
            assert t1.microblog_affinity == t2.microblog_affinity

    def test_seed_changes_world(self, built):
        other = build_world(WorldConfig(seed=100, topics_per_domain=10))
        assert [t.name for t in other.topics] != [t.name for t in built.topics]

    def test_every_topic_has_canonical(self, built):
        for topic in built.topics:
            assert topic.canonical.kind == "canonical"

    def test_keyword_texts_normalised(self, built):
        for topic in built.topics:
            for keyword in topic.keywords:
                assert keyword.text == phrase_key(keyword.text)

    def test_keyword_budget_respected(self, built):
        config = WorldConfig(seed=99, topics_per_domain=10)
        for topic in built.topics:
            assert len(topic.keywords) <= config.max_keywords_per_topic + 1

    def test_no_duplicate_keywords_within_topic(self, built):
        for topic in built.topics:
            texts = [k.text for k in topic.keywords]
            assert len(texts) == len(set(texts))

    def test_urls_unique_within_topic(self, built):
        for topic in built.topics:
            assert len(topic.urls) == len(set(topic.urls))

    def test_hub_urls_shared_within_domain(self, built):
        for domain in built.domains:
            topics = built.topics_in_domain(domain)
            hubs = {tuple(t.hub_urls) for t in topics}
            assert len(hubs) == 1

    def test_hub_urls_differ_across_domains(self, built):
        hubs = {tuple(built.topics_in_domain(d)[0].hub_urls) for d in built.domains}
        assert len(hubs) == len(built.domains)

    def test_popularity_decreasing_within_domain(self, built):
        for domain in built.domains:
            pops = [t.popularity for t in built.topics_in_domain(domain)]
            assert pops == sorted(pops, reverse=True)

    def test_some_topics_are_search_only(self, built):
        affinities = [t.microblog_affinity for t in built.topics]
        assert any(a < 0.2 for a in affinities)
        assert any(a >= 0.6 for a in affinities)

    def test_some_ambiguity_exists(self, built):
        ambiguous = [t for t in built.vocabulary() if built.is_ambiguous(t)]
        assert ambiguous

    def test_search_only_rate_zero_all_tweetable(self):
        world = build_world(
            WorldConfig(seed=5, topics_per_domain=5, search_only_rate=0.0)
        )
        assert all(t.microblog_affinity >= 0.6 for t in world.topics)

    def test_sports_stems_are_city_noun(self, built):
        for topic in built.topics_in_domain("sports"):
            assert len(topic.name.split()) == 2

    def test_ground_truth_covers_vocabulary(self, built):
        communities = built.ground_truth_communities()
        covered = set().union(*communities.values())
        assert covered == set(built.vocabulary())

"""The binary sidecar layer and its zero-copy consumers, property-tested.

Four contracts from the sidecar design:

* the codec round-trips arbitrary typed columns byte-exactly, and every
  structural corruption (endianness, itemsize, offset table, torn
  write) raises a *typed* artifact error before any decode;
* a torn write never damages the published generation — the scratch
  sibling takes the damage, the previous generation keeps loading;
* copy-on-first-mutation sealing is safe under concurrent readers: a
  reader holding mmap views keeps reading valid bytes while a writer
  seals and mutates;
* delta refresh on an mmap-backed warm start is byte-identical to the
  same refresh on an owned-array load — the vectorized/zero-copy plumbing
  never leaks into results.

The vectorized scoring tail (``detector/vectorized.py``) is likewise
property-tested bit-identical to the scalar ``normalize → score → rank``
pipeline over random feature pools.
"""

from __future__ import annotations

import json
import struct
import sys
import threading
from array import array
from dataclasses import replace
from types import SimpleNamespace

import pytest
from hypothesis import given, settings, strategies as st

from repro.artifact import load_artifact
from repro.artifact.errors import (
    ArtifactCorruptError,
    ArtifactError,
    ArtifactVersionError,
)
from repro.artifact.sidecar import (
    ALIGN,
    MAGIC,
    SidecarWriter,
    open_sidecar,
)
from repro.core.esharp import ESharp
from repro.detector.features import FeatureVector
from repro.detector.normalize import NormalizationConfig, normalize_features
from repro.detector.ranking import RankingConfig, score_candidates
from repro.detector.vectorized import exact_tail_available, score_vectors_exact
from repro.microblog.tweets import Tweet
from repro.querylog.generator import QueryLogGenerator

SETTINGS = settings(max_examples=25, deadline=None)

_FIXED = struct.Struct("<8sI")


@pytest.fixture(scope="module")
def artifact_dir(system, tmp_path_factory):
    root = tmp_path_factory.mktemp("sidecar-artifact") / "generation-1"
    system.save_artifact(root)
    return root


def _write_sidecar(path, columns, blobs=(), kind="test", version=1):
    writer = SidecarWriter(path, kind, version)
    for name, typecode, values in columns:
        writer.add_column(name, array(typecode, values))
    for name, data in blobs:
        writer.add_blob(name, data)
    return writer.finish()


def _rewrite_header(path, mutate):
    """Parse a sidecar's header, apply ``mutate``, and rewrite the file.

    The payload is carried over untouched; only the header (and the
    padding that realigns the payload) changes.  This is how the tests
    forge structurally-corrupt-but-parseable sidecars.
    """
    blob = path.read_bytes()
    magic, header_len = _FIXED.unpack(blob[: _FIXED.size])
    assert magic == MAGIC
    prefix = _FIXED.size + header_len
    header = json.loads(blob[_FIXED.size : prefix].decode("ascii"))
    payload_start = (prefix + ALIGN - 1) // ALIGN * ALIGN
    payload = blob[payload_start:]
    mutate(header)
    header_bytes = json.dumps(
        header, ensure_ascii=True, separators=(",", ":")
    ).encode("ascii")
    new_prefix = _FIXED.size + len(header_bytes)
    padding = b"\x00" * ((new_prefix + ALIGN - 1) // ALIGN * ALIGN - new_prefix)
    path.write_bytes(
        _FIXED.pack(MAGIC, len(header_bytes)) + header_bytes + padding + payload
    )


# -- codec round-trip --------------------------------------------------------


_COLUMN_VALUES = {
    "q": st.integers(min_value=-(2**63), max_value=2**63 - 1),
    "l": st.integers(min_value=-(2**31), max_value=2**31 - 1),
    "d": st.floats(allow_nan=False, width=64),
}


@st.composite
def _column_sets(draw):
    typecodes = draw(
        st.lists(
            st.sampled_from(sorted(_COLUMN_VALUES)), min_size=1, max_size=4
        )
    )
    columns = []
    for i, typecode in enumerate(typecodes):
        values = draw(
            st.lists(_COLUMN_VALUES[typecode], min_size=0, max_size=32)
        )
        columns.append((f"col{i}", typecode, values))
    return columns


class TestSidecarRoundTrip:
    @SETTINGS
    @given(columns=_column_sets(), blob=st.binary(max_size=64))
    def test_columns_and_blobs_survive_byte_exactly(
        self, tmp_path_factory, columns, blob
    ):
        path = tmp_path_factory.mktemp("rt") / "stage-x.bin"
        sha, size = _write_sidecar(path, columns, blobs=[("raw", blob)])
        assert path.stat().st_size == size
        view = open_sidecar(path, "test", 1, size_bytes=size)
        for name, typecode, values in columns:
            column = view.column(name)
            assert column.format == typecode
            assert column.tobytes() == array(typecode, values).tobytes()
            assert column.tolist() == array(typecode, values).tolist()
        assert bytes(view.column("raw")) == blob
        view.verify_payload()  # embedded hash matches what was written

    def test_columns_are_aligned_and_read_only(self, tmp_path):
        path = tmp_path / "stage-x.bin"
        _write_sidecar(
            path,
            [("a", "q", [1, 2, 3]), ("b", "d", [0.5])],
        )
        view = open_sidecar(path, "test", 1)
        for name in ("a", "b"):
            column = view.column(name)
            assert column.readonly
        with pytest.raises(TypeError):
            view.column("a")[0] = 99

    def test_missing_column_is_typed(self, tmp_path):
        path = tmp_path / "stage-x.bin"
        _write_sidecar(path, [("a", "q", [1])])
        view = open_sidecar(path, "test", 1)
        with pytest.raises(ArtifactCorruptError):
            view.column("ghost")

    def test_duplicate_column_is_refused_at_write(self, tmp_path):
        writer = SidecarWriter(tmp_path / "stage-x.bin", "test", 1)
        writer.add_column("a", array("q", [1]))
        with pytest.raises(ArtifactError):
            writer.add_column("a", array("q", [2]))


# -- structural corruption → typed errors ------------------------------------


class TestSidecarCorruption:
    @pytest.fixture
    def sidecar(self, tmp_path):
        path = tmp_path / "stage-x.bin"
        _write_sidecar(
            path, [("ids", "q", [1, 2, 3]), ("w", "d", [0.25, 0.5])]
        )
        return path

    def test_foreign_endianness_is_typed(self, sidecar):
        other = "big" if sys.byteorder == "little" else "little"
        _rewrite_header(sidecar, lambda h: h.update(byteorder=other))
        with pytest.raises(ArtifactError):
            open_sidecar(sidecar, "test", 1)

    def test_itemsize_mismatch_is_typed(self, sidecar):
        # a "q" column claiming 4-byte items: the cross-platform-width
        # guard must reject it before any cast happens
        def shrink(header):
            header["columns"][0][2] = 4

        _rewrite_header(sidecar, shrink)
        with pytest.raises(ArtifactCorruptError):
            open_sidecar(sidecar, "test", 1)

    def test_offset_overrun_is_typed(self, sidecar):
        def overrun(header):
            header["columns"][1][3] = header["payload_bytes"]

        _rewrite_header(sidecar, overrun)
        with pytest.raises(ArtifactCorruptError):
            open_sidecar(sidecar, "test", 1)

    def test_negative_offset_is_typed(self, sidecar):
        def negate(header):
            header["columns"][0][3] = -ALIGN

        _rewrite_header(sidecar, negate)
        with pytest.raises(ArtifactCorruptError):
            open_sidecar(sidecar, "test", 1)

    def test_duplicate_table_entry_is_typed(self, sidecar):
        def duplicate(header):
            header["columns"].append(list(header["columns"][0]))

        _rewrite_header(sidecar, duplicate)
        with pytest.raises(ArtifactCorruptError):
            open_sidecar(sidecar, "test", 1)

    def test_malformed_table_row_is_typed(self, sidecar):
        def mangle(header):
            header["columns"][0] = ["ids", "q"]

        _rewrite_header(sidecar, mangle)
        with pytest.raises(ArtifactCorruptError):
            open_sidecar(sidecar, "test", 1)

    def test_wrong_kind_is_typed(self, sidecar):
        with pytest.raises(ArtifactCorruptError):
            open_sidecar(sidecar, "other-kind", 1)

    def test_unsupported_version_is_typed(self, sidecar):
        with pytest.raises(ArtifactVersionError):
            open_sidecar(sidecar, "test", 2)

    def test_bad_magic_is_typed(self, sidecar):
        blob = sidecar.read_bytes()
        sidecar.write_bytes(b"NOTMAGIC" + blob[8:])
        with pytest.raises(ArtifactCorruptError):
            open_sidecar(sidecar, "test", 1)

    def test_payload_bit_flip_fails_on_demand_verify(self, sidecar):
        # structural open succeeds by design (no hash at open — that
        # would fault every page); verify_payload is where content
        # corruption surfaces
        blob = bytearray(sidecar.read_bytes())
        blob[-5] ^= 0x40
        sidecar.write_bytes(bytes(blob))
        view = open_sidecar(sidecar, "test", 1)
        with pytest.raises(ArtifactCorruptError):
            view.verify_payload()


# -- torn writes and generations ---------------------------------------------


class TestTornWrites:
    def test_truncation_is_typed_before_decode(self, tmp_path):
        path = tmp_path / "stage-x.bin"
        _, size = _write_sidecar(path, [("ids", "q", list(range(64)))])
        path.write_bytes(path.read_bytes()[:-16])
        with pytest.raises(ArtifactCorruptError):
            open_sidecar(path, "test", 1, size_bytes=size)

    def test_crash_leftover_scratch_never_damages_the_published_file(
        self, tmp_path
    ):
        path = tmp_path / "stage-x.bin"
        _, size = _write_sidecar(path, [("ids", "q", [7, 8, 9])])
        # a rewrite that died before os.replace leaves only the scratch
        scratch = path.with_name(path.name + ".tmp")
        scratch.write_bytes(b"half a header and then noth")
        view = open_sidecar(path, "test", 1, size_bytes=size)
        assert view.column("ids").tolist() == [7, 8, 9]

    def test_previous_generation_loads_after_a_torn_write(
        self, system, artifact_dir, tmp_path
    ):
        # generation 2 tears mid-write; it must fail typed, and
        # generation 1 — untouched on disk — must still serve
        gen2 = tmp_path / "generation-2"
        system.save_artifact(gen2)
        victim = max(gen2.glob("stage-*.bin"), key=lambda p: p.stat().st_size)
        victim.write_bytes(victim.read_bytes()[:-64])
        with pytest.raises(ArtifactError):
            load_artifact(gen2)
        previous = ESharp.from_artifact(artifact_dir)
        keyword = previous.offline.domain_store.known_keywords()[0]
        assert isinstance(previous.find_experts(keyword), list)


# -- sealing under concurrent readers ----------------------------------------


class TestSealingUnderConcurrentReaders:
    def test_readers_survive_a_concurrent_seal(self, artifact_dir):
        loaded = ESharp.from_artifact(artifact_dir)
        platform = loaded.platform
        assert platform._buffer_backed  # zero-copy load took the mmap path

        authors_view = platform._col_authors  # a view over the mapping
        baseline = bytes(authors_view)
        rows = len(platform._col_tweet_ids)
        author = next(iter(platform.users())).user_id
        next_id = max(platform._col_tweet_ids) + 1

        stop = threading.Event()
        failures: list[BaseException] = []

        def read_loop():
            try:
                while not stop.is_set():
                    # whatever container is installed right now — view or
                    # owned copy — its first `rows` entries must hold the
                    # original bytes
                    column = platform._col_authors
                    assert bytes(column)[: len(baseline)] == baseline
                    platform.totals(author)
            except BaseException as exc:  # pragma: no cover - failure path
                failures.append(exc)

        readers = [threading.Thread(target=read_loop) for _ in range(4)]
        for reader in readers:
            reader.start()
        try:
            for i in range(8):
                platform.add_tweet(
                    Tweet(
                        tweet_id=next_id + i,
                        author_id=author,
                        text=f"concurrent seal probe {i}",
                    )
                )
        finally:
            stop.set()
            for reader in readers:
                reader.join()

        assert not failures
        assert not platform._buffer_backed  # sealed into owned containers
        assert platform.tweet_count == rows + 8
        # the pre-seal view stays valid: memoryviews pin the mapping
        assert bytes(authors_view) == baseline

    def test_seal_is_idempotent_and_preserves_bytes(self, artifact_dir):
        loaded = ESharp.from_artifact(artifact_dir)
        platform = loaded.platform
        before = platform.export_state()
        platform._seal_columns()
        assert not platform._buffer_backed
        platform._seal_columns()  # second call is a no-op
        after = platform.export_state()
        assert after["tweet_ids"].tobytes() == before["tweet_ids"].tobytes()
        assert after["authors"].tobytes() == before["authors"].tobytes()


# -- delta refresh parity: mmap-backed vs owned ------------------------------


class TestDeltaRefreshParity:
    def test_mmap_and_owned_loads_refresh_identically(
        self, small_config, artifact_dir
    ):
        mapped = ESharp.from_artifact(artifact_dir)
        owned = ESharp.from_artifact(artifact_dir, prefer_sidecar=False)
        assert mapped.platform._buffer_backed
        assert not owned.platform._buffer_backed

        generator = QueryLogGenerator(
            mapped.offline.world,
            replace(
                small_config.querylog, seed=small_config.querylog.seed + 17
            ),
        )
        batch = list(generator.impressions(600))
        stats_mapped = mapped.refresh_domains_delta(list(batch))
        stats_owned = owned.refresh_domains_delta(list(batch))

        assert stats_mapped.cluster_mode == stats_owned.cluster_mode
        assert (
            mapped.offline.domain_store.domains()
            == owned.offline.domain_store.domains()
        )
        mapped_edges = dict(
            ((u, v), w) for u, v, w in mapped.offline.weighted_graph.edges()
        )
        owned_edges = dict(
            ((u, v), w) for u, v, w in owned.offline.weighted_graph.edges()
        )
        assert mapped_edges == owned_edges
        for keyword in mapped.offline.domain_store.known_keywords()[:5]:
            left = mapped.find_experts(keyword)
            right = owned.find_experts(keyword)
            assert left == right
            assert [
                struct.pack("<d", e.score) for e in left
            ] == [struct.pack("<d", e.score) for e in right]


# -- vectorized tail ≡ scalar tail -------------------------------------------


_FEATURE = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e12, max_value=1e12
)


@st.composite
def _feature_pools(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    ids = draw(
        st.lists(
            st.integers(min_value=0, max_value=10**6),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    column = st.lists(_FEATURE, min_size=n, max_size=n)
    ts, mi, ri = draw(column), draw(column), draw(column)
    return [
        FeatureVector(uid, a, b, c) for uid, a, b, c in zip(ids, ts, mi, ri)
    ]


class _StubPlatform:
    """Just enough platform for ``score_candidates``: a user lookup."""

    def __init__(self, vectors):
        self._users = {
            v.user_id: SimpleNamespace(
                user_id=v.user_id,
                screen_name=f"user{v.user_id}",
                description="",
                verified=bool(v.user_id % 2),
                followers=v.user_id % 97,
            )
            for v in vectors
        }

    def user(self, user_id):
        return self._users[user_id]


def _bits(value: float) -> bytes:
    return struct.pack("<d", value)


@pytest.mark.skipif(
    not exact_tail_available(), reason="numpy-free deployment"
)
class TestVectorizedTailByteIdentity:
    @SETTINGS
    @given(vectors=_feature_pools(), apply_log=st.booleans())
    def test_bit_identical_to_the_scalar_pipeline(self, vectors, apply_log):
        platform = _StubPlatform(vectors)
        normalization = NormalizationConfig(apply_log=apply_log)
        ranking = RankingConfig()

        normalized = normalize_features(vectors, normalization)
        scalar = score_candidates(platform, vectors, normalized, ranking)
        vector = score_vectors_exact(
            platform, vectors, normalization, ranking
        )

        assert [e.user_id for e in vector] == [e.user_id for e in scalar]
        for left, right in zip(vector, scalar):
            assert _bits(left.score) == _bits(right.score)
            assert _bits(left.zscores.z_topical_signal) == _bits(
                right.zscores.z_topical_signal
            )
            assert _bits(left.zscores.z_mention_impact) == _bits(
                right.zscores.z_mention_impact
            )
            assert _bits(left.zscores.z_retweet_impact) == _bits(
                right.zscores.z_retweet_impact
            )
            assert left.features == right.features

    def test_empty_pool(self):
        platform = _StubPlatform([])
        assert (
            score_vectors_exact(
                platform, [], NormalizationConfig(), RankingConfig()
            )
            == []
        )

    def test_constant_columns_take_the_zero_branch_together(self):
        vectors = [FeatureVector(i, 3.5, 3.5, 3.5) for i in range(5)]
        platform = _StubPlatform(vectors)
        normalization = NormalizationConfig(apply_log=False)
        ranking = RankingConfig()
        normalized = normalize_features(vectors, normalization)
        scalar = score_candidates(platform, vectors, normalized, ranking)
        vector = score_vectors_exact(
            platform, vectors, normalization, ranking
        )
        assert [e.user_id for e in vector] == [e.user_id for e in scalar]
        assert all(_bits(e.score) == _bits(0.0) for e in vector)

"""World-model data structures."""

import pytest

from repro.worldmodel.model import Keyword, Topic, WorldModel


def make_topic(topic_id=0, name="test topic", domain="sports", **kwargs):
    defaults = dict(
        keywords=[Keyword(name, topic_id, "canonical", 10.0)],
        urls=["testtopic.com"],
        hub_urls=["hub.com"],
        popularity=1.0,
    )
    defaults.update(kwargs)
    return Topic(topic_id=topic_id, name=name, domain=domain, **defaults)


class TestKeyword:
    def test_valid(self):
        kw = Keyword("dow futures", 1, "canonical", 2.0)
        assert kw.text == "dow futures"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Keyword("x y", 1, "mystery")

    def test_non_positive_weight_rejected(self):
        with pytest.raises(ValueError):
            Keyword("xyz", 1, "canonical", 0.0)

    def test_unnormalised_text_rejected(self):
        with pytest.raises(ValueError):
            Keyword("Dow Futures", 1, "canonical")


class TestTopic:
    def test_canonical_found(self):
        topic = make_topic()
        assert topic.canonical.text == "test topic"

    def test_no_keywords_rejected(self):
        with pytest.raises(ValueError):
            make_topic(keywords=[])

    def test_no_urls_rejected(self):
        with pytest.raises(ValueError):
            make_topic(urls=[])

    def test_all_urls_includes_hubs(self):
        topic = make_topic()
        assert topic.all_urls() == ["testtopic.com", "hub.com"]

    def test_bad_affinity_rejected(self):
        with pytest.raises(ValueError):
            make_topic(microblog_affinity=1.5)

    def test_missing_canonical_raises(self):
        topic = make_topic(
            keywords=[Keyword("variant only", 0, "variant", 1.0)]
        )
        with pytest.raises(LookupError):
            topic.canonical


class TestWorldModel:
    @pytest.fixture
    def tiny_world(self):
        t0 = make_topic(0, "alpha club", "sports")
        t0.keywords.append(Keyword("shared term", 0, "shared", 2.0))
        t1 = make_topic(1, "beta fund", "finance", popularity=5.0)
        t1.keywords.append(Keyword("shared term", 1, "shared", 2.0))
        return WorldModel(
            topics=[t0, t1], domains=("sports", "finance"), seed=1
        )

    def test_topic_lookup(self, tiny_world):
        assert tiny_world.topic(1).name == "beta fund"

    def test_unknown_topic(self, tiny_world):
        with pytest.raises(KeyError):
            tiny_world.topic(99)

    def test_duplicate_topic_id_rejected(self):
        with pytest.raises(ValueError):
            WorldModel(
                topics=[make_topic(0), make_topic(0, name="other topic")],
                domains=("sports",),
                seed=1,
            )

    def test_topics_in_domain(self, tiny_world):
        assert [t.name for t in tiny_world.topics_in_domain("finance")] == [
            "beta fund"
        ]

    def test_unknown_domain(self, tiny_world):
        with pytest.raises(KeyError):
            tiny_world.topics_in_domain("cooking")

    def test_ambiguity_detection(self, tiny_world):
        assert tiny_world.is_ambiguous("shared term")
        assert not tiny_world.is_ambiguous("alpha club")

    def test_primary_topic_is_most_popular(self, tiny_world):
        primary = tiny_world.primary_topic_for("shared term")
        assert primary is not None and primary.name == "beta fund"

    def test_primary_topic_unknown_term(self, tiny_world):
        assert tiny_world.primary_topic_for("nonexistent") is None

    def test_lookup_normalises(self, tiny_world):
        assert tiny_world.keywords_for("  Alpha   CLUB ")

    def test_ground_truth_assigns_ambiguous_to_primary(self, tiny_world):
        communities = tiny_world.ground_truth_communities()
        assert "shared term" in communities[1]
        assert "shared term" not in communities[0]

    def test_vocabulary_sorted_unique(self, tiny_world):
        vocab = tiny_world.vocabulary()
        assert vocab == sorted(set(vocab))

    def test_len(self, tiny_world):
        assert len(tiny_world) == 2

"""The self-healing layer: circuit breakers, deadline budgets, degraded
answers, and the replica supervisor's restart discipline.

Everything here is deterministic: breakers and the supervisor take an
injectable clock, backoff jitter is turned off where timing is asserted,
and scripted replicas fail exactly where the test says.  The subprocess
end of the same machinery (real SIGKILL, real restarts) lives in
``test_resilience.py``.
"""

from __future__ import annotations

import time

import pytest

from repro.detector.ranking import RankingConfig
from repro.expansion.domainstore import DomainStore, ExpertiseDomain
from repro.fleet import (
    BreakerConfig,
    CircuitBreaker,
    CircuitOpenError,
    FleetConfig,
    FleetError,
    FleetRouter,
    InProcessReplica,
    ReplicaSupervisor,
    ReplicaTracker,
    SupervisorConfig,
    TokenHashSharding,
)
from repro.serving.errors import DeadlineExceededError
from repro.serving.service import (
    ExpertService,
    PartialPool,
    ReplicaHealthReport,
    ServedAnswer,
)


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class ScriptedReplica:
    """A replica whose failure behaviour the test scripts exactly."""

    kind = "scripted"

    def __init__(
        self, name, *, delay=0.0, fail=False, fail_terms=(), raise_type=None
    ):
        self.name = name
        self.delay = delay
        self.fail = fail
        self.fail_terms = frozenset(fail_terms)
        self.raise_type = raise_type
        self.calls = 0

    def _maybe_fail(self):
        self.calls += 1
        if self.delay:
            time.sleep(self.delay)
        if self.raise_type is not None:
            raise self.raise_type(f"{self.name} scripted")
        if self.fail:
            raise RuntimeError(f"{self.name} scripted failure")

    def query(self, query, min_zscore=None):
        self._maybe_fail()
        return ServedAnswer(
            query=query,
            experts=(),
            terms=(query,),
            matched_domain=None,
            snapshot_version=1,
            cache_hit=False,
            coalesced=False,
            expansion_seconds=0.0,
            detection_seconds=0.0,
            total_seconds=self.delay,
        )

    def score_partial(self, query, indexed_terms):
        self._maybe_fail()
        if any(term in self.fail_terms for _, term in indexed_terms):
            raise RuntimeError(f"{self.name} fails on a scripted term")
        return PartialPool(query=query, snapshot_version=1, entries=())

    def health(self):
        return ReplicaHealthReport(
            snapshot_version=1,
            cache_hit_ratio=0.0,
            requests=self.calls,
            partial_requests=0,
            in_flight=0,
            waiting=0,
        )

    def close(self):
        pass


def scripted_router(replicas, **config_kwargs):
    return FleetRouter(
        replicas,
        domain_store=DomainStore([]),
        ranking=RankingConfig(),
        sharding=TokenHashSharding(len(replicas)),
        config=FleetConfig(**config_kwargs),
    )


def query_for_shard(router, shard):
    return next(
        q
        for q in (f"query {i}" for i in range(256))
        if router.sharding.shard_of_term(q) == shard
    )


# -- the breaker state machine -------------------------------------------------


class TestCircuitBreaker:
    def test_trip_cooldown_probe_close(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            BreakerConfig(failure_threshold=2, cooldown_seconds=10.0),
            clock,
        )
        assert breaker.state == "closed" and breaker.admit()
        breaker.on_failure()
        assert breaker.state == "closed"  # one failure is not a trip
        breaker.on_failure()
        assert breaker.state == "open"
        assert not breaker.admit() and not breaker.available()
        clock.advance(9.0)
        assert not breaker.admit()  # cooldown not yet elapsed
        clock.advance(1.0)
        assert breaker.state == "half-open"
        assert breaker.admit()  # exactly one probe
        assert not breaker.admit() and not breaker.available()
        breaker.on_success()
        assert breaker.state == "closed" and breaker.admit()

    def test_failed_probe_reopens_with_a_fresh_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            BreakerConfig(failure_threshold=1, cooldown_seconds=5.0), clock
        )
        breaker.on_failure()
        clock.advance(5.0)
        assert breaker.admit()
        breaker.on_failure()  # the probe failed
        assert breaker.state == "open"
        clock.advance(4.0)
        assert not breaker.admit()  # the cooldown restarted at the probe
        clock.advance(1.0)
        assert breaker.admit()

    def test_disabled_breaker_always_admits(self):
        breaker = CircuitBreaker(BreakerConfig(enabled=False), FakeClock())
        for _ in range(10):
            breaker.on_failure()
        assert breaker.admit() and breaker.available()

    def test_config_is_validated(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ValueError, match="cooldown_seconds"):
            BreakerConfig(cooldown_seconds=-1.0)


class TestTrackerBreakerGates:
    def test_failures_trip_and_select_skips(self):
        clock = FakeClock()
        tracker = ReplicaTracker(
            ["a", "b"],
            breaker=BreakerConfig(failure_threshold=2, cooldown_seconds=60),
            clock=clock,
        )
        assert tracker.admit("a") and tracker.breaker_state("a") == "closed"
        tracker.record_failure("a")
        tracker.record_failure("a")
        assert tracker.breaker_state("a") == "open"
        assert not tracker.admit("a") and not tracker.available("a")
        assert tracker.select() == "b"  # the tripped replica is skipped
        tracker.record_failure("b")
        tracker.record_failure("b")
        assert tracker.select() is None  # everyone is open
        tracker.reset("a")  # a supervisor restarted it
        assert tracker.breaker_state("a") == "closed"
        assert tracker.select() == "a"

    def test_success_closes_the_breaker(self):
        tracker = ReplicaTracker(
            ["a"],
            breaker=BreakerConfig(failure_threshold=1, cooldown_seconds=0),
            clock=FakeClock(),
        )
        tracker.record_failure("a")
        assert tracker.admit("a")  # cooldown 0: immediately half-open
        tracker.record_success("a", 0.01)
        assert tracker.breaker_state("a") == "closed"
        assert tracker.vitals()[0].breaker_state == "closed"


# -- breaker + router integration ----------------------------------------------


class TestRouterBreaker:
    def test_tripped_primary_is_skipped_without_being_called(self):
        broken = ScriptedReplica("broken", fail=True)
        healthy = ScriptedReplica("healthy")
        router = scripted_router(
            [broken, healthy],
            hedging=False,
            breaker=BreakerConfig(failure_threshold=1, cooldown_seconds=60),
        )
        with router:
            query = query_for_shard(router, 0)
            assert router.query(query).snapshot_version == 1  # failover
            calls_after_trip = broken.calls
            assert router.tracker.breaker_state("broken") == "open"
            assert router.query(query).snapshot_version == 1
            stats = router.stats()
        # the second query never touched the tripped replica
        assert broken.calls == calls_after_trip
        assert stats.breaker_rejections == 1
        assert stats.failovers == 1  # only the first query failed over

    def test_every_breaker_open_is_typed(self):
        router = scripted_router(
            [ScriptedReplica("only", fail=True)],
            hedging=False,
            leg_retries=0,
            breaker=BreakerConfig(failure_threshold=1, cooldown_seconds=60),
        )
        with router:
            with pytest.raises(RuntimeError, match="scripted failure"):
                router.query("anything")
            with pytest.raises(CircuitOpenError, match="circuit breaker"):
                router.query("anything")
            assert router.stats().breaker_rejections == 1


# -- deadline budgets ----------------------------------------------------------


class TestDeadlineBudgets:
    def test_slow_replica_misses_the_budget_typed(self):
        slow = ScriptedReplica("slow", delay=0.5)
        router = scripted_router([slow], hedging=False)
        with router:
            started = time.perf_counter()
            with pytest.raises(DeadlineExceededError, match="budget"):
                router.query("anything", deadline_seconds=0.05)
            elapsed = time.perf_counter() - started
            stats = router.stats()
        assert elapsed < 0.4  # did not wait out the slow replica
        assert stats.deadline_exceeded == 1

    def test_config_deadline_applies_fleet_wide(self):
        slow = ScriptedReplica("slow", delay=0.5)
        router = scripted_router(
            [slow], hedging=False, deadline_seconds=0.05
        )
        with router:
            with pytest.raises(DeadlineExceededError):
                router.query("anything")

    def test_deadline_miss_is_terminal_no_failover(self):
        # a replica that *reports* a spent budget must not be retried
        # elsewhere: the budget is end-to-end, not per-replica
        miss = ScriptedReplica("miss", raise_type=DeadlineExceededError)
        backup = ScriptedReplica("backup")
        router = scripted_router([miss, backup], hedging=False)
        with router:
            query = query_for_shard(router, 0)
            with pytest.raises(DeadlineExceededError):
                router.query(query)
            stats = router.stats()
        assert backup.calls == 0
        assert stats.deadline_exceeded == 1
        assert stats.failovers == 0

    def test_service_rejects_spent_budget_before_computing(self, system):
        with ExpertService(system) as service:
            with pytest.raises(DeadlineExceededError, match="budget"):
                service.query("anything", budget_seconds=0.0)
            with pytest.raises(DeadlineExceededError):
                service.score_partial(
                    "anything", [(0, "anything")], budget_seconds=0.0
                )

    def test_inprocess_replica_propagates_budget(self, system):
        replica = InProcessReplica("r0", system)
        router = scripted_router([replica], hedging=False)
        with router:
            with pytest.raises(DeadlineExceededError):
                router.query("anything", deadline_seconds=1e-9)
            assert router.stats().deadline_exceeded == 1

    def test_deadline_config_is_validated(self):
        with pytest.raises(ValueError, match="deadline_seconds"):
            FleetConfig(deadline_seconds=0.0)
        with pytest.raises(ValueError, match="leg_retries"):
            FleetConfig(leg_retries=-1)


# -- degraded answers ----------------------------------------------------------


def scatter_fixture():
    """A domain whose expansion genuinely scatters over 2 shards."""
    policy = TokenHashSharding(2)
    terms = [f"keyword number {i}" for i in range(64)]
    shard0 = [t for t in terms if policy.shard_of_term(t) == 0][:2]
    shard1 = [t for t in terms if policy.shard_of_term(t) == 1][:2]
    keywords = tuple(shard0 + shard1)
    store = DomainStore([ExpertiseDomain("d-scatter", keywords)])
    return store, policy, shard0, shard1


def scatter_router(replicas, store, policy, **config_kwargs):
    return FleetRouter(
        replicas,
        domain_store=store,
        ranking=RankingConfig(),
        sharding=policy,
        config=FleetConfig(**config_kwargs),
    )


class TestDegradedAnswers:
    def test_lost_leg_degrades_when_allowed(self):
        store, policy, shard0, shard1 = scatter_fixture()
        # the shard-1 terms fail on EVERY replica, so that leg exhausts
        # its failovers; the shard-0 leg survives
        replicas = [
            ScriptedReplica(f"r{i}", fail_terms=shard1) for i in range(2)
        ]
        router = scatter_router(
            replicas, store, policy, hedging=False, allow_degraded=True
        )
        with router:
            answer = router.query(shard0[0])
            stats = router.stats()
        assert answer.mode == "scatter-gather"
        assert answer.coverage == pytest.approx(
            len(shard0) / (len(shard0) + len(shard1))
        )
        assert answer.shards == (0,)
        assert stats.degraded_answers == 1

    def test_default_remains_fail_loud(self):
        store, policy, shard0, shard1 = scatter_fixture()
        replicas = [
            ScriptedReplica(f"r{i}", fail_terms=shard1) for i in range(2)
        ]
        router = scatter_router(replicas, store, policy, hedging=False)
        with router:
            with pytest.raises(RuntimeError, match="scripted term"):
                router.query(shard0[0])
            assert router.stats().degraded_answers == 0

    def test_full_coverage_answers_are_not_marked(self):
        store, policy, shard0, shard1 = scatter_fixture()
        replicas = [ScriptedReplica(f"r{i}") for i in range(2)]
        router = scatter_router(
            replicas, store, policy, hedging=False, allow_degraded=True
        )
        with router:
            answer = router.query(shard0[0])
        assert answer.coverage == 1.0
        assert answer.shards == (0, 1)


# -- replica replacement (the supervisor's router hook) ------------------------


class TestReplaceReplica:
    def test_replacement_resets_history_and_breaker(self):
        router = scripted_router(
            [ScriptedReplica("r0"), ScriptedReplica("r1")],
            breaker=BreakerConfig(failure_threshold=1, cooldown_seconds=60),
        )
        with router:
            router.tracker.record_failure("r0")
            assert router.tracker.breaker_state("r0") == "open"
            fresh = ScriptedReplica("r0")
            router.replace_replica("r0", fresh)
            assert router.replica("r0") is fresh
            assert router.tracker.breaker_state("r0") == "closed"
            assert router.query(query_for_shard(router, 0)).snapshot_version == 1

    def test_name_mismatch_and_unknown_slot_are_typed(self):
        router = scripted_router([ScriptedReplica("r0")])
        with router:
            with pytest.raises(FleetError, match="slot"):
                router.replace_replica("r0", ScriptedReplica("other"))
            with pytest.raises(FleetError, match="unknown replica"):
                router.replace_replica("ghost", ScriptedReplica("ghost"))
            with pytest.raises(FleetError, match="unknown replica"):
                router.replica("ghost")


# -- the supervisor ------------------------------------------------------------


class FakeReplica:
    def __init__(self, name, alive=True):
        self.name = name
        self.alive = alive
        self.closed = False

    def is_alive(self):
        return self.alive

    def ping(self, timeout=None):
        return self.alive

    def close(self):
        self.closed = True
        self.alive = False


class FakeRouter:
    """Just the two hooks the supervisor uses."""

    def __init__(self, replicas):
        self._by_name = {r.name: r for r in replicas}
        self.replaced = []

    def replica(self, name):
        if name not in self._by_name:
            raise FleetError(f"unknown replica {name!r}")
        return self._by_name[name]

    def replace_replica(self, name, replica):
        self._by_name[name] = replica
        self.replaced.append(name)


def supervisor_config(**kwargs):
    defaults = dict(
        probe_timeout_seconds=0.1,
        backoff_initial_seconds=0.0,
        jitter_fraction=0.0,
    )
    defaults.update(kwargs)
    return SupervisorConfig(**defaults)


class TestReplicaSupervisor:
    def test_unknown_factory_name_fails_fast(self):
        router = FakeRouter([FakeReplica("r0")])
        with pytest.raises(FleetError, match="unknown replica"):
            ReplicaSupervisor(router, {"ghost": lambda: FakeReplica("ghost")})
        with pytest.raises(ValueError, match="at least one"):
            ReplicaSupervisor(router, {})

    def test_healthy_fleet_needs_no_restarts(self):
        router = FakeRouter([FakeReplica("r0"), FakeReplica("r1")])
        supervisor = ReplicaSupervisor(
            router,
            {name: (lambda n=name: FakeReplica(n)) for name in ("r0", "r1")},
            supervisor_config(),
            clock=FakeClock(),
        )
        assert supervisor.check_now() == []
        stats = supervisor.stats()
        assert stats.checks == 1 and stats.restarts == 0
        assert all(slot.state == "healthy" for slot in stats.slots)

    def test_dead_replica_is_restarted_and_swapped_in(self):
        dead = FakeReplica("r0", alive=False)
        router = FakeRouter([dead])
        supervisor = ReplicaSupervisor(
            router,
            {"r0": lambda: FakeReplica("r0")},
            supervisor_config(),
            clock=FakeClock(),
        )
        outcomes = supervisor.check_now()
        assert len(outcomes) == 1 and outcomes[0].ok
        assert router.replaced == ["r0"]
        assert router.replica("r0").is_alive()
        assert dead.closed  # the corpse was closed before the swap
        stats = supervisor.stats()
        assert stats.restarts == 1 and stats.failed_restarts == 0
        assert stats.slots[0].state == "healthy"
        assert stats.slots[0].last_recovery_seconds is not None
        assert supervisor.check_now() == []  # stable afterwards

    def test_failed_restarts_back_off_exponentially(self):
        clock = FakeClock()
        router = FakeRouter([FakeReplica("r0", alive=False)])

        def broken_factory():
            raise RuntimeError("artifact is gone")

        supervisor = ReplicaSupervisor(
            router,
            {"r0": broken_factory},
            supervisor_config(
                backoff_initial_seconds=1.0,
                backoff_multiplier=2.0,
                restart_budget=10,
            ),
            clock=clock,
        )
        assert len(supervisor.check_now()) == 1  # attempt 1 fails
        assert supervisor.check_now() == []  # inside backoff: no attempt
        clock.advance(1.01)
        assert len(supervisor.check_now()) == 1  # attempt 2 fails
        clock.advance(1.01)
        assert supervisor.check_now() == []  # backoff doubled to 2s
        clock.advance(1.01)
        assert len(supervisor.check_now()) == 1  # attempt 3
        stats = supervisor.stats()
        assert stats.failed_restarts == 3 and stats.restarts == 0
        assert stats.slots[0].state == "down"
        assert "artifact is gone" in stats.slots[0].last_error

    def test_restart_budget_gives_up_then_recovery_clears_it(self):
        clock = FakeClock()
        replica = FakeReplica("r0", alive=False)
        router = FakeRouter([replica])

        def broken_factory():
            raise RuntimeError("still broken")

        supervisor = ReplicaSupervisor(
            router,
            {"r0": broken_factory},
            supervisor_config(restart_budget=2),
            clock=clock,
        )
        assert len(supervisor.check_now()) == 1
        assert len(supervisor.check_now()) == 1  # budget spent
        assert supervisor.check_now() == []  # over budget: gave up
        stats = supervisor.stats()
        assert stats.gave_up == 1
        assert stats.slots[0].state == "gave-up"
        assert supervisor.check_now() == []  # stays given-up, no churn
        replica.alive = True  # an operator fixed it out of band
        supervisor.check_now()
        assert supervisor.stats().slots[0].state == "healthy"

    def test_poll_loop_runs_and_stops(self):
        router = FakeRouter([FakeReplica("r0")])
        supervisor = ReplicaSupervisor(
            router,
            {"r0": lambda: FakeReplica("r0")},
            SupervisorConfig(
                poll_interval_seconds=0.01, probe_timeout_seconds=0.1
            ),
        )
        with supervisor:
            deadline = time.monotonic() + 5.0
            while (
                supervisor.stats().checks == 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
        assert supervisor.stats().checks >= 1
        supervisor.close()  # idempotent

    def test_config_is_validated(self):
        with pytest.raises(ValueError, match="poll_interval"):
            SupervisorConfig(poll_interval_seconds=0.0)
        with pytest.raises(ValueError, match="jitter_fraction"):
            SupervisorConfig(jitter_fraction=1.0)
        with pytest.raises(ValueError, match="restart_budget"):
            SupervisorConfig(restart_budget=0)
        with pytest.raises(ValueError, match="backoff_multiplier"):
            SupervisorConfig(backoff_multiplier=0.5)

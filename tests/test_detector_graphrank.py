"""The TwitterRank-style graph detector and its e# composition."""

import math

import pytest

from repro.detector.graphrank import GraphRankConfig, GraphRankDetector
from repro.detector.palcounts import PalCountsDetector
from repro.detector.ranking import RankingConfig
from repro.expansion.domainstore import DomainStore
from repro.expansion.expander import QueryExpander
from repro.microblog.platform import MicroblogPlatform
from repro.microblog.tweets import Tweet
from repro.microblog.users import UserProfile


@pytest.fixture
def influence_platform():
    """An authority (retweeted/mentioned), a firehose, a crowd."""
    platform = MicroblogPlatform()
    platform.add_user(UserProfile(1, "authority", "d", "focused_expert", (1,)))
    platform.add_user(UserProfile(2, "firehose", "d", "news_bot", (1,)))
    for uid in range(3, 9):
        platform.add_user(UserProfile(uid, f"fan{uid}", "d", "casual", ()))
    tid = 0

    def post(author, text, mentions=(), retweet_of=None):
        nonlocal tid
        tid += 1
        platform.add_tweet(
            Tweet(tweet_id=tid, author_id=author, text=text,
                  mentions=mentions, retweet_of=retweet_of)
        )
        return tid

    origin = post(1, "quantum analysis from the authority")
    for _ in range(8):
        post(2, "quantum headline spam quantum")
    for uid in range(3, 9):
        post(uid, "rt @authority: quantum analysis from the authority",
             mentions=(1,), retweet_of=origin)
        post(uid, "@authority what do you think about quantum", mentions=(1,))
    return platform


class TestGraphRankConfig:
    def test_damping_bounds(self):
        with pytest.raises(ValueError):
            GraphRankConfig(damping=1.0)
        with pytest.raises(ValueError):
            GraphRankConfig(damping=0.0)

    def test_iterations_floor(self):
        with pytest.raises(ValueError):
            GraphRankConfig(max_iterations=0)


class TestGraphRank:
    def test_authority_outranks_firehose(self, influence_platform):
        detector = GraphRankDetector(
            influence_platform, RankingConfig(min_zscore=-10.0)
        )
        ranked = detector.detect("quantum")
        assert ranked[0].screen_name == "authority"
        names = [e.screen_name for e in ranked]
        assert names.index("authority") < names.index("firehose")

    def test_pagerank_mass_conserved(self, influence_platform):
        detector = GraphRankDetector(influence_platform)
        stats_pool = detector.score("quantum")
        assert stats_pool  # sanity
        # reconstruct raw ranks: teleport+damping conserve total mass of 1
        from repro.detector.candidates import collect_candidates

        stats = collect_candidates(influence_platform, "quantum")
        candidates = sorted(stats)
        index = {u: i for i, u in enumerate(candidates)}
        edges = detector._influence_edges("quantum", index)
        teleport = detector._teleport_vector(stats, candidates)
        rank = detector._pagerank(len(candidates), edges, teleport)
        assert math.isclose(sum(rank), 1.0, rel_tol=1e-6)

    def test_no_candidates(self, influence_platform):
        assert GraphRankDetector(influence_platform).detect("blockchain") == []

    def test_cap_and_threshold(self, influence_platform):
        detector = GraphRankDetector(
            influence_platform,
            RankingConfig(min_zscore=-10.0, max_results=3),
        )
        assert len(detector.detect("quantum")) == 3
        assert detector.detect("quantum", min_zscore=1e9) == []

    def test_deterministic(self, influence_platform):
        a = GraphRankDetector(influence_platform).score("quantum")
        b = GraphRankDetector(influence_platform).score("quantum")
        assert [(e.user_id, e.score) for e in a] == [
            (e.user_id, e.score) for e in b
        ]

    def test_composes_with_expander(self, influence_platform):
        from repro.community.partition import Partition

        store = DomainStore.from_partition(
            Partition({"quantum": "c1", "qubits": "c1"})
        )
        detector = GraphRankDetector(
            influence_platform, RankingConfig(min_zscore=-10.0)
        )
        expander = QueryExpander(store, detector)
        result = expander.detect("quantum")
        assert "qubits" in result.terms
        assert result.experts

    def test_agrees_with_palcounts_on_the_winner(self, system):
        """Both detectors should usually crown a genuine expert for head
        queries — the §7 claim that e# is detector-agnostic presumes the
        detectors are individually sane."""
        world = system.offline.world
        graph_detector = GraphRankDetector(
            system.platform, RankingConfig(min_zscore=-10.0)
        )
        pal = PalCountsDetector(
            system.platform, RankingConfig(min_zscore=-10.0),
            cache_scores=False,
        )
        agreements = checked = 0
        for topic in sorted(
            (t for t in world.topics if t.microblog_affinity > 0.5),
            key=lambda t: t.popularity, reverse=True,
        )[:10]:
            query = topic.canonical.text
            top_graph = graph_detector.detect(query)[:3]
            top_pal = pal.detect(query)[:3]
            if not top_graph or not top_pal:
                continue
            checked += 1
            genuine_graph = any(
                system.platform.user(e.user_id).is_expert_on(topic.topic_id)
                for e in top_graph
            )
            if genuine_graph:
                agreements += 1
        assert checked > 0
        assert agreements / checked >= 0.6

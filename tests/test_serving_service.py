"""The concurrent serving engine end to end.

Uses a module-private built system (not the shared session fixture)
because the rolling-refresh tests publish new snapshots — semantically
identical, but better isolated from tests that pin artifact identity.
"""

import threading
import time

import pytest

from repro.core.esharp import ESharp
from repro.serving.errors import ServiceClosedError, ServiceOverloadedError
from repro.serving.loadgen import (
    LoadGenerator,
    WorkloadConfig,
    build_workload,
    candidate_queries,
    run_serve,
)
from repro.serving.service import ExpertService, ServiceConfig


@pytest.fixture(scope="module")
def served_system(small_config) -> ESharp:
    return ESharp(small_config).build()


@pytest.fixture()
def service(served_system):
    svc = served_system.serve()
    yield svc
    svc.close()


def _expert_ids(answer):
    return [expert.user_id for expert in answer.experts]


class TestExpertServiceBasics:
    def test_requires_built_system(self, small_config):
        with pytest.raises(ValueError):
            ExpertService(ESharp(small_config))

    def test_parity_with_the_facade(self, served_system, service):
        query = candidate_queries(served_system, 1)[0]
        expected = [e.user_id for e in served_system.find_experts(query)]
        answer = service.query(query)
        assert _expert_ids(answer) == expected
        assert answer.snapshot_version == served_system.snapshots.version
        assert answer.terms and answer.terms[0]

    def test_repeat_query_hits_the_cache(self, service):
        query = candidate_queries(service.system, 1)[0]
        first = service.query(query)
        second = service.query(query)
        assert not first.cache_hit
        assert second.cache_hit
        assert _expert_ids(first) == _expert_ids(second)
        info = service.cache_info()
        assert info.hits >= 1
        stats = service.stats()
        assert stats.cache.hits + stats.cache.misses == stats.requests

    def test_threshold_is_part_of_the_cache_key(self, service):
        query = candidate_queries(service.system, 1)[0]
        strict = service.query(query)
        lenient = service.query(query, min_zscore=-100.0)
        assert not lenient.cache_hit            # different key, not a stale hit
        assert len(lenient.experts) >= len(strict.experts)

    def test_unmatched_query_degrades_gracefully(self, service):
        answer = service.query("zz unmatchable phrase zz")
        assert answer.experts == ()
        assert answer.matched_domain is None

    def test_submit_and_query_many(self, service):
        queries = candidate_queries(service.system, 3)
        future = service.submit(queries[0])
        assert future.result(timeout=30).query == queries[0]
        answers = service.query_many(queries * 2)
        assert [a.query for a in answers] == queries * 2

    def test_overload_rejection_is_typed(self, served_system):
        config = ServiceConfig(
            max_in_flight=1, max_queue_depth=0, admission_timeout_seconds=0.2
        )
        with served_system.serve(config) as svc:
            query = candidate_queries(served_system, 1)[0]
            svc._admission.acquire()            # occupy the only slot
            try:
                with pytest.raises(ServiceOverloadedError):
                    svc.query(query)
            finally:
                svc._admission.release()
            assert svc.query(query).query == query
            assert svc.stats().admission.rejected == 1

    def test_closed_service_refuses_work(self, served_system):
        svc = served_system.serve()
        svc.close()
        with pytest.raises(ServiceClosedError):
            svc.query("anything")
        with pytest.raises(ServiceClosedError):
            svc.submit("anything")
        with pytest.raises(ServiceClosedError):
            svc.refresh_domains()
        with pytest.raises(ServiceClosedError):
            svc.refresh_delta([])


class TestRollingRefresh:
    CLIENTS = 8
    REFRESHES = 2

    def test_hammer_during_rolling_refresh(self, served_system):
        """≥8 threads query while a background thread swaps snapshots.

        Asserts: no exceptions, snapshot versions only move forward
        within each thread, every probe keeps its (identical) non-empty
        answer across generations, and the cache counters close.
        """
        probes = [
            q
            for q in candidate_queries(served_system, 32)
            if served_system.find_experts(q)
        ][:6]
        assert len(probes) >= 3, "world too small to pick serving probes"

        config = ServiceConfig(max_in_flight=32, max_queue_depth=256)
        errors: list = []
        observations: dict[int, list] = {i: [] for i in range(self.CLIENTS)}
        stop = threading.Event()
        version_start = served_system.snapshots.version

        with served_system.serve(config) as svc:
            def client(slot: int) -> None:
                i = 0
                while not stop.is_set():
                    query = probes[(slot + i) % len(probes)]
                    i += 1
                    try:
                        answer = svc.query(query)
                    except Exception as exc:  # noqa: BLE001 - the assertion
                        errors.append(exc)
                        return
                    observations[slot].append(
                        (answer.snapshot_version, query, _expert_ids(answer))
                    )
                    # pace the loop: cache hits are so fast that 8 spinning
                    # clients would GIL-starve the refresher for minutes
                    time.sleep(0.001)

            def refresher() -> None:
                try:
                    for _ in range(self.REFRESHES):
                        svc.refresh_domains()   # same config → same domains
                except Exception as exc:  # noqa: BLE001 - the assertion
                    errors.append(exc)
                finally:
                    stop.set()

            threads = [
                threading.Thread(target=client, args=(i,), daemon=True)
                for i in range(self.CLIENTS)
            ]
            threads.append(threading.Thread(target=refresher, daemon=True))
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not any(t.is_alive() for t in threads)

            assert errors == []

            seen = [obs for slot in observations.values() for obs in slot]
            assert seen, "clients never got a request through"
            # deterministic tail reads: the final generation must serve too
            for query in probes:
                answer = svc.query(query)
                seen.append(
                    (answer.snapshot_version, query, _expert_ids(answer))
                )
            versions = {version for version, _, _ in seen}
            # the swap really happened, and the service kept answering
            assert max(versions) == version_start + self.REFRESHES
            # versions never go backwards within one thread (no stale mix)
            for slot_obs in observations.values():
                slot_versions = [version for version, _, _ in slot_obs]
                assert slot_versions == sorted(slot_versions)
            # a query that succeeded before the swap never turns empty,
            # and identical configs reproduce identical answers
            per_probe: dict[str, set] = {}
            for _, query, ids in seen:
                per_probe.setdefault(query, set()).add(tuple(ids))
            for query, answers in per_probe.items():
                assert len(answers) == 1, f"{query!r} changed across snapshots"
                assert next(iter(answers)), f"{query!r} went empty"

            stats = svc.stats()
            assert stats.cache.hits + stats.cache.misses == stats.requests
            assert stats.admission.rejected == 0

    def test_refresh_returns_new_snapshot_and_invalidates_keys(
        self, served_system
    ):
        with served_system.serve() as svc:
            query = candidate_queries(served_system, 1)[0]
            before = svc.query(query)
            snapshot = svc.refresh_domains()
            assert snapshot.version == before.snapshot_version + 1
            after = svc.query(query)
            assert not after.cache_hit          # version is part of the key
            assert after.snapshot_version == snapshot.version
            assert _expert_ids(after) == _expert_ids(before)

    def test_refresh_latency_is_accounted(self, served_system):
        with served_system.serve() as svc:
            stats = svc.stats()
            assert stats.refreshes == 0
            assert stats.last_refresh_seconds is None
            svc.refresh_domains()
            stats = svc.stats()
            assert stats.refreshes == 1
            assert stats.last_refresh_seconds is not None
            assert stats.last_refresh_seconds > 0.0

    def test_submit_duplicates_straddling_a_swap_do_not_coalesce(
        self, served_system
    ):
        """Seed bug: the batch key omitted the snapshot version.

        Duplicates of one query submitted before and after a
        ``refresh_domains`` swap landed on one pending entry, so the later
        submitter shared the earlier generation's execution.  The key now
        folds in the version (like the sync-path cache key), so the two
        submissions must dispatch as distinct executions.
        """
        config = ServiceConfig(batch_window_seconds=30.0, max_batch=64)
        with served_system.serve(config) as svc:
            query = candidate_queries(served_system, 1)[0]
            version_before = svc.snapshot_version
            first = svc.submit(query)
            svc.refresh_domains()
            second = svc.submit(query)
            svc._batcher.flush()
            answers = [first.result(timeout=30), second.result(timeout=30)]
            stats = svc.stats()
            assert stats.batch_coalesced == 0
            assert stats.requests == 2
            # the post-swap submitter pinned the new generation
            assert answers[1].snapshot_version == version_before + 1


class TestRefreshSerialisation:
    def test_concurrent_refreshes_serialise_and_return_their_own_snapshot(
        self, served_system, monkeypatch
    ):
        """Regression: ``refresh_domains`` was unsynchronised at the
        service level — two concurrent refreshes could interleave the
        rebuild and the snapshot read, so both callers observed only
        the *final* generation (one refresh's snapshot was never
        returned to anyone, and the slower build could be reported as
        the newer one).  The wrapper below forces the interleaving: each
        rebuild, once finished, waits for the other before returning.
        With the service-level refresh lock the second refresh cannot
        even start until the first has returned its own snapshot.
        """
        real = served_system.refresh_domains
        tags: dict = {}
        done = {"a": threading.Event(), "b": threading.Event()}

        def wrapped(querylog_config=None):
            tag = tags[threading.get_ident()]
            result = real(querylog_config)
            done[tag].set()
            other = "b" if tag == "a" else "a"
            # on an unserialised service both rebuilds finish here
            # before either caller reads "its" snapshot
            done[other].wait(timeout=0.8)
            return result

        monkeypatch.setattr(served_system, "refresh_domains", wrapped)
        version_start = served_system.snapshots.version
        results: dict = {}
        errors: list = []

        with served_system.serve() as svc:
            def client(tag: str) -> None:
                tags[threading.get_ident()] = tag
                try:
                    results[tag] = svc.refresh_domains().version
                except Exception as exc:  # noqa: BLE001 - the assertion
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(tag,), daemon=True)
                for tag in ("a", "b")
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not any(t.is_alive() for t in threads)
            assert errors == []
            # each refresh returned the snapshot its own rebuild published
            assert sorted(results.values()) == [
                version_start + 1,
                version_start + 2,
            ]
            assert svc.snapshot_version == version_start + 2
            assert svc.stats().refreshes == 2


class TestCloseDrainsInFlight:
    def test_close_drains_an_admitted_request(self, served_system):
        """Regression: ``close()`` shut the pools under admitted
        requests, so an in-flight query crashed with a (possibly raw)
        ``RuntimeError`` mid-detection instead of completing.  Close now
        rejects new work, drains the admitted population, and only then
        tears the pools down.
        """
        queries = [
            q
            for q in candidate_queries(served_system, 16)
            if len(served_system.expansion_terms(q)) > 1
        ]
        assert queries, "need a multi-term query so detection uses the pool"
        query = queries[0]

        svc = served_system.serve()
        expander = served_system.snapshot.pipeline.expander
        real = expander.expand_terms
        entered, release = threading.Event(), threading.Event()

        def blocking(q):
            entered.set()
            release.wait(timeout=10)
            return real(q)

        expander.expand_terms = blocking
        result: dict = {}
        try:
            def client() -> None:
                try:
                    result["answer"] = svc.query(query)
                except Exception as exc:  # noqa: BLE001 - the assertion
                    result["error"] = exc

            client_thread = threading.Thread(target=client, daemon=True)
            client_thread.start()
            assert entered.wait(timeout=10)
            closer = threading.Thread(target=svc.close, daemon=True)
            closer.start()
            time.sleep(0.2)  # let close() reach the drain
            # new work is already refused while the drain is pending
            with pytest.raises(ServiceClosedError):
                svc.query(query)
            release.set()
            client_thread.join(timeout=10)
            closer.join(timeout=10)
            assert not client_thread.is_alive() and not closer.is_alive()
        finally:
            expander.expand_terms = real
            svc.close()

        assert "error" not in result, f"in-flight query died: {result.get('error')!r}"
        assert result["answer"].query == query


class TestSubmitThresholdKeying:
    def test_default_and_explicit_threshold_coalesce(self, served_system):
        """Regression: ``submit()`` keyed batches on the *raw*
        ``min_zscore`` while the sync path keys on the resolved
        threshold, so ``submit(q)`` and ``submit(q, default)`` never
        coalesced and double-computed.  The batch key now resolves the
        threshold first.
        """
        config = ServiceConfig(batch_window_seconds=30.0, max_batch=64)
        with served_system.serve(config) as svc:
            query = candidate_queries(served_system, 1)[0]
            default = served_system.snapshot.detector.ranking.min_zscore
            first = svc.submit(query)
            second = svc.submit(query, default)
            svc._batcher.flush()
            answers = [first.result(timeout=30), second.result(timeout=30)]
            stats = svc.stats()
            assert stats.batch_coalesced == 1
            assert stats.requests == 1          # one execution, shared
            assert _expert_ids(answers[0]) == _expert_ids(answers[1])


class TestDeltaRefresh:
    def test_refresh_delta_swaps_and_stamps_stats(self, served_system):
        from repro.querylog.generator import QueryLogGenerator
        from dataclasses import replace as dc_replace

        with served_system.serve() as svc:
            query = candidate_queries(served_system, 1)[0]
            before = svc.query(query)
            stats = svc.stats()
            assert stats.delta_refreshes == 0
            assert stats.last_delta_refresh is None

            log_config = served_system.config.querylog
            generator = QueryLogGenerator(
                served_system.offline.world,
                dc_replace(log_config, seed=log_config.seed + 17),
            )
            delta = list(generator.impressions(500))
            snapshot = svc.refresh_delta(delta)

            assert snapshot.version == before.snapshot_version + 1
            after = svc.query(query)
            assert after.snapshot_version == snapshot.version
            assert not after.cache_hit      # version rotated the key space
            stats = svc.stats()
            assert stats.delta_refreshes == 1
            assert stats.last_delta_refresh_seconds is not None
            assert stats.last_delta_refresh is not None
            assert stats.last_delta_refresh.impressions == 500
            assert stats.last_delta_refresh.cluster_mode in (
                "unchanged",
                "local",
                "full",
            )

    def test_refresh_delta_under_concurrent_queries(self, served_system):
        from repro.querylog.generator import QueryLogGenerator
        from dataclasses import replace as dc_replace

        probes = [
            q
            for q in candidate_queries(served_system, 16)
            if served_system.find_experts(q)
        ][:4]
        assert len(probes) >= 2
        errors: list = []
        stop = threading.Event()

        with served_system.serve(
            ServiceConfig(max_in_flight=32, max_queue_depth=256)
        ) as svc:
            def client(slot: int) -> None:
                i = 0
                while not stop.is_set():
                    try:
                        svc.query(probes[(slot + i) % len(probes)])
                    except Exception as exc:  # noqa: BLE001
                        errors.append(exc)
                        return
                    i += 1
                    time.sleep(0.001)

            threads = [
                threading.Thread(target=client, args=(i,), daemon=True)
                for i in range(4)
            ]
            for thread in threads:
                thread.start()
            log_config = served_system.config.querylog
            try:
                for round_ in range(2):
                    generator = QueryLogGenerator(
                        served_system.offline.world,
                        dc_replace(
                            log_config, seed=log_config.seed + 31 + round_
                        ),
                    )
                    svc.refresh_delta(list(generator.impressions(400)))
            finally:
                stop.set()
            for thread in threads:
                thread.join(timeout=60)
            assert not any(t.is_alive() for t in threads)
            assert errors == []
            assert svc.stats().delta_refreshes == 2


class TestLoadGeneration:
    def test_workload_is_duplicate_heavy(self, served_system):
        config = WorkloadConfig(requests=120, max_unique=8, seed=7)
        workload = build_workload(served_system, config)
        assert len(workload) == 120
        assert 1 <= len(set(workload)) <= 8
        # Zipf head skew: the most popular query dominates
        top = max(set(workload), key=workload.count)
        assert workload.count(top) > 120 / 8

    def test_load_generator_reports(self, served_system):
        workload = build_workload(
            served_system, WorkloadConfig(requests=40, max_unique=6, seed=3)
        )
        with served_system.serve() as svc:
            report = LoadGenerator(svc, workload, concurrency=4).run()
        assert report.requests == 40
        assert report.errors == 0
        assert report.qps > 0
        assert report.p50_ms <= report.p95_ms <= report.p99_ms
        assert 0.0 <= report.cache_hit_rate <= 1.0
        payload = report.to_dict()
        assert payload["requests"] == 40

    def test_run_serve_outcome(self, served_system):
        outcome = run_serve(
            served_system,
            requests=40,
            concurrency=4,
            max_unique=6,
            baseline=True,
        )
        assert outcome.report.errors == 0
        assert outcome.baseline is not None and outcome.baseline.errors == 0
        assert outcome.speedup is not None and outcome.speedup > 0
        stats = outcome.stats
        assert stats.cache.hits + stats.cache.misses == stats.requests
        payload = outcome.to_dict()
        assert payload["speedup_vs_serial"] == outcome.speedup
        assert "p99_ms" in payload and "cache_hit_rate" in payload
        assert "qps" in outcome.render() or "throughput" in outcome.render()


class TestServeCommandGlue:
    def test_run_serve_command(self, served_system, capsys, tmp_path):
        from repro.cli import build_parser, run_serve_command

        json_path = tmp_path / "serve.json"
        args = build_parser().parse_args(
            ["serve", "--queries", "20", "--concurrency", "4",
             "--unique", "6", "--json", str(json_path)]
        )
        rc = run_serve_command(served_system, args)
        out = capsys.readouterr().out
        assert rc == 0
        assert "throughput" in out and "p95" in out
        assert json_path.exists()
        import json

        payload = json.loads(json_path.read_text())
        assert payload["errors"] == 0
        assert payload["concurrency"] == 4

"""Seed-and-local partition updates vs the full pointer detector.

The incremental clusterer's claim: on a delta that touches a bounded
dirty region, re-clustering only that region (with the union graph's
``m_G`` injected) and splicing the untouched communities back produces
the same partition structure as a full re-run — and when it cannot be
sure (churn too high, global stopping knobs, not a fixed point), it
falls back to the full detector, which is exact by determinism.
"""

from __future__ import annotations

import random

import pytest

from repro.community.incremental import (
    IncrementalClusterer,
    IncrementalClusteringConfig,
    _canonical_labels,
)
from repro.community.parallel import ParallelCommunityDetector, ParallelConfig
from repro.community.partition import Partition
from repro.simgraph.graph import MultiGraph


def _clustered_graph(rng: random.Random, clusters: int) -> MultiGraph:
    """Disconnected dense clusters — the similarity graph's real shape."""
    graph = MultiGraph()
    for c in range(clusters):
        members = [f"c{c:03d}v{i}" for i in range(rng.randint(1, 8))]
        for vertex in members:
            graph.add_vertex(vertex)
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                if rng.random() < 0.6:
                    graph.add_edge(members[i], members[j], rng.randint(1, 5))
    return graph


def _copy_with_delta(rng: random.Random, graph: MultiGraph):
    """Union graph plus the touched-vertex set of a small random delta."""
    union = MultiGraph()
    for u, v, multiplicity in graph.edges():
        union.add_edge(u, v, multiplicity)
    for vertex in graph.vertices():
        union.add_vertex(vertex)
    touched: set[str] = set()
    vertices = graph.vertices()
    for _ in range(rng.randint(1, 3)):
        u, v = rng.sample(vertices, 2)
        union.add_edge(u, v, rng.randint(1, 3))
        touched |= {u, v}
    if rng.random() < 0.5:
        fresh = f"fresh{rng.randrange(10)}"
        union.add_vertex(fresh)
        anchor = rng.choice(vertices)
        union.add_edge(fresh, anchor, 2)
        touched |= {fresh, anchor}
    return union, touched


class TestIncrementalClusterer:
    @pytest.mark.parametrize("seed", range(20))
    def test_local_update_matches_scratch_structure(self, seed):
        rng = random.Random(seed)
        graph = _clustered_graph(rng, rng.randint(6, 25))
        config = ParallelConfig()
        previous = ParallelCommunityDetector(graph, config).run()
        union, touched = _copy_with_delta(rng, graph)

        clusterer = IncrementalClusterer(
            config, IncrementalClusteringConfig(churn_threshold=1.0)
        )
        outcome = clusterer.update(union, previous, touched)
        scratch = ParallelCommunityDetector(union, config).run()
        assert outcome.partition.as_frozen() == scratch.as_frozen()
        assert outcome.mode in ("local", "full")
        assert outcome.partition.validate_covers(union) is None

    def test_no_touch_returns_previous_partition(self):
        graph = MultiGraph()
        graph.add_edge("a", "b", 3)
        previous = ParallelCommunityDetector(graph).run()
        outcome = IncrementalClusterer().update(graph, previous, set())
        assert outcome.mode == "unchanged"
        assert outcome.partition is previous
        assert outcome.churn == 0.0

    def test_churn_threshold_forces_the_full_path(self):
        rng = random.Random(5)
        graph = _clustered_graph(rng, 10)
        config = ParallelConfig()
        previous = ParallelCommunityDetector(graph, config).run()
        union, touched = _copy_with_delta(rng, graph)
        clusterer = IncrementalClusterer(
            config, IncrementalClusteringConfig(churn_threshold=0.0)
        )
        outcome = clusterer.update(union, previous, touched)
        assert outcome.mode == "full"
        assert outcome.fallback_reason == "churn"
        scratch = ParallelCommunityDetector(union, config).run()
        assert outcome.partition.as_frozen() == scratch.as_frozen()

    def test_target_communities_knob_forces_the_full_path(self):
        rng = random.Random(6)
        graph = _clustered_graph(rng, 8)
        config = ParallelConfig(target_communities=2)
        previous = ParallelCommunityDetector(graph, config).run()
        union, touched = _copy_with_delta(rng, graph)
        outcome = IncrementalClusterer(
            config, IncrementalClusteringConfig(churn_threshold=1.0)
        ).update(union, previous, touched)
        assert outcome.mode == "full"
        assert outcome.fallback_reason == "target-communities"

    def test_shrinking_total_edges_forces_the_full_path(self):
        """ΔMod shrinks with m_G, so merges decided under a larger old
        m_G may no longer be ones a full run would make — and the
        fixed-point check can only catch missing merges, not needed
        splits.  A delta that lowers m_G must fall back."""
        rng = random.Random(8)
        graph = _clustered_graph(rng, 10)
        config = ParallelConfig()
        previous = ParallelCommunityDetector(graph, config).run()
        union = MultiGraph()
        dropped = None
        for u, v, multiplicity in graph.edges():
            if dropped is None and multiplicity > 1:
                union.add_edge(u, v, multiplicity - 1)  # m_G shrinks by 1
                dropped = (u, v)
            else:
                union.add_edge(u, v, multiplicity)
        for vertex in graph.vertices():
            union.add_vertex(vertex)
        assert dropped is not None
        outcome = IncrementalClusterer(
            config, IncrementalClusteringConfig(churn_threshold=1.0)
        ).update(union, previous, set(dropped), previous_total_edges=graph.total_edges)
        assert outcome.mode == "full"
        assert outcome.fallback_reason == "m-shrank"
        scratch = ParallelCommunityDetector(union, config).run()
        assert outcome.partition.as_frozen() == scratch.as_frozen()

    def test_touched_vertex_must_exist(self):
        graph = MultiGraph()
        graph.add_edge("a", "b", 1)
        previous = ParallelCommunityDetector(graph).run()
        with pytest.raises(ValueError, match="not in graph"):
            IncrementalClusterer().update(graph, previous, {"ghost"})

    def test_clean_region_must_be_covered(self):
        graph = MultiGraph()
        graph.add_edge("a", "b", 1)
        graph.add_edge("c", "d", 1)
        with pytest.raises(ValueError, match="does not cover"):
            IncrementalClusterer(
                None, IncrementalClusteringConfig(churn_threshold=1.0)
            ).update(graph, Partition({"a": "a", "b": "a"}), {"a"})

    def test_config_validation(self):
        with pytest.raises(ValueError):
            IncrementalClusteringConfig(churn_threshold=1.5)

    def test_canonical_labels_are_min_members(self):
        partition = Partition({"x": "zzz", "y": "zzz", "a": "k", "b": "k"})
        canonical = _canonical_labels(partition)
        assert canonical.assignment == {"x": "x", "y": "x", "a": "a", "b": "a"}

    def test_merge_modes_supported(self):
        rng = random.Random(11)
        graph = _clustered_graph(rng, 8)
        for mode in ("pointer", "matching", "components"):
            config = ParallelConfig(merge_mode=mode)
            previous = ParallelCommunityDetector(graph, config).run()
            union, touched = _copy_with_delta(random.Random(12), graph)
            outcome = IncrementalClusterer(
                config, IncrementalClusteringConfig(churn_threshold=1.0)
            ).update(union, previous, touched)
            scratch = ParallelCommunityDetector(union, config).run()
            assert outcome.partition.as_frozen() == scratch.as_frozen()

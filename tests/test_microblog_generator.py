"""Platform generation: personas, volumes, the recall wedge."""

import pytest

from repro.microblog.config import MicroblogConfig
from repro.microblog.generator import (
    TWEET_KIND_WEIGHTS,
    MicroblogGenerator,
    generate_platform,
)


class TestMicroblogConfig:
    def test_defaults_valid(self):
        MicroblogConfig()

    def test_rate_bounds(self):
        with pytest.raises(ValueError):
            MicroblogConfig(mention_rate=2.0)

    def test_max_chars_floor(self):
        with pytest.raises(ValueError):
            MicroblogConfig(max_chars=10)


class TestUserCreation:
    @pytest.fixture(scope="class")
    def users(self, world):
        config = MicroblogConfig(seed=11, tweets=0, casual_users=50, spammers=5)
        return MicroblogGenerator(world, config).create_users()

    def test_unique_ids_and_names(self, users):
        ids = [u.user_id for u in users]
        names = [u.screen_name for u in users]
        assert len(ids) == len(set(ids))
        assert len(names) == len(set(names))

    def test_personas_present(self, users):
        personas = {u.persona for u in users}
        assert {"focused_expert", "broad_expert", "news_bot", "casual",
                "spammer", "celebrity"} <= personas

    def test_search_only_topics_have_no_focused_experts(self, users, world):
        ghost_topics = {
            t.topic_id for t in world.topics if t.microblog_affinity < 0.3
        }
        for user in users:
            if user.persona == "focused_expert":
                assert not (set(user.expert_topics) & ghost_topics)

    def test_broad_experts_span_one_domain(self, users, world):
        for user in users:
            if user.persona == "broad_expert":
                domains = {world.topic(t).domain for t in user.expert_topics}
                assert len(domains) == 1
                assert len(user.expert_topics) >= 2

    def test_experts_have_preferred_keywords(self, users):
        for user in users:
            if user.is_expert:
                for topic_id in user.expert_topics:
                    assert 1 <= len(user.preferred_keywords[topic_id]) <= 3

    def test_spammers_have_no_expertise(self, users):
        for user in users:
            if user.persona == "spammer":
                assert user.expert_topics == ()


class TestTrafficGeneration:
    def test_tweet_count(self, world):
        config = MicroblogConfig(seed=11, tweets=2_000, casual_users=50)
        platform = MicroblogGenerator(world, config).build()
        assert platform.tweet_count == 2_000

    def test_determinism(self, world):
        config = MicroblogConfig(seed=11, tweets=500, casual_users=30)
        a = MicroblogGenerator(world, config).build()
        b = MicroblogGenerator(world, config).build()
        assert [t.text for t in a.tweets()] == [t.text for t in b.tweets()]

    def test_tweets_at_most_140_chars(self, platform):
        for tweet in platform.tweets():
            assert len(tweet.text) <= 140

    def test_mentions_reference_real_users(self, platform):
        for tweet in platform.tweets():
            for mentioned in tweet.mentions:
                platform.user(mentioned)  # must not raise

    def test_retweets_reference_real_tweets(self, platform):
        for tweet in platform.tweets():
            if tweet.retweet_of is not None:
                original = platform.tweet(tweet.retweet_of)
                assert original.author_id != tweet.author_id

    def test_experts_concentrate_on_their_topics(self, platform, world):
        experts = [
            u for u in platform.users() if u.persona == "focused_expert"
        ]
        checked = 0
        for user in experts[:25]:
            topical = 0
            total = 0
            for tweet_id in range(1, platform.tweet_count + 1):
                tweet = platform.tweet(tweet_id)
                if tweet.author_id != user.user_id:
                    continue
                total += 1
                if tweet.topic_id in user.expert_topics:
                    topical += 1
            if total >= 10:
                checked += 1
                assert topical / total > 0.5
        assert checked > 0

    def test_kind_weights_suppress_activities(self):
        assert TWEET_KIND_WEIGHTS["activity"] < 0.2
        assert TWEET_KIND_WEIGHTS["canonical"] == 1.0

    def test_generate_platform_convenience(self, world):
        platform = generate_platform(
            world, MicroblogConfig(seed=2, tweets=100, casual_users=20)
        )
        assert platform.tweet_count == 100

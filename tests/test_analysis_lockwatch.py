"""The runtime lock-order sanitizer, exercised directly.

The deliberate inversion here is the dynamic twin of the static
``LOCK001`` fixture: two threads take two locks in opposite orders, the
watch records both edge directions, and ``check()`` must refuse.
"""

from __future__ import annotations

import threading

import pytest

from repro.analysis.errors import LockOrderError, LockProtocolError
from repro.analysis.lockwatch import (
    LockWatch,
    WatchedLock,
    WatchedRLock,
    active_watch,
    install,
    uninstall,
)


class TestOrderingGraph:
    def test_inverted_two_lock_ordering_is_a_cycle(self):
        watch = LockWatch()
        lock_a = watch.make_lock("a")
        lock_b = watch.make_lock("b")

        def forward():
            with lock_a:
                with lock_b:
                    pass

        def backward():
            with lock_b:
                with lock_a:
                    pass

        # run the two orders in separate threads (sequentially — the
        # graph is about ordering, not about an actual collision)
        for target in (forward, backward):
            thread = threading.Thread(target=target)
            thread.start()
            thread.join()

        assert ("a", "b") in watch.snapshot_edges()
        assert ("b", "a") in watch.snapshot_edges()
        with pytest.raises(LockOrderError, match="cycle"):
            watch.check()

    def test_consistent_ordering_passes(self):
        watch = LockWatch()
        lock_a = watch.make_lock("a")
        lock_b = watch.make_lock("b")
        for _ in range(3):
            with lock_a:
                with lock_b:
                    pass
        watch.check()  # no cycle, no raise

    def test_new_cycles_drain_once(self):
        watch = LockWatch()
        lock_a = watch.make_lock("a")
        lock_b = watch.make_lock("b")
        with lock_a:
            with lock_b:
                pass
        with lock_b:
            with lock_a:
                pass
        assert watch.new_cycles() == [["a", "b"]]
        # already reported: a second check must not re-raise forever
        assert watch.new_cycles() == []
        watch.check()


class TestSelfDeadlock:
    def test_blocking_reacquire_raises_instead_of_hanging(self):
        watch = LockWatch()
        lock = watch.make_lock("solo")
        with lock:
            with pytest.raises(LockOrderError, match="self-deadlock"):
                lock.acquire()

    def test_nonblocking_probe_returns_false(self):
        """Condition._is_owned probes with acquire(False) — never raise."""
        watch = LockWatch()
        lock = watch.make_lock("solo")
        with lock:
            assert lock.acquire(False) is False
        assert lock.acquire(False) is True
        lock.release()

    def test_rlock_reenters_fine(self):
        watch = LockWatch()
        lock = watch.make_rlock("re")
        with lock:
            with lock:
                assert lock._is_owned()
        assert not lock._is_owned()


class TestHoldBudget:
    def test_overlong_hold_recorded(self):
        watch = LockWatch(max_hold_ms=0.0)
        lock = watch.make_lock("slow")
        with lock:
            pass
        violations = watch.drain_hold_violations()
        assert len(violations) == 1
        assert violations[0].label == "slow"
        assert watch.drain_hold_violations() == []  # drained

    def test_exempt_site_skips_budget(self):
        watch = LockWatch(max_hold_ms=0.0, exempt=("slow",))
        lock = watch.make_lock("slow")
        with lock:
            pass
        assert watch.drain_hold_violations() == []

    def test_fast_hold_clean(self):
        watch = LockWatch(max_hold_ms=5000.0)
        lock = watch.make_lock("fast")
        with lock:
            pass
        assert watch.drain_hold_violations() == []


class TestConditionInterop:
    def test_condition_wait_notify_through_watched_rlock(self):
        """Condition.wait must release/reacquire via the wrapper's
        bookkeeping, not behind its back."""
        watch = LockWatch()
        lock = watch.make_rlock("cv")
        condition = threading.Condition(lock)
        state = {"ready": False, "observed": False}

        def waiter():
            with condition:
                while not state["ready"]:
                    condition.wait(timeout=5.0)
                state["observed"] = True

        thread = threading.Thread(target=waiter)
        thread.start()
        with condition:
            state["ready"] = True
            condition.notify()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert state["observed"]
        # wait() fully released the wrapper: no thread still owns it
        assert not lock._is_owned()

    def test_release_by_non_owner_is_typed(self):
        watch = LockWatch()
        lock = watch.make_rlock("owned")
        with pytest.raises(LockProtocolError):
            lock.release()


class TestInstall:
    def test_install_patches_project_lock_creation(self):
        previous = active_watch()  # a session watch may already be live
        watch = install(LockWatch())
        try:
            assert active_watch() is watch
            # created from repro code: watched
            from repro.serving.singleflight import SingleFlight

            flight = SingleFlight()
            assert isinstance(flight._lock, WatchedLock)
            # created from test code (not under a repro package dir):
            # the real primitive
            foreign = threading.Lock()
            assert not isinstance(foreign, (WatchedLock, WatchedRLock))
        finally:
            uninstall()
        assert active_watch() is previous

    def test_install_nests_without_tearing_down_the_outer_watch(self):
        outer = install(LockWatch())
        try:
            inner = install(LockWatch())
            assert inner is outer  # reuses the active watch
            uninstall()  # inner uninstall: outer watch must survive
            assert active_watch() is outer
        finally:
            uninstall()

    def test_install_from_env_respects_flag(self, monkeypatch):
        from repro.analysis import lockwatch

        monkeypatch.delenv(lockwatch.ENV_ENABLE, raising=False)
        assert lockwatch.install_from_env() is None

    def test_watched_primitives_serve_queries(self, system):
        """The serving engine works end-to-end on watched locks."""
        from repro.serving.service import ExpertService, ServiceConfig

        watch = install(LockWatch())
        try:
            service = ExpertService(
                system, ServiceConfig(detection_workers=2)
            )
            try:
                answer = service.query("latex")
                assert answer.snapshot_version >= 1
                assert isinstance(
                    service._counter_lock, (WatchedLock, WatchedRLock)
                )
            finally:
                service.close()
            watch.check()
            assert watch.acquisitions > 0
        finally:
            uninstall()

"""SQL front-end: lexer, parser, executor, session."""

import pytest

from repro.relational.engine import Engine
from repro.relational.sql import SqlError, SqlSession
from repro.relational.sql.ast_nodes import Assignment, SelectStatement
from repro.relational.sql.lexer import tokenize
from repro.relational.sql.parser import parse_script, parse_statement
from repro.relational.table import Table


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SeLeCt x FROM t")
        assert tokens[0].is_keyword("select")
        assert tokens[2].is_keyword("from")

    def test_identifiers_keep_case(self):
        assert tokenize("ModulGain")[0].text == "ModulGain"

    def test_numbers(self):
        tokens = tokenize("1 2.5")
        assert tokens[0].text == "1"
        assert tokens[1].text == "2.5"

    def test_strings(self):
        assert tokenize("'hello world'")[0].text == "hello world"

    def test_unterminated_string(self):
        with pytest.raises(SqlError):
            tokenize("'oops")

    def test_two_char_symbols(self):
        kinds = [t.text for t in tokenize("<> <= >= !=")[:4]]
        assert kinds == ["<>", "<=", ">=", "!="]

    def test_comments_stripped(self):
        tokens = tokenize("select -- a comment\n x from t")
        assert tokens[1].text == "x"

    def test_unexpected_character(self):
        with pytest.raises(SqlError):
            tokenize("select ?")

    def test_eof_token(self):
        assert tokenize("")[0].kind == "eof"


class TestParser:
    def test_simple_select(self):
        statement = parse_statement("SELECT a, b FROM t")
        assert isinstance(statement, SelectStatement)
        assert len(statement.items) == 2
        assert statement.source.name == "t"

    def test_aliases(self):
        statement = parse_statement("SELECT a AS x FROM t AS u")
        assert statement.items[0].alias == "x"
        assert statement.source.alias == "u"

    def test_implicit_table_alias(self):
        statement = parse_statement("SELECT g.a FROM graph g")
        assert statement.source.alias == "g"

    def test_join_clause(self):
        statement = parse_statement(
            "SELECT a FROM t INNER JOIN u ON t.k = u.k"
        )
        assert len(statement.joins) == 1
        assert statement.joins[0].left_column == "t.k"

    def test_where_group_by(self):
        statement = parse_statement(
            "SELECT k, sum(v) AS total FROM t WHERE v > 0 GROUP BY k"
        )
        assert statement.where is not None
        assert len(statement.group_by) == 1

    def test_assignment_form(self):
        statement = parse_statement("result = SELECT a FROM t")
        assert isinstance(statement, Assignment)
        assert statement.target == "result"

    def test_union_all(self):
        statement = parse_statement("SELECT a FROM t UNION ALL SELECT b FROM u")
        assert statement.union_with is not None

    def test_distinct(self):
        assert parse_statement("SELECT DISTINCT a FROM t").distinct

    def test_script_multiple_statements(self):
        script = parse_script("x = SELECT a FROM t; SELECT a FROM x;")
        assert len(script) == 2

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlError):
            parse_statement("SELECT a FROM t extra stuff here")

    def test_missing_from_rejected(self):
        with pytest.raises(SqlError):
            parse_statement("SELECT a")

    def test_operator_precedence(self):
        statement = parse_statement("SELECT a FROM t WHERE a + 2 * 3 = 7")
        assert str(statement.where) == "((a + (2 * 3)) = 7)"

    def test_unary_minus(self):
        statement = parse_statement("SELECT a FROM t WHERE a > -1")
        assert "0 - 1" in str(statement.where)


@pytest.fixture
def session():
    s = SqlSession()
    s.register(
        "graph",
        Table.from_dicts(
            ["query1", "query2", "weight"],
            [
                {"query1": "a", "query2": "b", "weight": 3},
                {"query1": "b", "query2": "a", "weight": 3},
                {"query1": "a", "query2": "c", "weight": 1},
                {"query1": "c", "query2": "a", "weight": 1},
            ],
        ),
    )
    s.register(
        "communities",
        Table.from_dicts(
            ["comm_name", "query"],
            [
                {"comm_name": "a", "query": "a"},
                {"comm_name": "b", "query": "b"},
                {"comm_name": "c", "query": "c"},
            ],
        ),
    )
    return s


class TestExecutor:
    def test_projection_and_filter(self, session):
        out = session.run("SELECT query1 FROM graph WHERE weight > 2")
        assert sorted(out.rows) == [("a",), ("b",)]

    def test_double_join_figure4_shape(self, session):
        out = session.run(
            """
            SELECT c1.comm_name AS comm1, c2.comm_name AS comm2,
                   sum(g.weight) AS links
            FROM graph g
            INNER JOIN communities c1 ON g.query1 = c1.query
            INNER JOIN communities c2 ON g.query2 = c2.query
            WHERE c1.comm_name <> c2.comm_name
            GROUP BY c1.comm_name, c2.comm_name
            """
        )
        as_dict = {(r[0], r[1]): r[2] for r in out.rows}
        assert as_dict[("a", "b")] == 3
        assert as_dict[("c", "a")] == 1

    def test_argmax_group(self, session):
        out = session.run(
            "SELECT query1, argmax(weight, query2) AS best FROM graph "
            "GROUP BY query1"
        )
        best = {r[0]: r[1] for r in out.rows}
        assert best["a"] == "b"

    def test_udf_in_where(self, session):
        session.register_function("Gain", lambda q: 1.0 if q == "a" else -1.0)
        out = session.run("SELECT query1 FROM graph WHERE Gain(query1) > 0")
        assert set(out.rows) == {("a",)}

    def test_assignment_materialises(self, session):
        session.run("heavy = SELECT query1, query2 FROM graph WHERE weight > 2")
        assert "heavy" in session.engine.catalog
        out = session.run("SELECT query1 FROM heavy")
        assert len(out) == 2

    def test_union_all(self, session):
        out = session.run(
            "SELECT query1 FROM graph WHERE weight > 2 "
            "UNION ALL SELECT query2 FROM graph WHERE weight > 2"
        )
        assert len(out) == 4

    def test_non_aggregate_without_group_by_rejected(self, session):
        with pytest.raises(SqlError):
            session.run("SELECT query1, sum(weight) AS s FROM graph")

    def test_unknown_table(self, session):
        with pytest.raises(KeyError):
            session.run("SELECT x FROM missing")

    def test_join_on_reversed_columns(self, session):
        out = session.run(
            "SELECT c1.comm_name AS c FROM graph g "
            "INNER JOIN communities c1 ON c1.query = g.query1"
        )
        assert len(out) == 4

    def test_empty_script_rejected(self, session):
        with pytest.raises(ValueError):
            session.run("   ")

    def test_engine_stats_accumulate(self, session):
        session.run("SELECT query1 FROM graph")
        assert session.engine.stats.rows_read == 4
        assert session.engine.stats.bytes_read > 0

    def test_replicated_strategy_same_result(self):
        hash_session = SqlSession(Engine(join_strategy="hash"))
        repl_session = SqlSession(Engine(join_strategy="replicated", partitions=3))
        table = Table.from_dicts(
            ["k", "v"], [{"k": i % 3, "v": i} for i in range(10)]
        )
        lookup = Table.from_dicts(["k", "name"], [{"k": 0, "name": "zero"}])
        for s in (hash_session, repl_session):
            s.register("t", table)
            s.register("l", lookup)
        sql = "SELECT t.v FROM t INNER JOIN l ON t.k = l.k"
        assert sorted(hash_session.run(sql).rows) == sorted(
            repl_session.run(sql).rows
        )

    def test_count_star(self, session):
        out = session.run(
            "SELECT query1, count(*) AS n FROM graph GROUP BY query1"
        )
        counts = {r[0]: r[1] for r in out.rows}
        assert counts == {"a": 2, "b": 1, "c": 1}

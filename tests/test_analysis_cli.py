"""``python -m repro analyze``: exit codes, JSON schema, baseline flow."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis.findings import SCHEMA_VERSION
from repro.cli import main

DIRTY = """
    def handle(op):
        raise ValueError(f"unknown op {op!r}")
    """

CLEAN = """
    class TierError(RuntimeError):
        pass

    def handle(op):
        raise TierError(f"unknown op {op!r}")
    """


@pytest.fixture
def tree(tmp_path):
    def write(source, name="serving/mod.py"):
        target = tmp_path / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
        return target

    return tmp_path, write


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tree):
        root, write = tree
        target = write(CLEAN)
        assert main(["analyze", str(target), "--root", str(root),
                     "--baseline", str(root / "baseline.json")]) == 0

    def test_each_rule_category_fails_the_gate(self, tree):
        """One dirty fixture per rule category must exit non-zero."""
        root, write = tree
        fixtures = {
            # lock discipline (ordering cycle)
            "lock": """
                import threading

                class Engine:
                    def __init__(self):
                        self._a = threading.Lock()
                        self._b = threading.Lock()

                    def one(self):
                        with self._a:
                            with self._b:
                                pass

                    def two(self):
                        with self._b:
                            with self._a:
                                pass
                """,
            # guarded state
            "guard": """
                import threading

                class Counter:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._n = 0  # guarded-by: _lock

                    def peek(self):
                        return self._n
                """,
            # safe decode
            "pickle": "import pickle\n",
            # exactness gating
            "exact": """
                # analysis: exact-path
                import numpy as np

                def fast(values):
                    return float(np.sum(np.asarray(values)))
                """,
            # typed errors
            "raise": DIRTY,
        }
        for slug, source in fixtures.items():
            target = write(source, name=f"serving/{slug}_mod.py")
            code = main(["analyze", str(target), "--root", str(root),
                         "--baseline", str(root / "baseline.json")])
            assert code == 1, f"fixture {slug!r} should fail the gate"

    def test_malformed_baseline_is_a_usage_error(self, tree, capsys):
        root, write = tree
        target = write(CLEAN)
        bad = root / "baseline.json"
        bad.write_text('{"schema_version": 99, "suppressions": []}')
        assert main(["analyze", str(target), "--root", str(root),
                     "--baseline", str(bad)]) == 2
        assert "schema_version" in capsys.readouterr().err


class TestJsonSchema:
    def test_report_shape_is_stable(self, tree):
        root, write = tree
        target = write(DIRTY)
        out = root / "report.json"
        code = main(["analyze", str(target), "--root", str(root),
                     "--json", str(out),
                     "--baseline", str(root / "baseline.json")])
        assert code == 1
        payload = json.loads(out.read_text())
        assert payload["schema_version"] == SCHEMA_VERSION
        assert set(payload["counts"]) == {"new", "baselined", "suppressed"}
        assert payload["counts"]["new"] == 1
        rule_ids = {rule["id"] for rule in payload["rules"]}
        assert {"LOCK001", "LOCK002", "LOCK003", "GUARD001",
                "PICKLE001", "EXACT001", "RAISE001"} <= rule_ids
        [finding] = payload["findings"]
        assert set(finding) == {"rule", "severity", "path", "line",
                                "column", "symbol", "message", "fingerprint"}
        assert finding["rule"] == "RAISE001"
        assert finding["severity"] == "warning"
        assert finding["line"] > 0

    def test_fingerprints_are_stable_across_line_shifts(self, tree):
        root, write = tree
        out = root / "report.json"
        base = ["analyze", "--root", str(root), "--json", str(out),
                "--baseline", str(root / "baseline.json")]
        target = write(DIRTY)
        main(base + [str(target)])
        first = json.loads(out.read_text())["findings"][0]["fingerprint"]
        target = write("\n\n\n" + textwrap.dedent(DIRTY))
        main(base + [str(target)])
        second = json.loads(out.read_text())["findings"][0]["fingerprint"]
        assert first == second


class TestBaselineRoundTrip:
    def test_write_then_gate_goes_green(self, tree):
        root, write = tree
        target = write(DIRTY)
        baseline = root / "baseline.json"
        args = ["analyze", str(target), "--root", str(root),
                "--baseline", str(baseline)]
        assert main(args) == 1
        assert main(args + ["--write-baseline"]) == 0
        payload = json.loads(baseline.read_text())
        [entry] = payload["suppressions"]
        assert entry["rule"] == "RAISE001"
        assert entry["justification"]  # placeholder, never empty
        assert main(args) == 0

    def test_justifications_survive_rewrite(self, tree):
        root, write = tree
        target = write(DIRTY)
        baseline = root / "baseline.json"
        args = ["analyze", str(target), "--root", str(root),
                "--baseline", str(baseline)]
        main(args + ["--write-baseline"])
        payload = json.loads(baseline.read_text())
        payload["suppressions"][0]["justification"] = "reviewed: wire-only"
        baseline.write_text(json.dumps(payload))
        main(args + ["--write-baseline"])
        payload = json.loads(baseline.read_text())
        assert payload["suppressions"][0]["justification"] == (
            "reviewed: wire-only"
        )

    def test_parser_wires_analyze_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["analyze"])
        assert args.paths == []
        assert args.baseline is None
        assert not args.write_baseline

"""Query-log records, store and generator."""

import pytest

from repro.querylog.config import QueryLogConfig
from repro.querylog.generator import QueryLogGenerator
from repro.querylog.records import ClickAggregate, Impression
from repro.querylog.store import QueryLogStore
from repro.worldmodel.builder import build_world
from repro.worldmodel.config import WorldConfig


class TestImpression:
    def test_raw_bytes_counts_clicks(self):
        imp = Impression("abc", ("x.com", "yy.com"))
        assert imp.raw_bytes() == (3 + 1 + 5 + 1) + (3 + 1 + 6 + 1)

    def test_abandoned_search_bytes(self):
        assert Impression("abc", ()).raw_bytes() == 4


class TestClickAggregate:
    def test_positive_clicks_required(self):
        with pytest.raises(ValueError):
            ClickAggregate("q", "u", 0)


class TestQueryLogStore:
    def test_counts_accumulate(self):
        store = QueryLogStore(min_support=2)
        store.add_impression(Impression("a", ("u1",)))
        store.add_impression(Impression("a", ("u1", "u2")))
        store.add_impression(Impression("b", ()))
        assert store.impressions == 3
        assert store.query_count("a") == 2
        assert store.query_count("b") == 1
        assert store.query_count("missing") == 0

    def test_support_filter(self):
        store = QueryLogStore(min_support=2)
        store.add_impression(Impression("popular", ("u",)))
        store.add_impression(Impression("popular", ("u",)))
        store.add_impression(Impression("rare", ("u",)))
        assert store.supported_queries() == {"popular"}

    def test_aggregates_respect_filter(self):
        store = QueryLogStore(min_support=2)
        store.extend(
            [
                Impression("popular", ("u",)),
                Impression("popular", ("u",)),
                Impression("rare", ("u",)),
            ]
        )
        rows = list(store.aggregates())
        assert rows == [ClickAggregate("popular", "u", 2)]
        unfiltered = list(store.aggregates(supported_only=False))
        assert len(unfiltered) == 2

    def test_click_vectors(self):
        store = QueryLogStore()
        store.extend(
            [
                Impression("q", ("a.com", "b.com")),
                Impression("q", ("a.com",)),
            ]
        )
        assert store.click_vectors()["q"] == {"a.com": 2, "b.com": 1}

    def test_raw_bytes_accumulate(self):
        store = QueryLogStore()
        imp = Impression("abc", ("u.com",))
        store.add_impression(imp)
        store.add_impression(imp)
        assert store.raw_bytes == 2 * imp.raw_bytes()

    def test_min_support_validation(self):
        with pytest.raises(ValueError):
            QueryLogStore(min_support=0)


class TestQueryLogConfig:
    def test_defaults_valid(self):
        QueryLogConfig()

    def test_click_probs_must_sum_to_one(self):
        with pytest.raises(ValueError):
            QueryLogConfig(click_count_probs=(0.5, 0.5, 0.5, 0.5))

    def test_url_mass_bound(self):
        with pytest.raises(ValueError):
            QueryLogConfig(topic_url_prob=0.9, hub_url_prob=0.2)

    def test_noise_url_prob_derived(self):
        config = QueryLogConfig(
            topic_url_prob=0.7, hub_url_prob=0.1, global_url_prob=0.1
        )
        assert abs(config.noise_url_prob - 0.1) < 1e-12


class TestQueryLogGenerator:
    @pytest.fixture(scope="class")
    def world(self):
        return build_world(WorldConfig(seed=3, topics_per_domain=5))

    @pytest.fixture(scope="class")
    def generator(self, world):
        return QueryLogGenerator(
            world, QueryLogConfig(seed=3, impressions=5_000, min_support=5)
        )

    def test_impression_count(self, generator):
        assert len(list(generator.impressions(100))) == 100

    def test_determinism(self, world):
        config = QueryLogConfig(seed=3, impressions=200)
        a = [i.query for i in QueryLogGenerator(world, config).impressions()]
        b = [i.query for i in QueryLogGenerator(world, config).impressions()]
        assert a == b

    def test_queries_mostly_from_vocabulary(self, world, generator):
        vocabulary = set(world.vocabulary())
        impressions = list(generator.impressions(2_000))
        in_vocab = sum(1 for i in impressions if i.query in vocabulary)
        assert in_vocab / len(impressions) > 0.9

    def test_noise_rate_produces_noise(self, world):
        config = QueryLogConfig(seed=3, impressions=2_000, noise_rate=0.5)
        generator = QueryLogGenerator(world, config)
        noise = sum(
            1 for i in generator.impressions() if i.query.startswith("zzq")
        )
        assert 700 < noise < 1300

    def test_same_topic_queries_share_urls(self, world, generator):
        store = generator.fill_store()
        vectors = store.click_vectors(supported_only=False)
        topic = world.topics[0]
        canonical = topic.canonical.text
        sibling = next(
            (k.text for k in topic.keywords[1:] if k.text in vectors), None
        )
        if sibling is None or canonical not in vectors:
            pytest.skip("tail topic unsampled at this size")
        shared = set(vectors[canonical]) & set(vectors[sibling])
        assert shared

    def test_negative_count_rejected(self, generator):
        with pytest.raises(ValueError):
            list(generator.impressions(-1))

    def test_fill_store_uses_config_support(self, generator):
        store = generator.fill_store()
        assert store.min_support == 5

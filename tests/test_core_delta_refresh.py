"""DeltaRefresh ≡ full rebuild on the union — the core property.

The batch pipeline stays the executable specification: for a random base
world plus a random delta batch, the incremental path must produce the
same similarity edges (byte-identical), the same partition structure and
the *identical* domain store as :class:`OfflinePipeline` run once over
the union log — in both churn regimes (local moves and the full-recluster
fallback).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.community.incremental import IncrementalClusteringConfig
from repro.core.config import ESharpConfig
from repro.core.incremental import DeltaRefresh, DeltaRefreshConfig
from repro.core.offline import OfflinePipeline
from repro.querylog.generator import QueryLogGenerator
from repro.querylog.store import QueryLogStore
from repro.worldmodel.builder import build_world


def _split_log(config: ESharpConfig, base_fraction: float):
    """One impression stream split into (base, delta, union) stores."""
    world = build_world(config.world)
    generator = QueryLogGenerator(world, config.querylog)
    impressions = list(generator.impressions(config.querylog.impressions))
    cut = int(len(impressions) * base_fraction)
    min_support = config.querylog.min_support

    base = QueryLogStore(min_support=min_support)
    base.extend(impressions[:cut])
    delta = QueryLogStore(min_support=min_support)
    delta.extend(impressions[cut:])
    union = QueryLogStore(min_support=min_support)
    union.extend(impressions)
    return world, base, delta, union


def _tiny_config(seed: int) -> ESharpConfig:
    small = ESharpConfig.small(seed=seed)
    return replace(
        small,
        querylog=replace(small.querylog, impressions=15_000, min_support=10),
    )


class TestDeltaEqualsFullRebuild:
    @pytest.mark.parametrize("seed", [1234, 7, 99])
    @pytest.mark.parametrize(
        "churn_threshold, expected_mode",
        [(1.0, "local"), (0.0, "full")],
    )
    def test_equivalence_property(self, seed, churn_threshold, expected_mode):
        config = _tiny_config(seed)
        world, base, delta, union = _split_log(config, base_fraction=0.95)

        artifacts = OfflinePipeline(config).run(world=world, store=base)
        refresher = DeltaRefresh(
            config,
            artifacts,
            DeltaRefreshConfig(
                incremental=IncrementalClusteringConfig(
                    churn_threshold=churn_threshold
                )
            ),
        )
        outcome = refresher.refresh(delta)
        full = OfflinePipeline(config).run(world=world, store=union)

        # both regimes actually exercised
        assert outcome.stats.cluster_mode == expected_mode

        # similarity edges: byte-identical floats
        delta_edges = {
            (u, v): w for u, v, w in outcome.artifacts.weighted_graph.edges()
        }
        full_edges = {
            (u, v): w for u, v, w in full.weighted_graph.edges()
        }
        assert delta_edges == full_edges

        # multigraph: same vertices and multiplicities
        assert (
            outcome.artifacts.multigraph.sorted_edges()
            == full.multigraph.sorted_edges()
        )
        assert (
            outcome.artifacts.multigraph.sorted_vertices()
            == full.multigraph.sorted_vertices()
        )

        # partition: same structure
        assert (
            outcome.artifacts.partition.as_frozen()
            == full.partition.as_frozen()
        )

        # domain store: literally identical (canonical ids + membership)
        assert (
            outcome.artifacts.domain_store.domains()
            == full.domain_store.domains()
        )

    def test_chained_deltas_track_the_union(self):
        config = _tiny_config(42)
        world = build_world(config.world)
        generator = QueryLogGenerator(world, config.querylog)
        impressions = list(generator.impressions(12_000))
        min_support = config.querylog.min_support

        base = QueryLogStore(min_support=min_support)
        base.extend(impressions[:9_000])
        artifacts = OfflinePipeline(config).run(world=world, store=base)
        refresher = DeltaRefresh(config, artifacts)
        for start in (9_000, 10_000, 11_000):
            chunk = QueryLogStore(min_support=min_support)
            chunk.extend(impressions[start : start + 1_000])
            outcome = refresher.refresh(chunk)

        union = QueryLogStore(min_support=min_support)
        union.extend(impressions)
        full = OfflinePipeline(config).run(world=world, store=union)
        assert (
            outcome.artifacts.domain_store.domains()
            == full.domain_store.domains()
        )
        assert outcome.artifacts.store.impressions == union.impressions

    def test_domain_instances_are_reused_across_a_refresh(self):
        config = _tiny_config(7)
        world, base, delta, _ = _split_log(config, base_fraction=0.97)
        artifacts = OfflinePipeline(config).run(world=world, store=base)
        before = {
            domain.domain_id: domain
            for domain in artifacts.domain_store.domains()
        }
        outcome = refresher_outcome = DeltaRefresh(config, artifacts).refresh(
            delta
        )
        stats = refresher_outcome.stats
        reused = [
            domain
            for domain in outcome.artifacts.domain_store.domains()
            if before.get(domain.domain_id) is domain
        ]
        assert stats.domains_reused == len(reused)
        assert 0 < stats.domains_reused <= stats.domains


class TestESharpDeltaIntegration:
    def test_delta_refresh_publishes_and_keeps_corpus(self, small_config):
        from repro.core.esharp import ESharp

        system = ESharp(small_config).build()
        platform_before = system.platform
        version_before = system.snapshots.version
        generator = QueryLogGenerator(
            system.offline.world,
            replace(
                small_config.querylog, seed=small_config.querylog.seed + 5
            ),
        )
        stats = system.refresh_domains_delta(list(generator.impressions(800)))

        assert system.snapshots.version == version_before + 1
        assert system.platform is platform_before  # corpus untouched
        assert stats.impressions == 800
        assert stats.cluster_mode in ("unchanged", "local", "full")
        assert system.offline.store.impressions == (
            small_config.querylog.impressions + 800
        )
        # the system still answers queries on the new generation
        keyword = system.offline.domain_store.known_keywords()[0]
        assert isinstance(system.find_experts(keyword), list)

    def test_refresher_reseeds_after_a_full_rebuild(self, small_config):
        from repro.core.esharp import ESharp

        system = ESharp(small_config).build()
        generator = QueryLogGenerator(
            system.offline.world,
            replace(
                small_config.querylog, seed=small_config.querylog.seed + 6
            ),
        )
        system.refresh_domains_delta(list(generator.impressions(300)))
        refresher_first = system._delta_refresher
        system.refresh_domains()  # full rebuild resets the log window
        assert system.offline.store.impressions == (
            small_config.querylog.impressions
        )
        system.refresh_domains_delta(list(generator.impressions(300)))
        assert system._delta_refresher is not refresher_first
        assert system.offline.store.impressions == (
            small_config.querylog.impressions + 300
        )

    def test_noop_delta_does_not_publish_a_new_version(self, small_config):
        """A delta that changes nothing serving-visible must not bump
        the snapshot version — a bump would rotate every version-keyed
        result-cache entry over byte-identical serving state."""
        from repro.core.esharp import ESharp

        system = ESharp(small_config).build()
        version = system.snapshots.version
        stats = system.refresh_domains_delta([])
        assert stats.impressions == 0
        assert stats.cluster_mode == "unchanged"
        assert system.snapshots.version == version
        # the refresher stays synced: a real delta afterwards still works
        generator = QueryLogGenerator(
            system.offline.world,
            replace(
                small_config.querylog, seed=small_config.querylog.seed + 9
            ),
        )
        refresher_before = system._delta_refresher
        system.refresh_domains_delta(list(generator.impressions(600)))
        assert system._delta_refresher is refresher_before  # no re-seed
        assert system.snapshots.version == version + 1

    def test_failed_refresh_drops_the_cached_state(self, small_config):
        """A partially-applied refresh must never be resumed: the
        refresher mutates its log before repairing the join, so after a
        mid-refresh exception the state is torn and must be re-seeded."""
        from repro.core.esharp import ESharp

        system = ESharp(small_config).build()
        system.refresh_domains_delta([])  # materialise the refresher
        refresher = system._delta_refresher
        assert refresher is not None

        def boom(delta):
            raise RuntimeError("mid-refresh failure")

        refresher.refresh = boom
        with pytest.raises(RuntimeError, match="mid-refresh"):
            system.refresh_domains_delta([])
        assert system._delta_refresher is None
        # and the path recovers by re-seeding from the published state
        stats = system.refresh_domains_delta([])
        assert stats.cluster_mode == "unchanged"

    def test_unpublished_ingest_survives_a_config_change(self, small_config):
        """Serving-invisible ingest lives only in the refresher's log;
        a re-seed triggered by a delta-config change must carry it
        forward, not fall back to the stale published artifacts."""
        from repro.core.esharp import ESharp
        from repro.querylog.records import Impression

        system = ESharp(small_config).build()
        version = system.snapshots.version
        noop = [
            Impression(query="zz noop tail query", clicked_urls=())
            for _ in range(5)
        ]
        system.refresh_domains_delta(noop)
        assert system.snapshots.version == version  # nothing published
        base = small_config.querylog.impressions
        assert system._delta_refresher._store.impressions == base + 5

        system.refresh_domains_delta(
            [],
            DeltaRefreshConfig(
                incremental=IncrementalClusteringConfig(churn_threshold=0.9)
            ),
        )
        # the re-seeded refresher still counts the unpublished batch
        assert system._delta_refresher._store.impressions == base + 5

    def test_sql_clustering_config_coerces_pointer_mode(self):
        """The SQL runner forces pointer semantics; the delta path must
        match, or its full-recluster fallback would diverge from what
        ``refresh_domains`` builds."""
        from repro.community.parallel import ParallelConfig

        config = replace(
            _tiny_config(3),
            use_sql_clustering=True,
            clustering=ParallelConfig(merge_mode="matching"),
        )
        world, base, _, _ = _split_log(config, base_fraction=0.95)
        artifacts = OfflinePipeline(
            replace(config, use_sql_clustering=False)
        ).run(world=world, store=base)
        refresher = DeltaRefresh(config, artifacts)
        assert refresher._clusterer.config.merge_mode == "pointer"

    def test_delta_refresh_requires_built_system(self, small_config):
        from repro.core.esharp import ESharp, NotBuiltError

        with pytest.raises(NotBuiltError):
            ESharp(small_config).refresh_domains_delta([])

"""Pal & Counts detector: candidates, features, normalisation, ranking."""

import math

import pytest

from repro.detector.candidates import collect_candidates
from repro.detector.clusterfilter import GaussianClusterFilter
from repro.detector.features import FeatureVector, compute_features
from repro.detector.normalize import NormalizationConfig, normalize_features
from repro.detector.palcounts import PalCountsDetector
from repro.detector.ranking import RankingConfig, rank_candidates, score_candidates
from repro.microblog.platform import MicroblogPlatform
from repro.microblog.tweets import Tweet
from repro.microblog.users import UserProfile


@pytest.fixture
def scenario_platform():
    """Three users: a focused expert, a generalist, a mentioned-only account."""
    platform = MicroblogPlatform()
    for uid, persona in ((1, "focused_expert"), (2, "casual"), (3, "casual")):
        platform.add_user(
            UserProfile(uid, f"u{uid}", "desc", persona,
                        (7,) if persona == "focused_expert" else ())
        )
    tid = 0

    def post(author, text, mentions=(), retweet_of=None):
        nonlocal tid
        tid += 1
        platform.add_tweet(
            Tweet(tweet_id=tid, author_id=author, text=text,
                  mentions=mentions, retweet_of=retweet_of)
        )
        return tid

    # user 1: 4/5 tweets on "quantum", heavily retweeted
    origin = post(1, "quantum breakthrough analysis")
    post(1, "more quantum thoughts")
    post(1, "quantum conference notes")
    post(1, "quantum paper review")
    post(1, "unrelated lunch tweet")
    # user 2: 1/4 on topic, mentions user 3 on topic
    post(2, "quantum is neat", mentions=(3,))
    post(2, "cats are great")
    post(2, "dogs are great")
    post(2, f"rt @u1: quantum breakthrough analysis", retweet_of=origin)
    return platform


class TestCandidates:
    def test_authors_and_mentioned_collected(self, scenario_platform):
        stats = collect_candidates(scenario_platform, "quantum")
        assert set(stats) == {1, 2, 3}

    def test_on_topic_counts(self, scenario_platform):
        stats = collect_candidates(scenario_platform, "quantum")
        assert stats[1].on_topic_tweets == 4
        assert stats[2].on_topic_tweets == 2  # original + the retweet copy
        assert stats[3].on_topic_mentions == 1
        assert stats[1].on_topic_retweets_received == 1

    def test_no_match_empty(self, scenario_platform):
        assert collect_candidates(scenario_platform, "blockchain") == {}


class TestFeatures:
    def test_ratios(self, scenario_platform):
        stats = collect_candidates(scenario_platform, "quantum")
        vectors = {v.user_id: v for v in
                   compute_features(scenario_platform, stats)}
        assert math.isclose(vectors[1].topical_signal, 4 / 5)
        assert math.isclose(vectors[2].topical_signal, 2 / 4)
        assert math.isclose(vectors[1].retweet_impact, 1.0)

    def test_zero_denominator_gives_zero(self, scenario_platform):
        stats = collect_candidates(scenario_platform, "quantum")
        vectors = {v.user_id: v for v in
                   compute_features(scenario_platform, stats)}
        # user 3 never tweeted: TS denominator 0 → 0.0
        assert vectors[3].topical_signal == 0.0
        assert vectors[3].mention_impact == 1.0  # 1 of 1 mention on topic

    def test_order_deterministic(self, scenario_platform):
        stats = collect_candidates(scenario_platform, "quantum")
        vectors = compute_features(scenario_platform, stats)
        assert [v.user_id for v in vectors] == sorted(stats)


class TestNormalization:
    def test_empty_pool(self):
        assert normalize_features([]) == []

    def test_zscores_zero_mean(self):
        vectors = [
            FeatureVector(1, 0.8, 0.2, 0.1),
            FeatureVector(2, 0.4, 0.6, 0.9),
            FeatureVector(3, 0.1, 0.1, 0.5),
        ]
        normalized = normalize_features(vectors)
        mean_ts = sum(n.z_topical_signal for n in normalized) / 3
        assert abs(mean_ts) < 1e-9

    def test_log_transform_changes_spacing(self):
        vectors = [FeatureVector(1, 0.001, 0, 0), FeatureVector(2, 1.0, 0, 0)]
        with_log = normalize_features(vectors, NormalizationConfig())
        without = normalize_features(
            vectors, NormalizationConfig(apply_log=False)
        )
        assert with_log[0].z_topical_signal != without[0].z_topical_signal

    def test_epsilon_validated(self):
        with pytest.raises(ValueError):
            NormalizationConfig(epsilon=0)


class TestRanking:
    def test_weights_validated(self):
        with pytest.raises(ValueError):
            RankingConfig(weight_topical_signal=-1.0)
        with pytest.raises(ValueError):
            RankingConfig(
                weight_topical_signal=0,
                weight_mention_impact=0,
                weight_retweet_impact=0,
            )

    def test_expert_outranks_generalist(self, scenario_platform):
        stats = collect_candidates(scenario_platform, "quantum")
        vectors = compute_features(scenario_platform, stats)
        normalized = normalize_features(vectors)
        config = RankingConfig(min_zscore=-10.0)
        ranked = rank_candidates(scenario_platform, vectors, normalized, config)
        assert ranked[0].user_id == 1

    def test_threshold_filters(self, scenario_platform):
        stats = collect_candidates(scenario_platform, "quantum")
        vectors = compute_features(scenario_platform, stats)
        normalized = normalize_features(vectors)
        strict = rank_candidates(
            scenario_platform, vectors, normalized,
            RankingConfig(min_zscore=100.0),
        )
        assert strict == []

    def test_max_results_cap(self, scenario_platform):
        stats = collect_candidates(scenario_platform, "quantum")
        vectors = compute_features(scenario_platform, stats)
        normalized = normalize_features(vectors)
        capped = rank_candidates(
            scenario_platform, vectors, normalized,
            RankingConfig(min_zscore=-10.0, max_results=2),
        )
        assert len(capped) == 2

    def test_scores_sorted_descending(self, scenario_platform):
        stats = collect_candidates(scenario_platform, "quantum")
        vectors = compute_features(scenario_platform, stats)
        normalized = normalize_features(vectors)
        scored = score_candidates(
            scenario_platform, vectors, normalized, RankingConfig()
        )
        assert all(
            a.score >= b.score for a, b in zip(scored, scored[1:])
        )

    def test_with_threshold_copy(self):
        config = RankingConfig(min_zscore=1.0)
        assert config.with_threshold(2.5).min_zscore == 2.5
        assert config.min_zscore == 1.0


class TestPalCountsDetector:
    def test_detect_returns_experts(self, scenario_platform):
        detector = PalCountsDetector(
            scenario_platform, RankingConfig(min_zscore=-10.0)
        )
        experts = detector.detect("quantum")
        assert experts and experts[0].screen_name == "u1"

    def test_no_candidates_empty(self, scenario_platform):
        assert PalCountsDetector(scenario_platform).detect("blockchain") == []

    def test_min_zscore_override(self, scenario_platform):
        detector = PalCountsDetector(scenario_platform)
        assert detector.detect("quantum", min_zscore=1e9) == []

    def test_cache_consistency(self, scenario_platform):
        detector = PalCountsDetector(scenario_platform, cache_scores=True)
        uncached = PalCountsDetector(scenario_platform, cache_scores=False)
        a = [e.user_id for e in detector.score("quantum")]
        b = [e.user_id for e in detector.score("quantum")]
        c = [e.user_id for e in uncached.score("quantum")]
        assert a == b == c

    def test_candidate_count(self, scenario_platform):
        assert PalCountsDetector(scenario_platform).candidate_count("quantum") == 3


class TestIngestionEdgeRegressions:
    """Feature-accounting bugs fixed in the indexed-engine PR."""

    @pytest.mark.parametrize("use_engine", [False, True])
    def test_unregistered_mentionee_does_not_crash_detection(self, use_engine):
        # seed bug: collect_candidates created a candidate for any
        # mentioned id, then platform.totals raised KeyError for it
        platform = MicroblogPlatform()
        platform.add_user(UserProfile(1, "u1", "d", "casual", ()))
        platform.add_tweet(
            Tweet(tweet_id=1, author_id=1, text="quantum talk",
                  mentions=(404,))
        )
        detector = PalCountsDetector(
            platform, RankingConfig(min_zscore=-10.0), use_engine=use_engine
        )
        experts = detector.detect("quantum")
        assert [e.user_id for e in experts] == [1]

    @pytest.mark.parametrize("use_engine", [False, True])
    def test_retweet_impact_bounded_under_out_of_order_ingestion(
        self, use_engine
    ):
        # seed bug: a retweet arriving before its original never joined
        # the RI denominator, while the query-time numerator resolved the
        # late-added original — so RI could exceed 1.0
        platform = MicroblogPlatform()
        for uid in (1, 2, 3):
            platform.add_user(UserProfile(uid, f"u{uid}", "d", "casual", ()))
        platform.add_tweet(
            Tweet(tweet_id=10, author_id=2, text="rt quantum scoop",
                  retweet_of=1)
        )
        platform.add_tweet(Tweet(tweet_id=1, author_id=1, text="quantum scoop"))
        platform.add_tweet(
            Tweet(tweet_id=11, author_id=3, text="rt quantum scoop",
                  retweet_of=1)
        )
        detector = PalCountsDetector(platform, use_engine=use_engine)
        stats = collect_candidates(
            platform, "quantum", engine=detector.engine
        )
        assert stats[1].on_topic_retweets_received == 2
        vectors = {
            v.user_id: v for v in compute_features(platform, stats)
        }
        assert 0.0 <= vectors[1].retweet_impact <= 1.0
        assert math.isclose(vectors[1].retweet_impact, 1.0)


class TestScoreMemoImmutability:
    def test_score_returns_immutable_pool(self, scenario_platform):
        detector = PalCountsDetector(scenario_platform)
        pool = detector.score("quantum")
        assert isinstance(pool, tuple)

    def test_caller_mutation_cannot_poison_the_memo(self, scenario_platform):
        # seed bug: the memo handed out its cached list by reference, so
        # a caller's in-place edit corrupted every later query
        detector = PalCountsDetector(scenario_platform)
        first = detector.score("quantum")
        expected = list(first)
        mutable = list(first)
        mutable.clear()                       # what a careless caller does
        with pytest.raises((AttributeError, TypeError)):
            first.clear()                     # the memo's pool refuses
        assert list(detector.score("quantum")) == expected


class TestClusterFilter:
    def test_small_pool_untouched(self, scenario_platform):
        detector = PalCountsDetector(
            scenario_platform,
            RankingConfig(min_zscore=-10),
            cluster_filter=GaussianClusterFilter(min_pool=6),
        )
        assert len(detector.detect("quantum")) == 3

    def test_bimodal_scores_filtered(self):
        from repro.detector.normalize import NormalizedFeatures

        def fake_expert(uid, score):
            return type(
                "E", (),
                {"score": score, "user_id": uid},
            )()

        scored = [fake_expert(i, 5.0 + i * 0.01) for i in range(5)]
        scored += [fake_expert(10 + i, -5.0 - i * 0.01) for i in range(5)]
        kept = GaussianClusterFilter(min_pool=2).apply(scored)  # type: ignore[arg-type]
        kept_ids = {e.user_id for e in kept}
        assert kept_ids == {0, 1, 2, 3, 4}

    def test_constant_scores_pass_through(self):
        def fake(uid):
            return type("E", (), {"score": 1.0, "user_id": uid})()

        scored = [fake(i) for i in range(8)]
        assert len(GaussianClusterFilter(min_pool=2).apply(scored)) == 8  # type: ignore[arg-type]

"""TTL boundary semantics and counter consistency of the LRU+TTL cache.

The serving result cache and the detector memos both ride on
:class:`repro.utils.cache.LRUCache`; the TTL boundary (an entry dies *at*
``ttl_seconds``, not after it) and the hit/miss/expiration accounting are
load-bearing for the serving stats invariants, so they get their own
deterministic (injected clock) and concurrent coverage here.
"""

from __future__ import annotations

import threading

import pytest

from repro.utils.cache import LRUCache


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTtlBoundary:
    def test_entry_expires_at_exactly_ttl(self):
        clock = FakeClock()
        cache = LRUCache(8, ttl_seconds=10.0, clock=clock)
        cache.put("k", "v")
        clock.advance(10.0 - 1e-9)
        assert cache.get("k") == "v"            # strictly inside the TTL
        clock.advance(1e-9)                     # now exactly at ttl_seconds
        assert cache.get("k") is None           # >= expiry: dead on the dot
        info = cache.cache_info()
        assert info.hits == 1
        assert info.misses == 1
        assert info.expirations == 1
        assert info.size == 0

    def test_contains_respects_the_boundary_without_counting(self):
        clock = FakeClock()
        cache = LRUCache(8, ttl_seconds=5.0, clock=clock)
        cache.put("k", "v")
        assert "k" in cache
        clock.advance(5.0)
        assert "k" not in cache
        info = cache.cache_info()
        assert info.hits == 0 and info.misses == 0  # membership is free

    def test_put_refreshes_the_clock(self):
        clock = FakeClock()
        cache = LRUCache(8, ttl_seconds=10.0, clock=clock)
        cache.put("k", "v1")
        clock.advance(9.0)
        cache.put("k", "v2")                    # re-stored: new birth time
        clock.advance(9.0)                      # 18s after first, 9 after second
        assert cache.get("k") == "v2"

    def test_purge_expired_drops_exactly_the_dead(self):
        clock = FakeClock()
        cache = LRUCache(8, ttl_seconds=10.0, clock=clock)
        cache.put("old", 1)
        clock.advance(6.0)
        cache.put("mid", 2)
        clock.advance(4.0)                      # old at 10.0 (dead), mid at 4.0
        cache.put("new", 3)
        assert cache.purge_expired() == 1
        info = cache.cache_info()
        assert info.expirations == 1
        assert info.size == 2 == len(cache)
        assert sorted(cache.keys()) == ["mid", "new"]

    def test_purge_on_a_ttl_free_cache_is_a_noop(self):
        cache = LRUCache(4)
        cache.put("k", 1)
        assert cache.purge_expired() == 0
        assert cache.cache_info().expirations == 0


class TestCounterConsistencyUnderConcurrency:
    @pytest.mark.parametrize("capacity", [4, 64])
    def test_get_put_purge_counters_close(self, capacity):
        """hits + misses == lookups, size honest, no counter drift."""
        clock = FakeClock()
        lock = threading.Lock()
        cache = LRUCache(capacity, ttl_seconds=3.0, clock=clock)
        threads = 6
        ops = 400
        gets = [0] * threads
        barrier = threading.Barrier(threads)

        def worker(slot: int) -> None:
            barrier.wait()
            for i in range(ops):
                key = (slot + i) % 17
                if i % 5 == 0:
                    cache.put(key, (slot, i))
                elif i % 11 == 0:
                    cache.purge_expired()
                    with lock:
                        clock.advance(0.25)
                else:
                    cache.get(key)
                    gets[slot] += 1

        pool = [
            threading.Thread(target=worker, args=(slot,), daemon=True)
            for slot in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join(timeout=30)
        assert not any(thread.is_alive() for thread in pool)

        info = cache.cache_info()
        # every get() resolved to exactly one of hit/miss
        assert info.hits + info.misses == info.lookups == sum(gets)
        # the size the counters report is the size the cache has
        assert info.size == len(cache) <= capacity
        assert 0.0 <= info.hit_rate <= 1.0
        # a final full purge leaves the accounting coherent
        clock.advance(10.0)
        purged = cache.purge_expired()
        after = cache.cache_info()
        assert after.expirations == info.expirations + purged
        assert after.size == len(cache) == 0

"""Expansion policies (ABL5) and the log-store merge."""

import pytest

from repro.expansion.domainstore import DomainStore, ExpertiseDomain
from repro.expansion.policies import (
    POLICIES,
    FullCommunityPolicy,
    SharedTokenPolicy,
    TopKSimilarPolicy,
)
from repro.simgraph.graph import WeightedGraph


@pytest.fixture
def domain():
    return ExpertiseDomain(
        "d1",
        ("49ers", "niners", "#49ers", "49ers draft", "san francisco",
         "bruce ellington"),
    )


@pytest.fixture
def graph():
    g = WeightedGraph()
    g.add_edge("49ers", "niners", 0.9)
    g.add_edge("49ers", "#49ers", 0.8)
    g.add_edge("49ers", "49ers draft", 0.7)
    g.add_edge("49ers", "san francisco", 0.2)
    g.add_edge("49ers", "bruce ellington", 0.4)
    return g


class TestFullPolicy:
    def test_matches_paper_behaviour(self, domain):
        terms = FullCommunityPolicy().terms("49ers", domain)
        assert terms[0] == "49ers"
        assert set(terms) == set(domain.keywords)


class TestTopKPolicy:
    def test_limits_and_ranks_by_similarity(self, domain, graph):
        terms = TopKSimilarPolicy(k=2).terms("49ers", domain, graph)
        assert terms == ["49ers", "niners", "#49ers"]

    def test_without_graph_keeps_order(self, domain):
        terms = TopKSimilarPolicy(k=2).terms("49ers", domain)
        assert len(terms) == 3
        assert terms[0] == "49ers"

    def test_k_validated(self):
        with pytest.raises(ValueError):
            TopKSimilarPolicy(k=0)


class TestSharedTokenPolicy:
    def test_keeps_surface_relatives_only(self, domain):
        terms = SharedTokenPolicy().terms("49ers", domain)
        assert "49ers draft" in terms
        assert "#49ers" in terms          # hashtag form of the same head
        assert "san francisco" not in terms
        assert "bruce ellington" not in terms

    def test_query_always_first(self, domain):
        assert SharedTokenPolicy().terms("49ers", domain)[0] == "49ers"


class TestPolicyIntegration:
    def test_registry_complete(self):
        assert set(POLICIES) == {"full", "top-k", "shared-token"}

    def test_policies_are_monotone_in_breadth(self, system):
        """full ⊇ top-k-ish ⊇ shared-token in *result* counts on average."""
        from repro.expansion.expander import QueryExpander

        store = DomainStore.from_partition(system.offline.partition)
        weighted = system.offline.weighted_graph
        world = system.offline.world
        queries = [
            t.canonical.text
            for t in world.topics
            if t.microblog_affinity > 0.5
        ][:20]
        totals = {}
        for name, policy in POLICIES.items():
            expander = QueryExpander(
                store, system.detector, policy=policy, graph=weighted
            )
            totals[name] = sum(
                len(expander.detect(q).experts) for q in queries
            )
        assert totals["full"] >= totals["shared-token"]


class TestStoreMerge:
    def test_merge_accumulates(self):
        from repro.querylog.records import Impression
        from repro.querylog.store import QueryLogStore

        first = QueryLogStore(min_support=2)
        second = QueryLogStore(min_support=2)
        first.add_impression(Impression("q", ("u.com",)))
        second.add_impression(Impression("q", ("u.com", "v.com")))
        second.add_impression(Impression("other", ()))
        first.merge(second)
        assert first.impressions == 3
        assert first.query_count("q") == 2
        assert "q" in first.supported_queries()
        assert first.click_vectors(supported_only=False)["q"] == {
            "u.com": 2, "v.com": 1,
        }

    def test_merge_combines_weeks_into_month(self, world):
        """Two weekly logs merged ≈ one fortnight log for the pipeline."""
        from repro.querylog.config import QueryLogConfig
        from repro.querylog.generator import QueryLogGenerator

        week1 = QueryLogGenerator(
            world, QueryLogConfig(seed=1, impressions=5_000, min_support=10)
        ).fill_store()
        week2 = QueryLogGenerator(
            world, QueryLogConfig(seed=2, impressions=5_000, min_support=10)
        ).fill_store()
        solo_supported = len(week1.supported_queries())
        week1.merge(week2)
        assert week1.impressions == 10_000
        assert len(week1.supported_queries()) >= solo_supported

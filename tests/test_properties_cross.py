"""Cross-cutting property tests: relational algebra laws, pipeline
invariants, and the e#-versus-baseline containment property.
"""

from hypothesis import given, settings, strategies as st

from repro.relational.expressions import ColumnRef, Comparison, Literal
from repro.relational.joins import HashJoin
from repro.relational.operators import group_by, project, select_rows
from repro.relational.table import Table

rows_strategy = st.lists(
    st.tuples(st.integers(0, 4), st.integers(-50, 50)), max_size=25
)


def int_table(rows):
    return Table.from_dicts(["k", "v"], [{"k": k, "v": v} for k, v in rows])


class TestRelationalAlgebraLaws:
    @given(rows_strategy, st.integers(-50, 50))
    def test_selection_splits_table(self, rows, pivot):
        """σ(P) ∪ σ(¬P) is a permutation of the input."""
        table = int_table(rows)
        predicate = Comparison(">", ColumnRef("v"), Literal(pivot))
        negation = Comparison("<=", ColumnRef("v"), Literal(pivot))
        kept = select_rows(table, predicate)
        dropped = select_rows(table, negation)
        assert sorted(kept.rows + dropped.rows) == sorted(table.rows)

    @given(rows_strategy, st.integers(-50, 50))
    def test_selection_commutes_with_projection(self, rows, pivot):
        table = int_table(rows)
        predicate = Comparison(">", ColumnRef("v"), Literal(pivot))
        select_then_project = project(
            select_rows(table, predicate), [(ColumnRef("v"), "v")]
        )
        project_then_select = select_rows(
            project(table, [(ColumnRef("v"), "v")]), predicate
        )
        assert sorted(select_then_project.rows) == sorted(
            project_then_select.rows
        )

    @given(rows_strategy)
    def test_group_by_sum_matches_python(self, rows):
        table = int_table(rows)
        grouped = group_by(
            table,
            keys=[ColumnRef("k")],
            key_names=["k"],
            aggregations=[("sum", [ColumnRef("v")], "total")],
        )
        expected: dict[int, int] = {}
        for k, v in rows:
            expected[k] = expected.get(k, 0) + v
        assert {row[0]: row[1] for row in grouped.rows} == expected

    @given(rows_strategy, rows_strategy)
    def test_join_symmetric_up_to_column_order(self, left_rows, right_rows):
        left = int_table(left_rows).with_alias("l")
        right = int_table(right_rows).with_alias("r")
        forward, _ = HashJoin().execute(left, right, "l.k", "r.k")
        backward, _ = HashJoin().execute(right, left, "r.k", "l.k")
        reordered = [
            (row[2], row[3], row[0], row[1]) for row in backward.rows
        ]
        assert sorted(forward.rows) == sorted(reordered)

    @given(rows_strategy)
    def test_join_with_self_on_key_yields_square_counts(self, rows):
        table = int_table(rows).with_alias("a")
        other = int_table(rows).with_alias("b")
        joined, _ = HashJoin().execute(table, other, "a.k", "b.k")
        counts: dict[int, int] = {}
        for k, _ in rows:
            counts[k] = counts.get(k, 0) + 1
        assert len(joined) == sum(c * c for c in counts.values())


class TestPipelineInvariants:
    def test_esharp_pool_contains_baseline_pool(self, system):
        """Before the result cap, every baseline candidate appears in the
        e# union with at least its baseline score (union takes max)."""
        world = system.offline.world
        checked = 0
        for topic in world.topics[:25]:
            query = topic.canonical.text
            baseline = {
                e.user_id: e.score for e in system.detector.score(query)
            }
            if not baseline:
                continue
            union = {
                e.user_id: e.score
                for e in system.online.score(query).scored_pool
            }
            checked += 1
            for user_id, score in baseline.items():
                assert user_id in union
                assert union[user_id] >= score - 1e-9
        assert checked > 0

    def test_kept_experts_monotone_in_threshold(self, system):
        world = system.offline.world
        for topic in world.topics[:10]:
            query = topic.canonical.text
            previous = None
            for threshold in (0.0, 1.0, 2.0, 4.0):
                count = len(system.find_experts(query, threshold))
                if previous is not None:
                    assert count <= previous
                previous = count

    def test_scores_identical_across_runs(self, system):
        world = system.offline.world
        query = world.topics[0].canonical.text
        first = [(e.user_id, e.score) for e in system.detector.score(query)]
        second = [(e.user_id, e.score) for e in system.detector.score(query)]
        assert first == second


class TestCommunityInvariants:
    @settings(max_examples=20)
    @given(st.integers(0, 1000))
    def test_every_vertex_assigned_exactly_once(self, seed):
        import random

        from repro.community.parallel import ParallelCommunityDetector
        from repro.simgraph.graph import MultiGraph

        rng = random.Random(seed)
        graph = MultiGraph()
        names = [f"v{i}" for i in range(12)]
        for name in names:
            graph.add_vertex(name)
        for _ in range(18):
            u, v = rng.sample(names, 2)
            graph.add_edge(u, v, rng.randint(1, 3))
        partition = ParallelCommunityDetector(graph).run()
        partition.validate_covers(graph)
        seen: set[str] = set()
        for community in partition.communities():
            members = partition.members(community)
            assert not (members & seen)
            seen |= members
        assert seen == set(graph.vertices())

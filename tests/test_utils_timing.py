"""Stage clock and Table 9 formatting."""

import pytest

from repro.utils.timing import (
    StageClock,
    StageReport,
    format_bytes,
    format_seconds,
)


class TestFormatBytes:
    def test_gigabytes(self):
        assert format_bytes(2_600_000_000) == "2.6 GB"

    def test_megabytes(self):
        assert format_bytes(94_000_000) == "94 MB"

    def test_kilobytes(self):
        assert format_bytes(2_000) == "2 KB"

    def test_bytes(self):
        assert format_bytes(512) == "512 B"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_bytes(-1)


class TestFormatSeconds:
    def test_milliseconds(self):
        assert format_seconds(0.05) == "50 ms"

    def test_seconds(self):
        assert format_seconds(12.0) == "12 sec"

    def test_minutes(self):
        assert format_seconds(38 * 60) == "38 min"

    def test_hours(self):
        assert format_seconds(7200) == "2 hours"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_seconds(-0.1)


class TestStageClock:
    def test_measures_elapsed_time(self):
        clock = StageClock()
        with clock.stage("work") as report:
            report.bytes_read = 100
        assert clock.reports[0].seconds >= 0.0
        assert clock.reports[0].bytes_read == 100

    def test_stage_order_preserved(self):
        clock = StageClock()
        with clock.stage("b"):
            pass
        with clock.stage("a"):
            pass
        assert [r.name for r in clock.reports] == ["b", "a"]

    def test_same_stage_merges(self):
        clock = StageClock()
        with clock.stage("x", workers=2) as report:
            report.bytes_read = 10
        with clock.stage("x", workers=5) as report:
            report.bytes_read = 20
        assert len(clock.reports) == 1
        merged = clock.reports[0]
        assert merged.bytes_read == 30
        assert merged.workers == 5

    def test_exception_discards_report(self):
        clock = StageClock()
        with pytest.raises(RuntimeError):
            with clock.stage("bad"):
                raise RuntimeError("boom")
        assert clock.reports == []

    def test_total_seconds(self):
        clock = StageClock()
        with clock.stage("a"):
            pass
        with clock.stage("b"):
            pass
        assert clock.total_seconds() >= 0.0


class TestStageReport:
    def test_merge_name_mismatch(self):
        with pytest.raises(ValueError):
            StageReport("a").merge(StageReport("b"))

    def test_as_row_shape(self):
        row = StageReport(
            "Extraction", workers=65, seconds=38 * 60,
            bytes_read=998_000_000_000, bytes_written=2_600_000_000,
        ).as_row()
        assert row == ("Extraction", 65, "38 min", "998 GB", "2.6 GB")

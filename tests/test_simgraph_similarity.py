"""Cosine similarity join."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.simgraph.similarity import (
    SimilarityConfig,
    candidate_pairs,
    cosine,
    similarity_edges,
)
from repro.simgraph.vectors import SparseVector

click_dicts = st.dictionaries(
    st.sampled_from(["u1", "u2", "u3", "u4", "u5"]),
    st.integers(1, 50),
    max_size=5,
)


class TestCosine:
    def test_identical_vectors(self):
        v = SparseVector({"a": 2, "b": 3})
        assert math.isclose(cosine(v, v), 1.0)

    def test_orthogonal(self):
        assert cosine(SparseVector({"a": 1}), SparseVector({"b": 1})) == 0.0

    def test_empty_vector(self):
        assert cosine(SparseVector({}), SparseVector({"a": 1})) == 0.0

    def test_known_value(self):
        # Figure 2's example structure: partial URL overlap
        left = SparseVector({"49ers.com": 25, "espn.com": 10})
        right = SparseVector({"nfl.com": 20, "espn.com": 15})
        expected = (10 * 15) / (math.hypot(25, 10) * math.hypot(20, 15))
        assert math.isclose(cosine(left, right), expected)

    @given(click_dicts, click_dicts)
    def test_bounded(self, a, b):
        value = cosine(SparseVector(a), SparseVector(b))
        assert -1e-9 <= value <= 1.0 + 1e-9

    @given(click_dicts, click_dicts)
    def test_symmetric(self, a, b):
        va, vb = SparseVector(a), SparseVector(b)
        assert math.isclose(cosine(va, vb), cosine(vb, va), abs_tol=1e-12)


class TestSimilarityConfig:
    def test_defaults_valid(self):
        SimilarityConfig()

    def test_threshold_bounds(self):
        with pytest.raises(ValueError):
            SimilarityConfig(min_similarity=1.5)

    def test_posting_floor(self):
        with pytest.raises(ValueError):
            SimilarityConfig(max_posting_list=1)


class TestCandidatePairs:
    def test_only_co_clicked_pairs(self):
        vectors = {
            "a": SparseVector({"u1": 1}),
            "b": SparseVector({"u1": 1}),
            "c": SparseVector({"u2": 1}),
        }
        pairs = set(candidate_pairs(vectors, SimilarityConfig()))
        assert pairs == {("a", "b")}

    def test_pairs_unique_even_with_multiple_shared_urls(self):
        vectors = {
            "a": SparseVector({"u1": 1, "u2": 1}),
            "b": SparseVector({"u1": 1, "u2": 1}),
        }
        pairs = list(candidate_pairs(vectors, SimilarityConfig()))
        assert pairs == [("a", "b")]

    def test_long_posting_lists_skipped(self):
        vectors = {
            f"q{i}": SparseVector({"hub": 1}) for i in range(10)
        }
        config = SimilarityConfig(max_posting_list=5)
        assert list(candidate_pairs(vectors, config)) == []


class TestSimilarityEdges:
    def test_threshold_applied(self):
        vectors = {
            "near1": SparseVector({"u1": 10, "u2": 10}),
            "near2": SparseVector({"u1": 10, "u2": 9}),
            "far": SparseVector({"u1": 1, "u3": 99}),
        }
        edges = similarity_edges(vectors, SimilarityConfig(min_similarity=0.5))
        assert ("near1", "near2") in edges
        assert all(weight >= 0.5 for weight in edges.values())

    def test_edge_keys_sorted(self):
        vectors = {
            "zz": SparseVector({"u": 1}),
            "aa": SparseVector({"u": 1}),
        }
        edges = similarity_edges(vectors, SimilarityConfig(min_similarity=0.0))
        assert list(edges) == [("aa", "zz")]

    def test_no_self_edges(self):
        vectors = {"a": SparseVector({"u": 5})}
        assert similarity_edges(vectors) == {}

"""Sparse click vectors."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.querylog.records import Impression
from repro.querylog.store import QueryLogStore
from repro.simgraph.vectors import SparseVector, build_click_vectors

click_dicts = st.dictionaries(
    st.text(st.characters(min_codepoint=97, max_codepoint=122), min_size=1, max_size=8),
    st.integers(1, 100),
    max_size=10,
)


class TestSparseVector:
    def test_norm(self):
        vector = SparseVector({"a": 3, "b": 4})
        assert vector.norm == 5.0

    def test_empty_norm(self):
        assert SparseVector({}).norm == 0.0

    def test_dot_product(self):
        left = SparseVector({"a": 2, "b": 1})
        right = SparseVector({"a": 3, "c": 7})
        assert left.dot(right) == 6.0

    def test_dot_disjoint_is_zero(self):
        assert SparseVector({"a": 1}).dot(SparseVector({"b": 1})) == 0.0

    def test_non_positive_clicks_rejected(self):
        with pytest.raises(ValueError):
            SparseVector({"a": 0})

    def test_len_and_bool(self):
        assert len(SparseVector({"a": 1, "b": 2})) == 2
        assert not SparseVector({})

    @given(click_dicts, click_dicts)
    def test_dot_commutative(self, left, right):
        a, b = SparseVector(left), SparseVector(right)
        assert a.dot(b) == b.dot(a)

    @given(click_dicts)
    def test_cauchy_schwarz(self, components):
        vector = SparseVector(components)
        assert vector.dot(vector) <= vector.norm * vector.norm + 1e-9

    @given(click_dicts)
    def test_self_dot_is_norm_squared(self, components):
        vector = SparseVector(components)
        assert math.isclose(
            vector.dot(vector), vector.norm**2, rel_tol=1e-9, abs_tol=1e-9
        )

    def test_norm_cached_at_construction(self):
        # the cosine join reads the norm twice per candidate pair; it must
        # be the float computed at construction, not an O(d) recompute
        # (identity, not just equality: a recompute returns a fresh object)
        vector = SparseVector({"a": 3, "b": 4})
        assert vector.norm is vector.norm

    def test_cached_norm_not_recomputed(self, monkeypatch):
        import repro.simgraph.vectors as vectors_module

        vector = SparseVector({"a": 3, "b": 4})

        def explode(_value):
            raise AssertionError("norm must not be recomputed per access")

        monkeypatch.setattr(vectors_module.math, "sqrt", explode)
        assert vector.norm == 5.0
        assert vector.norm == 5.0

    @given(click_dicts)
    def test_cached_norm_matches_direct_computation(self, components):
        vector = SparseVector(components)
        assert vector.norm == math.sqrt(
            sum(value * value for value in components.values())
        )

    def test_equality_ignores_cached_norm(self):
        assert SparseVector({"a": 1}) == SparseVector({"a": 1})
        assert SparseVector({"a": 1}) != SparseVector({"a": 2})


class TestBuildClickVectors:
    def test_from_store(self):
        store = QueryLogStore()
        store.extend(
            [
                Impression("q1", ("a.com", "b.com")),
                Impression("q1", ("a.com",)),
                Impression("q2", ("b.com",)),
            ]
        )
        vectors = build_click_vectors(store, supported_only=False)
        assert vectors["q1"].components == {"a.com": 2, "b.com": 1}
        assert vectors["q2"].components == {"b.com": 1}

    def test_support_filtering(self):
        store = QueryLogStore(min_support=2)
        store.extend(
            [
                Impression("hot", ("u",)),
                Impression("hot", ("u",)),
                Impression("cold", ("u",)),
            ]
        )
        assert set(build_click_vectors(store)) == {"hot"}

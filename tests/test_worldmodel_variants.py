"""Surface-form variant generation."""

import random

from hypothesis import given, strategies as st

from repro.worldmodel.variants import (
    abbreviation,
    hashtag_variant,
    misspellings,
    surface_variants,
)


class TestHashtagVariant:
    def test_collapses_spaces(self):
        assert hashtag_variant("san francisco") == "#sanfrancisco"

    def test_single_word(self):
        assert hashtag_variant("diabetes") == "#diabetes"

    def test_strips_special_chars(self):
        assert hashtag_variant("s&p 500") == "#sp500"


class TestAbbreviation:
    def test_initialism(self):
        assert abbreviation("san francisco") == "sf"

    def test_three_words(self):
        assert abbreviation("bears injury report") == "bir"

    def test_single_word_prefix(self):
        assert abbreviation("diabetes") == "diab"


class TestMisspellings:
    def test_differs_from_original(self):
        rng = random.Random(0)
        for spelled in misspellings("francisco", rng, count=3):
            assert spelled != "francisco"

    def test_requested_count(self):
        rng = random.Random(0)
        assert len(misspellings("california", rng, count=2)) == 2

    def test_too_short_returns_empty(self):
        assert misspellings("ab", random.Random(0)) == []

    def test_single_edit_distance(self):
        rng = random.Random(1)
        word = "baltimore"
        for spelled in misspellings(word, rng, count=5):
            assert abs(len(spelled) - len(word)) <= 1

    def test_first_letter_intact(self):
        rng = random.Random(2)
        for spelled in misspellings("seattle", rng, count=5):
            assert spelled[0] == "s"

    def test_deterministic(self):
        a = misspellings("portland", random.Random(9), count=3)
        b = misspellings("portland", random.Random(9), count=3)
        assert a == b

    @given(st.integers(0, 5))
    def test_never_more_than_requested(self, count):
        assert len(misspellings("sacramento", random.Random(0), count)) <= count


class TestSurfaceVariants:
    def test_no_duplicates(self):
        variants = surface_variants("san francisco", random.Random(0))
        assert len(variants) == len(set(variants))

    def test_original_never_included(self):
        for seed in range(10):
            assert "oakland" not in surface_variants("oakland", random.Random(seed))

    def test_multiword_gets_abbreviation(self):
        variants = surface_variants(
            "san francisco", random.Random(0), hashtag_rate=0.0, misspelling_rate=0.0
        )
        assert "sf" in variants

    def test_rates_zero_single_word_empty(self):
        variants = surface_variants(
            "diabetes", random.Random(0), hashtag_rate=0.0, misspelling_rate=0.0
        )
        assert variants == []

    def test_hashtag_rate_one_includes_hashtag(self):
        variants = surface_variants(
            "diabetes", random.Random(0), hashtag_rate=1.0, misspelling_rate=0.0
        )
        assert "#diabetes" in variants

"""JoinState: the resumable similarity join must equal the batch join.

The core contract of the incremental refresh path: after any sequence of
append-only deltas, :attr:`JoinState.edges` is **byte-identical** to
:func:`accumulator_similarity_join` run from scratch on the union
vectors — same pairs, bitwise-equal floats — on both the local-repair
and the batch-rejoin paths.
"""

from __future__ import annotations

import random

import pytest

from repro.simgraph.accumulate import JoinState, accumulator_similarity_join
from repro.simgraph.similarity import SimilarityConfig
from repro.simgraph.vectors import SparseVector


def _sparse(raw: dict[str, dict[str, int]]) -> dict[str, SparseVector]:
    return {query: SparseVector(dict(components)) for query, components in raw.items()}


def _random_vectors(rng: random.Random, queries: int, urls: int) -> dict:
    return {
        f"q{i:03d}": {
            f"u{rng.randrange(urls)}": rng.randint(1, 5)
            for _ in range(rng.randint(1, 6))
        }
        for i in range(queries)
    }


def _random_delta(
    rng: random.Random, base: dict, urls: int, tag: str = ""
) -> dict:
    delta = {}
    for query in rng.sample(sorted(base), k=rng.randint(0, len(base) // 2)):
        components = dict(base[query])
        for _ in range(rng.randint(1, 4)):
            url = f"u{rng.randrange(urls)}"
            components[url] = components.get(url, 0) + rng.randint(1, 3)
        delta[query] = components
    for j in range(rng.randint(0, 6)):
        delta[f"new{tag}{j}"] = {
            f"u{rng.randrange(urls)}": rng.randint(1, 5)
            for _ in range(rng.randint(1, 5))
        }
    return delta


class TestJoinStateEquivalence:
    @pytest.mark.parametrize("seed", range(25))
    def test_delta_equals_batch_join_on_the_union(self, seed):
        """Random base + random delta, hub flips forced by tiny
        ``max_posting_list`` values, across both repair paths."""
        rng = random.Random(seed)
        base = _random_vectors(rng, rng.randint(5, 50), rng.randint(3, 25))
        config = SimilarityConfig(
            min_similarity=rng.choice([0.05, 0.2, 0.5]),
            max_posting_list=rng.choice([2, 3, 5, 1000]),
        )
        delta = _random_delta(rng, base, 25)
        union = dict(base)
        union.update(delta)

        state = JoinState.build(_sparse(base), config)
        state.rejoin_threshold = rng.choice([0.0, 0.2, 1.0])
        edge_delta = state.apply_delta(_sparse(delta))
        expected = accumulator_similarity_join(_sparse(union), config).edges
        assert state.edges == expected  # byte-identical, floats included
        # the reported delta reconciles old → new exactly
        for pair in edge_delta.removed:
            assert pair not in state.edges
        for pair, weight in {**edge_delta.added, **edge_delta.changed}.items():
            assert state.edges[pair] == weight

    def test_chained_deltas_stay_exact(self):
        rng = random.Random(99)
        base = _random_vectors(rng, 40, 20)
        config = SimilarityConfig(min_similarity=0.1, max_posting_list=4)
        state = JoinState.build(_sparse(base), config)
        state.rejoin_threshold = 0.5
        union = dict(base)
        for round_ in range(4):
            delta = _random_delta(rng, union, 20, tag=f"r{round_}_")
            union.update(delta)
            state.apply_delta(_sparse(delta))
        expected = accumulator_similarity_join(_sparse(union), config).edges
        assert state.edges == expected

    def test_hub_flip_removes_orphaned_clean_edges(self):
        """A URL crossing ``max_posting_list`` strips candidacy from the
        clean-clean pairs that only shared it."""
        config = SimilarityConfig(min_similarity=0.01, max_posting_list=2)
        base = {
            "qa": {"shared": 3},
            "qb": {"shared": 4},
        }
        state = JoinState.build(_sparse(base), config)
        state.rejoin_threshold = 1.0  # force the local-repair path
        assert ("qa", "qb") in state.edges
        # a third clicker pushes "shared" past max_posting_list=2
        delta = {"qc": {"shared": 1, "other": 2}}
        edge_delta = state.apply_delta(_sparse(delta))
        assert edge_delta.hub_flips == 1
        assert ("qa", "qb") in edge_delta.removed
        expected = accumulator_similarity_join(
            _sparse({**base, **delta}), config
        ).edges
        assert state.edges == expected == {}

    def test_empty_and_noop_deltas(self):
        base = {"qa": {"u1": 2}, "qb": {"u1": 3}}
        state = JoinState.build(_sparse(base), SimilarityConfig())
        before = dict(state.edges)
        delta = state.apply_delta({})
        assert delta.is_empty and delta.touched_queries == frozenset()
        delta = state.apply_delta(_sparse({"qa": {"u1": 2}}))  # unchanged
        assert delta.is_empty
        assert state.edges == before

    def test_append_only_contract_is_enforced(self):
        base = {"qa": {"u1": 3}, "qb": {"u1": 1}}
        state = JoinState.build(_sparse(base), SimilarityConfig())
        with pytest.raises(ValueError, match="append-only"):
            state.apply_delta(_sparse({"qa": {"u1": 2}}))  # clicks shrank
        with pytest.raises(ValueError, match="append-only"):
            state.apply_delta(_sparse({"qa": {"u2": 5}}))  # url vanished

    def test_rejoin_threshold_validation(self):
        with pytest.raises(ValueError):
            JoinState({}, {}, SimilarityConfig(), rejoin_threshold=1.5)

    def test_join_mode_reflects_the_path_taken(self):
        rng = random.Random(3)
        base = _random_vectors(rng, 30, 12)
        config = SimilarityConfig(min_similarity=0.05)
        delta = {"q000": {**base["q000"], "fresh": 2}}

        local = JoinState.build(_sparse(base), config)
        local.rejoin_threshold = 1.0
        assert local.apply_delta(_sparse(delta)).join_mode == "local"

        rejoin = JoinState.build(_sparse(base), config)
        rejoin.rejoin_threshold = 0.0
        assert rejoin.apply_delta(_sparse(delta)).join_mode == "rejoin"

"""System-level artifact behaviour: build/serve separation end to end.

The contract under test is the round-trip exactness acceptance
criterion: for a fixed config/seed, a warm start from an artifact
answers queries *identically* to the in-process build that saved it —
same experts, same scores, same snapshot semantics — plus the staged
checkpoint/resume behaviour of the offline dataflow and the
cross-process persistence of the incremental refresher.
"""

from __future__ import annotations

import json
import shutil
from dataclasses import replace

import pytest

from repro.artifact import (
    ArtifactBuilder,
    ArtifactCorruptError,
    ArtifactError,
    ArtifactIncompleteError,
    ArtifactMismatchError,
    load_artifact,
    read_manifest,
)
from repro.core.config import ESharpConfig
from repro.core.esharp import ESharp
from repro.core.offline import OFFLINE_STAGES, OfflinePipeline
from repro.querylog.generator import QueryLogGenerator
from repro.querylog.store import QueryLogStore
from repro.serving.snapshot import SnapshotHolder, StaleSnapshotError


@pytest.fixture(scope="module")
def artifact_dir(system, tmp_path_factory):
    root = tmp_path_factory.mktemp("artifact") / "generation-1"
    system.save_artifact(root)
    return root


def sample_queries(system) -> list[str]:
    world = system.offline.world
    topics = sorted(world.topics, key=lambda t: -t.popularity)[:5]
    return [t.canonical.text for t in topics] + ["no such phrase"]


def _tiny_config(seed: int = 4242) -> ESharpConfig:
    small = ESharpConfig.small(seed=seed)
    return replace(
        small,
        querylog=replace(small.querylog, impressions=15_000, min_support=10),
        microblog=replace(small.microblog, tweets=4_000),
    )


class TestWarmStartExactness:
    def test_answers_are_identical_to_the_builder(self, system, artifact_dir):
        loaded = ESharp.from_artifact(artifact_dir)
        for query in sample_queries(system):
            assert system.find_experts(query) == loaded.find_experts(query)
            assert system.find_experts_baseline(
                query
            ) == loaded.find_experts_baseline(query)
            assert system.expansion_terms(query) == loaded.expansion_terms(
                query
            )

    def test_snapshot_version_is_stamped_from_the_manifest(
        self, system, artifact_dir
    ):
        manifest = read_manifest(artifact_dir)
        assert manifest.snapshot_version == system.snapshots.version
        loaded = ESharp.from_artifact(artifact_dir)
        assert loaded.snapshots.version == manifest.snapshot_version

    def test_offline_state_is_byte_identical(self, system, artifact_dir):
        loaded = load_artifact(artifact_dir)
        ours = system.offline
        assert list(loaded.offline.store.iter_clicks()) == list(
            ours.store.iter_clicks()
        )
        assert list(loaded.offline.weighted_graph.edges()) == list(
            ours.weighted_graph.edges()
        )
        assert (
            loaded.offline.multigraph.sorted_edges()
            == ours.multigraph.sorted_edges()
        )
        assert (
            loaded.offline.partition.assignment == ours.partition.assignment
        )
        assert loaded.offline.domain_store.domains() == ours.domain_store.domains()
        assert loaded.offline.clustering_history == ours.clustering_history

    def test_build_accounting_survives_the_round_trip(
        self, system, artifact_dir
    ):
        loaded = load_artifact(artifact_dir)
        ours = {r.name: r for r in system.offline.clock.reports}
        theirs = {r.name: r for r in loaded.offline.clock.reports}
        assert set(theirs) == set(ours)
        for name, report in ours.items():
            assert theirs[name].workers == report.workers
            assert theirs[name].bytes_read == report.bytes_read
            assert theirs[name].bytes_written == report.bytes_written

    def test_loaded_system_serves(self, system, artifact_dir):
        loaded = ESharp.from_artifact(artifact_dir)
        query = sample_queries(system)[0]
        with loaded.serve() as service:
            answer = service.query(query)
        assert answer.snapshot_version == system.snapshots.version
        assert list(answer.experts) == system.find_experts(query)

    def test_expected_config_guard(self, artifact_dir):
        with pytest.raises(ArtifactMismatchError):
            ESharp.from_artifact(
                artifact_dir, expected_config=ESharpConfig.small(seed=999)
            )


class TestCorruptionHandling:
    @pytest.fixture
    def copy(self, artifact_dir, tmp_path):
        target = tmp_path / "copy"
        shutil.copytree(artifact_dir, target)
        return target

    def test_truncated_stage_file_is_typed(self, copy):
        # a torn sidecar write is caught structurally (size vs manifest)
        # before any column decodes; the legacy form is checksummed
        manifest = read_manifest(copy)
        files = manifest.stages["domains"].files
        bin_path = copy / files["domain_store.bin"].filename
        bin_path.write_bytes(bin_path.read_bytes()[:-20])
        with pytest.raises(ArtifactCorruptError):
            load_artifact(copy)
        legacy_path = copy / files["domain_store"].filename
        legacy_path.write_bytes(legacy_path.read_bytes()[:-20])
        with pytest.raises(ArtifactCorruptError):
            load_artifact(copy, prefer_sidecar=False)

    def test_bit_flip_is_typed(self, copy):
        # the loader prefers the sidecar form, so flip the meta file it
        # actually reads (a payload flip inside the .bin is detected by
        # verify_payload, which is on-demand by design — see sidecar.py)
        manifest = read_manifest(copy)
        entry = manifest.stages["log"].files["store.meta"]
        path = copy / entry.filename
        payload = bytearray(path.read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        path.write_bytes(bytes(payload))
        with pytest.raises(ArtifactCorruptError):
            load_artifact(copy)

    def test_bit_flip_in_legacy_file_is_typed(self, copy):
        manifest = read_manifest(copy)
        entry = manifest.stages["log"].files["store"]
        path = copy / entry.filename
        payload = bytearray(path.read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        path.write_bytes(bytes(payload))
        with pytest.raises(ArtifactCorruptError):
            load_artifact(copy, prefer_sidecar=False)

    def test_missing_stage_file_is_typed(self, copy):
        manifest = read_manifest(copy)
        files = manifest.stages["corpus"].files
        (copy / files["corpus.bin"].filename).unlink()
        with pytest.raises(ArtifactCorruptError):
            load_artifact(copy)
        (copy / files["corpus"].filename).unlink()
        with pytest.raises(ArtifactCorruptError):
            load_artifact(copy, prefer_sidecar=False)

    def test_incomplete_build_refuses_to_load(self, copy):
        data = json.loads((copy / "manifest.json").read_text())
        data["complete"] = False
        (copy / "manifest.json").write_text(json.dumps(data))
        with pytest.raises(ArtifactIncompleteError):
            load_artifact(copy)

    def test_missing_manifest_is_typed(self, tmp_path):
        with pytest.raises(ArtifactError):
            load_artifact(tmp_path)


class TestCheckpointedBuilds:
    def test_resume_skips_completed_stages(self, tmp_path, monkeypatch):
        config = _tiny_config()
        out = tmp_path / "artifact"
        first = ESharp(config).build(artifact_dir=out)

        # a second build must load every stage instead of recomputing:
        # make recomputation impossible and assert byte-equal results
        def forbidden(self, context, clock):  # pragma: no cover - guard
            raise AssertionError("stage recomputed despite valid checkpoint")

        for stage in ("log", "extract", "cluster", "domains"):
            monkeypatch.setattr(OfflinePipeline, f"_stage_{stage}", forbidden)
        resumed = ESharp(config).build(artifact_dir=out)
        assert (
            resumed.offline.domain_store.domains()
            == first.offline.domain_store.domains()
        )
        assert resumed.find_experts(
            "no such phrase"
        ) == first.find_experts("no such phrase")

    def test_resume_recomputes_from_the_damaged_stage_on(self, tmp_path):
        config = _tiny_config()
        out = tmp_path / "artifact"
        first = ESharp(config).build(artifact_dir=out)
        manifest = read_manifest(out)

        # wreck the clustering checkpoint: resume must keep the extract
        # prefix, recompute cluster + domains, and still match exactly
        entry = manifest.stages["cluster"].files["partition"]
        (out / entry.filename).write_bytes(b"garbage")
        resumed = ESharp(config).build(artifact_dir=out)
        assert (
            resumed.offline.partition.assignment
            == first.offline.partition.assignment
        )
        assert (
            resumed.offline.domain_store.domains()
            == first.offline.domain_store.domains()
        )
        # and the repaired artifact is loadable again
        loaded = ESharp.from_artifact(out)
        assert (
            loaded.offline.partition.assignment
            == first.offline.partition.assignment
        )

    def test_builder_refuses_a_foreign_directory(self, tmp_path):
        config = _tiny_config()
        out = tmp_path / "artifact"
        ArtifactBuilder(out, config)
        with pytest.raises(ArtifactMismatchError):
            ArtifactBuilder(out, _tiny_config(seed=1))

    def test_unfinished_checkpoint_is_not_loadable(self, tmp_path):
        config = _tiny_config()
        out = tmp_path / "artifact"
        builder = ArtifactBuilder(out, config)
        OfflinePipeline(config).run(checkpoint=builder)
        # stages exist, but finalize() never ran (no corpus, no version)
        with pytest.raises(ArtifactIncompleteError):
            load_artifact(out)

    def test_injected_inputs_bypass_the_checkpoint_entirely(self, tmp_path):
        config = _tiny_config()
        out = tmp_path / "artifact"
        builder = ArtifactBuilder(out, config)
        configured = OfflinePipeline(config).run(checkpoint=builder)
        files_before = {
            path.name: path.read_bytes() for path in out.glob("stage-*")
        }

        # a run on an injected store must neither reuse the checkpointed
        # stages (they describe the configured log, not this one) nor
        # overwrite them (stages derived from the injected log next to
        # the configured log file would poison future resumes)
        store = QueryLogStore(min_support=1)
        artifacts = OfflinePipeline(config).run(
            world=None, store=store, checkpoint=builder
        )
        assert artifacts.store is store
        assert artifacts.multigraph.vertex_count == 0
        files_after = {
            path.name: path.read_bytes() for path in out.glob("stage-*")
        }
        assert files_after == files_before

        # and a later configured resume still matches the configured run
        resumed = OfflinePipeline(config).run(
            checkpoint=ArtifactBuilder(out, config)
        )
        assert (
            resumed.domain_store.domains() == configured.domain_store.domains()
        )


class TestRefresherPersistence:
    def _delta_batches(self, system, count=2, size=600):
        """Fresh impression batches the built system has never seen."""
        config = system.config
        generator = QueryLogGenerator(
            system.offline.world,
            replace(config.querylog, seed=config.querylog.seed + 1),
        )
        stream = generator.impressions(count * size)
        batches = []
        rows = list(stream)
        for index in range(count):
            store = QueryLogStore(min_support=config.querylog.min_support)
            store.extend(rows[index * size : (index + 1) * size])
            batches.append(store)
        return batches

    def test_refresh_resumes_across_processes(self, tmp_path):
        """The missing half of PR 4: a delta refresh, a save, a load in a
        'new process', and the next delta — byte-identical to the same
        two deltas applied in one process."""
        config = _tiny_config()
        stayed = ESharp(config).build()
        batch1, batch2 = self._delta_batches(stayed)

        stayed.refresh_domains_delta(batch1.copy())
        moved_dir = tmp_path / "after-delta-1"
        stayed.save_artifact(moved_dir)

        manifest = read_manifest(moved_dir)
        assert "refresher" in manifest.stages  # join state persisted

        moved = ESharp.from_artifact(moved_dir)
        assert moved._delta_refresher is not None  # resumes, not re-seeds
        assert moved.snapshots.version == stayed.snapshots.version

        stats_stayed = stayed.refresh_domains_delta(batch2.copy())
        stats_moved = moved.refresh_domains_delta(batch2.copy())

        assert stats_moved.dirty_queries == stats_stayed.dirty_queries
        assert stats_moved.edges_added == stats_stayed.edges_added
        assert stats_moved.edges_changed == stats_stayed.edges_changed
        assert stats_moved.edges_removed == stats_stayed.edges_removed
        assert stats_moved.cluster_mode == stats_stayed.cluster_mode

        ours, theirs = stayed.offline, moved.offline
        assert list(theirs.weighted_graph.edges()) == list(
            ours.weighted_graph.edges()
        )
        assert theirs.partition.assignment == ours.partition.assignment
        assert theirs.domain_store.domains() == ours.domain_store.domains()
        assert moved.snapshots.version == stayed.snapshots.version

    def test_resaving_without_a_refresher_drops_the_stale_stage(
        self, tmp_path
    ):
        """A reused artifact directory must not resurrect an earlier
        save's refresher stage: seeding a new generation's delta path
        with another generation's join state would silently break the
        delta ≡ full-rebuild equivalence."""
        config = _tiny_config()
        first = ESharp(config).build()
        (batch,) = self._delta_batches(first, count=1)
        first.refresh_domains_delta(batch)
        out = tmp_path / "reused"
        first.save_artifact(out)
        assert "refresher" in read_manifest(out).stages

        second = ESharp(config).build()  # same config, no refresher
        second.save_artifact(out)
        manifest = read_manifest(out)
        assert "refresher" not in manifest.stages
        loaded = ESharp.from_artifact(out)
        assert loaded._delta_refresher is None
        assert loaded.offline.store.impressions == second.offline.store.impressions

    def test_checkpointed_rebuild_drops_a_stale_refresher(self, tmp_path):
        config = _tiny_config()
        first = ESharp(config).build()
        (batch,) = self._delta_batches(first, count=1)
        first.refresh_domains_delta(batch)
        out = tmp_path / "reused"
        first.save_artifact(out)

        rebuilt = ESharp(config).build(artifact_dir=out)
        assert rebuilt.is_built
        manifest = read_manifest(out)
        assert "refresher" not in manifest.stages
        assert ESharp.from_artifact(out)._delta_refresher is None

    def test_artifact_without_refresher_reseeds_from_published(
        self, tmp_path
    ):
        config = _tiny_config()
        system = ESharp(config).build()
        out = tmp_path / "plain"
        system.save_artifact(out)
        manifest = read_manifest(out)
        assert "refresher" not in manifest.stages
        loaded = ESharp.from_artifact(out)
        assert loaded._delta_refresher is None
        # the delta path still works — it seeds from the loaded artifacts
        (batch,) = self._delta_batches(loaded, count=1)
        stats = loaded.refresh_domains_delta(batch)
        assert stats.impressions == batch.impressions


class TestVersionedPublish:
    def test_publish_at_explicit_version(self, system):
        holder = SnapshotHolder()
        snapshot = system.snapshots.get()
        published = holder.publish(
            snapshot.offline, snapshot.pipeline, version=41
        )
        assert published.version == 41
        assert holder.version == 41
        next_snapshot = holder.publish(snapshot.offline, snapshot.pipeline)
        assert next_snapshot.version == 42

    def test_publish_below_current_version_is_stale(self, system):
        holder = SnapshotHolder()
        snapshot = system.snapshots.get()
        holder.publish(snapshot.offline, snapshot.pipeline, version=5)
        with pytest.raises(StaleSnapshotError):
            holder.publish(snapshot.offline, snapshot.pipeline, version=5)
        with pytest.raises(StaleSnapshotError):
            holder.publish(snapshot.offline, snapshot.pipeline, version=3)
        assert holder.version == 5

    def test_stage_table_matches_the_manifest(self, artifact_dir):
        manifest = read_manifest(artifact_dir)
        for spec in OFFLINE_STAGES:
            if not spec.checkpointable:
                continue
            entry = manifest.stages[spec.name]
            # every output is present in legacy form; sidecar-capable
            # outputs additionally carry paired <output>.bin/.meta files
            assert set(spec.outputs) <= set(entry.files)
            extras = set(entry.files) - set(spec.outputs)
            for key in extras:
                base, _, suffix = key.rpartition(".")
                assert suffix in {"bin", "meta"}
                assert base in spec.outputs
            assert {k for k in extras if k.endswith(".bin")} == {
                k[: -len(".meta")] + ".bin"
                for k in extras
                if k.endswith(".meta")
            }

"""Serving-tier building blocks: single-flight, admission, workers."""

import threading
import time

import pytest

from repro.serving.admission import AdmissionController
from repro.serving.errors import (
    ServiceClosedError,
    ServiceOverloadedError,
    ServingError,
)
from repro.serving.singleflight import SingleFlight
from repro.serving.workers import MicroBatchScheduler, WorkerPool


class TestSingleFlight:
    def test_sequential_calls_each_lead(self):
        flight = SingleFlight()
        value, leader = flight.do("k", lambda: 41)
        assert (value, leader) == (41, True)
        value, leader = flight.do("k", lambda: 42)
        assert (value, leader) == (42, True)   # no longer in flight → new leader
        assert flight.leaders == 2
        assert flight.coalesced == 0

    def test_concurrent_duplicates_coalesce(self):
        flight = SingleFlight()
        release = threading.Event()
        calls = []
        results = []

        def compute():
            calls.append(1)
            release.wait(timeout=5)
            return "expensive"

        def leader():
            results.append(flight.do("k", compute))

        def follower():
            results.append(flight.do("k", lambda: "wrong"))

        lead = threading.Thread(target=leader)
        lead.start()
        # wait until the leader has registered its flight
        deadline = time.monotonic() + 5
        while flight.in_flight == 0 and time.monotonic() < deadline:
            time.sleep(0.001)
        followers = [threading.Thread(target=follower) for _ in range(4)]
        for thread in followers:
            thread.start()
        # give followers a moment to attach to the in-flight future
        time.sleep(0.05)
        release.set()
        lead.join(timeout=5)
        for thread in followers:
            thread.join(timeout=5)

        assert len(calls) == 1                      # computed exactly once
        assert len(results) == 5
        assert all(value == "expensive" for value, _ in results)
        assert sum(1 for _, led in results if led) == 1
        assert flight.coalesced == 4
        assert flight.in_flight == 0

    def test_leader_exception_propagates_to_followers(self):
        flight = SingleFlight()

        def boom():
            raise ValueError("scoring failed")

        with pytest.raises(ValueError):
            flight.do("k", boom)
        # flight retired: the key is free again
        value, leader = flight.do("k", lambda: 1)
        assert (value, leader) == (1, True)


class TestAdmissionController:
    def test_validates_arguments(self):
        with pytest.raises(ValueError):
            AdmissionController(max_in_flight=0)
        with pytest.raises(ValueError):
            AdmissionController(max_queue_depth=-1)
        with pytest.raises(ValueError):
            AdmissionController(timeout_seconds=0)

    def test_rejects_when_queue_full(self):
        control = AdmissionController(
            max_in_flight=1, max_queue_depth=0, timeout_seconds=1.0
        )
        control.acquire()
        with pytest.raises(ServiceOverloadedError) as caught:
            control.acquire()
        assert caught.value.reason == "queue full"
        assert isinstance(caught.value, ServingError)
        control.release()
        stats = control.stats()
        assert stats.admitted == 1
        assert stats.rejected_queue_full == 1

    def test_times_out_waiting_for_a_slot(self):
        control = AdmissionController(
            max_in_flight=1, max_queue_depth=4, timeout_seconds=0.05
        )
        control.acquire()
        started = time.monotonic()
        with pytest.raises(ServiceOverloadedError) as caught:
            control.acquire()
        assert caught.value.reason == "admission timeout"
        assert time.monotonic() - started < 2.0
        assert control.stats().rejected_timeout == 1
        control.release()

    def test_release_unblocks_waiter(self):
        control = AdmissionController(
            max_in_flight=1, max_queue_depth=4, timeout_seconds=5.0
        )
        control.acquire()
        admitted = threading.Event()

        def waiter():
            with control.slot():
                admitted.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.02)
        assert not admitted.is_set()
        control.release()
        thread.join(timeout=5)
        assert admitted.is_set()
        assert control.in_flight == 0
        assert control.stats().admitted == 2

    def test_release_without_acquire_is_an_error(self):
        with pytest.raises(RuntimeError):
            AdmissionController().release()

    def test_timed_out_waiter_passes_the_wakeup_on(self):
        """Regression: the lost wakeup on the timeout path.

        ``release()`` notifies exactly one waiter.  If the notified
        waiter's deadline has just expired, it used to consume the
        notification and raise — leaving the freed slot idle while every
        remaining waiter ran out its own deadline.  The timeout path
        must re-notify before raising.

        The interleaving (notify landing on a waiter that is timing
        out) is a microsecond window in the wild, so the test forces it
        deterministically: the victim thread's ``wait`` blocks until it
        is really notified and then *reports* a timeout.
        """

        class LostWakeupCondition:
            """Delegates to the real condition; for the victim thread,
            ``wait`` consumes a genuine notify but claims it timed out."""

            def __init__(self, inner):
                self._inner = inner
                self.victim = None

            def wait(self, timeout=None):
                if threading.get_ident() == self.victim:
                    self._inner.wait()
                    return False
                return self._inner.wait(timeout)

            def __enter__(self):
                return self._inner.__enter__()

            def __exit__(self, *exc):
                return self._inner.__exit__(*exc)

            def __getattr__(self, name):
                return getattr(self._inner, name)

        control = AdmissionController(
            max_in_flight=1, max_queue_depth=4, timeout_seconds=1.5
        )
        proxy = LostWakeupCondition(control._condition)
        control._condition = proxy
        control.acquire()  # occupy the only slot

        outcomes = {}
        victim_waiting = threading.Event()

        def victim():
            proxy.victim = threading.get_ident()
            try:
                control.acquire()
                outcomes["victim"] = "admitted"
                control.release()
            except ServiceOverloadedError:
                outcomes["victim"] = "timeout"

        def bystander():
            try:
                control.acquire()
                outcomes["bystander"] = "admitted"
                control.release()
            except ServiceOverloadedError:
                outcomes["bystander"] = "timeout"

        victim_thread = threading.Thread(target=victim, daemon=True)
        victim_thread.start()
        deadline = time.monotonic() + 5
        while control.waiting < 1 and time.monotonic() < deadline:
            time.sleep(0.001)
        bystander_thread = threading.Thread(target=bystander, daemon=True)
        bystander_thread.start()
        while control.waiting < 2 and time.monotonic() < deadline:
            time.sleep(0.001)
        assert control.waiting == 2

        control.release()  # notifies the victim, which is "timing out"
        victim_thread.join(timeout=5)
        # the victim consumed the notify and raised; the freed slot must
        # still reach the bystander well before ITS 1.5 s deadline
        bystander_thread.join(timeout=1.0)
        assert not bystander_thread.is_alive(), (
            "bystander still waiting: the timed-out waiter swallowed "
            "the only wakeup"
        )
        assert outcomes == {"victim": "timeout", "bystander": "admitted"}

    def test_drain_waits_for_in_flight_and_waiters(self):
        control = AdmissionController(
            max_in_flight=1, max_queue_depth=4, timeout_seconds=5.0
        )
        control.acquire()
        admitted = threading.Event()

        def waiter():
            with control.slot():
                admitted.set()

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        deadline = time.monotonic() + 5
        while control.waiting < 1 and time.monotonic() < deadline:
            time.sleep(0.001)
        assert control.drain(timeout=0.05) > 0  # still busy
        control.release()
        assert control.drain(timeout=5.0) == 0
        thread.join(timeout=5)
        assert admitted.is_set()
        assert control.in_flight == 0 and control.waiting == 0

    def test_closed_controller_rejects_typed(self):
        control = AdmissionController(max_in_flight=1)
        control.close()
        with pytest.raises(ServiceClosedError):
            control.acquire()


class TestWorkerPool:
    def test_map_ordered_preserves_input_order(self):
        pool = WorkerPool(4)
        try:
            assert pool.map_ordered(lambda x: x * x, range(10)) == [
                x * x for x in range(10)
            ]
        finally:
            pool.shutdown()

    def test_map_ordered_raises_first_failure_after_settling(self):
        pool = WorkerPool(2)
        try:
            def maybe(x):
                if x == 3:
                    raise KeyError(x)
                return x

            with pytest.raises(KeyError):
                pool.map_ordered(maybe, range(6))
            stats = pool.stats()
            assert stats.submitted == 6
            assert stats.failed == 1
        finally:
            pool.shutdown()

    def test_submit_after_shutdown_raises_typed_error(self):
        pool = WorkerPool(1)
        pool.shutdown()
        with pytest.raises(ServiceClosedError):
            pool.submit(lambda: 1)

    def test_accounting_settles(self):
        pool = WorkerPool(2)
        try:
            futures = [pool.submit(lambda i=i: i) for i in range(8)]
            assert [f.result() for f in futures] == list(range(8))
            deadline = time.monotonic() + 5
            while pool.stats().outstanding and time.monotonic() < deadline:
                time.sleep(0.005)
            stats = pool.stats()
            assert stats.completed == 8 and stats.failed == 0
        finally:
            pool.shutdown()


class TestMicroBatchScheduler:
    def test_duplicate_keys_in_one_window_execute_once(self):
        pool = WorkerPool(2)
        # a 5 s window parks the dispatcher, so flush() drains deterministically
        scheduler = MicroBatchScheduler(pool, window_seconds=5.0)
        executions = []
        lock = threading.Lock()

        def job(tag):
            def run():
                with lock:
                    executions.append(tag)
                return tag

            return run

        try:
            futures = [scheduler.submit("a", job("a")) for _ in range(3)]
            futures.append(scheduler.submit("b", job("b")))
            scheduler.flush()
            assert [f.result(timeout=5) for f in futures] == ["a", "a", "a", "b"]
            assert sorted(executions) == ["a", "b"]   # one run per distinct key
            assert scheduler.coalesced == 2
            assert scheduler.batches_dispatched == 1
        finally:
            scheduler.close()
            pool.shutdown()

    def test_dispatcher_drains_without_manual_flush(self):
        pool = WorkerPool(2)
        scheduler = MicroBatchScheduler(pool, window_seconds=0.005)
        try:
            future = scheduler.submit("k", lambda: 99)
            assert future.result(timeout=5) == 99
        finally:
            scheduler.close()
            pool.shutdown()

    def test_full_batch_dispatches_before_the_window_closes(self):
        pool = WorkerPool(2)
        # a 60 s window would park the futures for a minute if max_batch
        # didn't force an early dispatch
        scheduler = MicroBatchScheduler(pool, window_seconds=60.0, max_batch=4)
        try:
            futures = [
                scheduler.submit(f"k{i}", lambda i=i: i) for i in range(4)
            ]
            assert [f.result(timeout=5) for f in futures] == [0, 1, 2, 3]
            assert scheduler.batches_dispatched == 1
        finally:
            scheduler.close()
            pool.shutdown()

    def test_job_failure_reaches_every_submitter(self):
        pool = WorkerPool(2)
        scheduler = MicroBatchScheduler(pool, window_seconds=5.0)

        def boom():
            raise RuntimeError("batch job failed")

        try:
            futures = [scheduler.submit("k", boom) for _ in range(2)]
            scheduler.flush()
            for future in futures:
                with pytest.raises(RuntimeError):
                    future.result(timeout=5)
        finally:
            scheduler.close()
            pool.shutdown()

    def test_submit_after_close_raises(self):
        pool = WorkerPool(1)
        scheduler = MicroBatchScheduler(pool, window_seconds=0.005)
        scheduler.close()
        with pytest.raises(ServiceClosedError):
            scheduler.submit("k", lambda: 1)
        pool.shutdown()

"""Command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.relational.io import save_table
from repro.relational.table import Table


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_build_defaults(self):
        args = build_parser().parse_args(["build"])
        assert args.scale == "small"
        assert args.seed == 2016

    def test_query_collects_words(self):
        args = build_parser().parse_args(["query", "dow", "futures"])
        assert args.query == ["dow", "futures"]

    def test_experiment_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.queries == 200
        assert args.concurrency == 8
        assert args.scale == "small"
        assert not args.no_baseline
        assert args.json is None

    def test_serve_overrides(self):
        args = build_parser().parse_args(
            ["serve", "--queries", "50", "--concurrency", "2",
             "--zipf-exponent", "1.5", "--no-baseline"]
        )
        assert args.queries == 50
        assert args.concurrency == 2
        assert args.zipf_exponent == 1.5
        assert args.no_baseline

    def test_serve_rejects_bad_arguments_before_building(self, capsys):
        assert main(["serve", "--queries", "0"]) == 2
        assert main(["serve", "--concurrency", "-1"]) == 2
        assert main(["serve", "--zipf-exponent", "-1"]) == 2
        err = capsys.readouterr().err
        assert "must be >= 1" in err
        assert "non-negative" in err
        assert "building" not in err    # rejected before paying for a build


class TestSqlCommand:
    @pytest.fixture
    def tsv(self, tmp_path):
        table = Table.from_dicts(
            ["k", "v"], [{"k": "a", "v": 1}, {"k": "b", "v": 2}]
        )
        path = tmp_path / "t.tsv"
        save_table(table, path)
        return str(path)

    def test_select(self, tsv, capsys):
        rc = main(["sql", "SELECT k FROM t WHERE v > 1", "--table", f"t={tsv}"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "b" in out

    def test_aggregate(self, tsv, capsys):
        rc = main(
            ["sql", "SELECT sum(v) AS total FROM t", "--table", f"t={tsv}"]
        )
        assert rc == 0
        assert "3" in capsys.readouterr().out

    def test_bad_binding(self, tsv, capsys):
        rc = main(["sql", "SELECT k FROM t", "--table", "no_equals_sign"])
        assert rc == 2


class TestEndToEndCommands:
    """The heavyweight commands, once each, on the smallest scale."""

    def test_build_and_save(self, tmp_path, capsys):
        target = tmp_path / "domains.tsv"
        rc = main(
            ["build", "--scale", "small", "--seed", "1234",
             "--save-domains", str(target)]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "domains:" in out
        assert target.exists()
        # the saved collection is loadable and non-trivial
        from repro.expansion.domainstore import DomainStore

        loaded = DomainStore.load(target)
        assert loaded.domain_count > 10

    def test_query_command(self, capsys, system):
        # reuse the session system fixture just for choosing a real query
        world = system.offline.world
        topic = max(
            (t for t in world.topics if t.microblog_affinity > 0.5),
            key=lambda t: t.popularity,
        )
        rc = main(
            ["query", "--scale", "small", "--seed", "1234",
             *topic.canonical.text.split()]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "expansion" in out


class TestArtifactCommands:
    """build --out / query --from-artifact / --json, on the tiniest config."""

    @pytest.fixture(scope="class")
    def artifact(self, tmp_path_factory, system):
        """One artifact saved from the session system (no extra build)."""
        root = tmp_path_factory.mktemp("cli-artifact") / "art"
        system.save_artifact(root)
        return root

    def test_query_from_artifact_matches_in_process(
        self, artifact, system, tmp_path, capsys
    ):
        world = system.offline.world
        topic = max(
            (t for t in world.topics if t.microblog_affinity > 0.5),
            key=lambda t: t.popularity,
        )
        report = tmp_path / "answer.json"
        rc = main(
            ["query", "--from-artifact", str(artifact),
             "--json", str(report), *topic.canonical.text.split()]
        )
        assert rc == 0
        assert "expansion" in capsys.readouterr().out
        import json

        payload = json.loads(report.read_text())
        assert payload["source"] == {"artifact": str(artifact)}
        assert payload["snapshot_version"] == system.snapshots.version
        query = " ".join(topic.canonical.text.split())
        expected = [
            expert.screen_name for expert in system.find_experts(query)
        ]
        assert [e["screen_name"] for e in payload["experts"]] == expected
        scores = {e.screen_name: e.score for e in system.find_experts(query)}
        for row in payload["experts"]:
            assert row["score"] == scores[row["screen_name"]]

    def test_build_json_report(self, tmp_path, capsys):
        report = tmp_path / "build.json"
        rc = main(
            ["build", "--scale", "small", "--seed", "1234",
             "--json", str(report)]
        )
        assert rc == 0
        import json

        payload = json.loads(report.read_text())
        assert payload["command"] == "build"
        assert payload["graph"]["vertices"] > 0
        assert payload["domains"]["count"] > 10
        assert {s["name"] for s in payload["stages"]} == {
            "Extraction", "Clustering",
        }

    def test_from_artifact_error_is_clean(self, tmp_path, capsys):
        rc = main(
            ["query", "--from-artifact", str(tmp_path / "absent"), "x"]
        )
        assert rc == 2
        assert "artifact error" in capsys.readouterr().err

    def test_serve_accepts_from_artifact_flag(self):
        args = build_parser().parse_args(
            ["serve", "--from-artifact", "somewhere"]
        )
        assert args.from_artifact == "somewhere"

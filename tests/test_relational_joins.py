"""Join strategies (§4.2.3): equivalence and accounting."""

import pytest
from hypothesis import given, strategies as st

from repro.relational.joins import HashJoin, MapSideJoin, ReplicatedJoin
from repro.relational.operators import (
    distinct,
    group_by,
    project,
    rename_columns,
    select_rows,
    union_all,
)
from repro.relational.expressions import ColumnRef, Comparison, Literal
from repro.relational.table import Table


def users_table():
    return Table.from_dicts(
        ["uid", "name"],
        [{"uid": 1, "name": "ann"}, {"uid": 2, "name": "bob"},
         {"uid": 3, "name": "cid"}],
    )


def orders_table():
    return Table.from_dicts(
        ["order_id", "uid"],
        [{"order_id": 10, "uid": 1}, {"order_id": 11, "uid": 1},
         {"order_id": 12, "uid": 3}, {"order_id": 13, "uid": 9}],
    )


class TestHashJoin:
    def test_inner_join_matches(self):
        joined, stats = HashJoin().execute(
            users_table(), orders_table(), "uid", "uid"
        )
        assert stats.rows_out == 3
        names = sorted(row[1] for row in joined.rows)
        assert names == ["ann", "ann", "cid"]

    def test_no_matches(self):
        left = Table.from_dicts(["k"], [{"k": "x"}])
        right = Table.from_dicts(["k"], [{"k": "y"}])
        joined, _ = HashJoin().execute(left, right, "k", "k")
        assert joined.rows == []

    def test_schema_concatenated(self):
        joined, _ = HashJoin().execute(
            users_table().with_alias("u"), orders_table().with_alias("o"),
            "u.uid", "o.uid",
        )
        assert joined.schema.qualified_names() == [
            "u.uid", "u.name", "o.order_id", "o.uid",
        ]


join_tables = st.tuples(
    st.lists(st.tuples(st.integers(0, 5), st.text(max_size=3)), max_size=12),
    st.lists(st.tuples(st.integers(0, 5), st.integers(0, 99)), max_size=12),
)


class TestStrategyEquivalence:
    @given(join_tables)
    def test_all_strategies_agree(self, data):
        left_rows, right_rows = data
        left = Table.from_dicts(
            ["k", "v"], [{"k": k, "v": v} for k, v in left_rows]
        )
        right = Table.from_dicts(
            ["k", "w"], [{"k": k, "w": w} for k, w in right_rows]
        )
        hash_out, _ = HashJoin().execute(left, right, "k", "k")
        repl_out, _ = ReplicatedJoin(partitions=3).execute(left, right, "k", "k")
        map_out, _ = MapSideJoin(partitions=3).execute(left, right, "k", "k")
        assert sorted(hash_out.rows) == sorted(repl_out.rows)
        assert sorted(hash_out.rows) == sorted(map_out.rows)

    def test_replicated_shuffles_small_table_per_partition(self):
        left, right = users_table(), orders_table()
        _, stats = ReplicatedJoin(partitions=4).execute(left, right, "uid", "uid")
        assert stats.shuffled_bytes == (
            left.estimated_bytes() * 4 + right.estimated_bytes()
        )

    def test_map_side_shuffles_each_row_once(self):
        left, right = users_table(), orders_table()
        _, stats = MapSideJoin(partitions=4).execute(left, right, "uid", "uid")
        assert stats.shuffled_bytes == (
            left.estimated_bytes() + right.estimated_bytes()
        )

    def test_partition_validation(self):
        with pytest.raises(ValueError):
            ReplicatedJoin(partitions=0)
        with pytest.raises(ValueError):
            MapSideJoin(partitions=-1)


class TestOperators:
    def test_select_rows(self):
        table = users_table()
        predicate = Comparison(">", ColumnRef("uid"), Literal(1))
        assert len(select_rows(table, predicate)) == 2

    def test_project_expressions(self):
        table = users_table()
        out = project(table, [(ColumnRef("name"), "who")])
        assert out.schema.names() == ["who"]
        assert out.rows[0] == ("ann",)

    def test_rename_columns(self):
        out = rename_columns(users_table(), {"uid": "user_id"})
        assert out.schema.names() == ["user_id", "name"]

    def test_group_by_with_count_and_sum(self):
        out = group_by(
            orders_table(),
            keys=[ColumnRef("uid")],
            key_names=["uid"],
            aggregations=[
                ("count", [Literal(1)], "n"),
                ("min", [ColumnRef("order_id")], "first_order"),
            ],
        )
        as_dict = {row[0]: (row[1], row[2]) for row in out.rows}
        assert as_dict[1] == (2, 10)
        assert as_dict[9] == (1, 13)

    def test_group_by_key_alignment_checked(self):
        with pytest.raises(ValueError):
            group_by(users_table(), [ColumnRef("uid")], [], [])

    def test_distinct(self):
        table = Table.from_dicts(["a"], [{"a": 1}, {"a": 1}, {"a": 2}])
        assert distinct(table).rows == [(1,), (2,)]

    def test_union_all_positional(self):
        first = Table.from_dicts(["a"], [{"a": 1}])
        second = Table.from_dicts(["b"], [{"b": 2}])
        combined = union_all(first, second)
        assert combined.rows == [(1,), (2,)]
        assert combined.schema.names() == ["a"]

    def test_union_all_width_mismatch(self):
        first = Table.from_dicts(["a"], [])
        second = Table.from_dicts(["a", "b"], [])
        with pytest.raises(ValueError):
            union_all(first, second)

"""Schema, Table, expressions, aggregates."""

import pytest
from hypothesis import given, strategies as st

from repro.relational.aggregates import (
    ArgmaxAggregate,
    AvgAggregate,
    CountAggregate,
    MaxAggregate,
    MinAggregate,
    SumAggregate,
    is_aggregate,
    make_aggregate,
)
from repro.relational.expressions import (
    BinaryOp,
    ColumnRef,
    Comparison,
    ExpressionError,
    FunctionCall,
    Literal,
    LogicalOp,
)
from repro.relational.schema import Column, Schema, SchemaError
from repro.relational.table import Table


class TestColumn:
    def test_qualified_rendering(self):
        assert Column("query", "c1").qualified == "c1.query"

    def test_matches_bare_and_qualified(self):
        column = Column("query", "c1")
        assert column.matches("query")
        assert column.matches("c1.query")
        assert not column.matches("c2.query")

    def test_dot_in_name_rejected(self):
        with pytest.raises(ValueError):
            Column("a.b")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Column("")


class TestSchema:
    def test_of_parses_qualifiers(self):
        schema = Schema.of("a", "t.b")
        assert schema.columns[1].qualifier == "t"

    def test_index_of_bare(self):
        schema = Schema.of("a", "b")
        assert schema.index_of("b") == 1

    def test_ambiguous_reference(self):
        schema = Schema.of("c1.query", "c2.query")
        with pytest.raises(SchemaError):
            schema.index_of("query")
        assert schema.index_of("c2.query") == 1

    def test_unknown_reference(self):
        with pytest.raises(SchemaError):
            Schema.of("a").index_of("z")

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            Schema.of("a", "a")

    def test_requalify(self):
        schema = Schema.of("x.a", "b").requalify("t")
        assert schema.qualified_names() == ["t.a", "t.b"]

    def test_concat(self):
        combined = Schema.of("a").concat(Schema.of("b"))
        assert combined.names() == ["a", "b"]


class TestTable:
    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            Table(Schema.of("a", "b"), [(1,)])

    def test_from_dicts_order(self):
        table = Table.from_dicts(["b", "a"], [{"a": 1, "b": 2}])
        assert table.rows == [(2, 1)]

    def test_column_values(self):
        table = Table.from_dicts(["a"], [{"a": 1}, {"a": 3}])
        assert table.column_values("a") == [1, 3]

    def test_with_alias(self):
        table = Table.from_dicts(["a"], [{"a": 1}]).with_alias("t")
        assert table.schema.qualified_names() == ["t.a"]
        assert table.rows == [(1,)]

    def test_sorted_by(self):
        table = Table.from_dicts(["a"], [{"a": 3}, {"a": 1}, {"a": 2}])
        assert table.sorted_by("a").rows == [(1,), (2,), (3,)]

    def test_estimated_bytes(self):
        table = Table.from_dicts(["s", "n"], [{"s": "abc", "n": 5}])
        assert table.estimated_bytes() == 4 + 8

    def test_equality_ignores_row_order(self):
        a = Table.from_dicts(["x"], [{"x": 1}, {"x": 2}])
        b = Table.from_dicts(["x"], [{"x": 2}, {"x": 1}])
        assert a == b

    def test_pretty_contains_header(self):
        table = Table.from_dicts(["col"], [{"col": "v"}])
        assert "col" in table.pretty()


class TestExpressions:
    schema = Schema.of("a", "b")

    def test_literal(self):
        assert Literal(5).evaluate((1, 2), self.schema) == 5

    def test_column_ref(self):
        assert ColumnRef("b").evaluate((1, 2), self.schema) == 2

    def test_comparison_operators(self):
        row = (3, 7)
        assert Comparison("<", ColumnRef("a"), ColumnRef("b")).evaluate(
            row, self.schema
        )
        assert Comparison("<>", ColumnRef("a"), ColumnRef("b")).evaluate(
            row, self.schema
        )
        assert not Comparison("=", ColumnRef("a"), ColumnRef("b")).evaluate(
            row, self.schema
        )

    def test_unknown_comparison_rejected(self):
        with pytest.raises(ExpressionError):
            Comparison("~", Literal(1), Literal(2))

    def test_arithmetic(self):
        expr = BinaryOp("*", ColumnRef("a"), Literal(4))
        assert expr.evaluate((3, 0), self.schema) == 12

    def test_division_by_zero(self):
        expr = BinaryOp("/", Literal(1), Literal(0))
        with pytest.raises(ExpressionError):
            expr.evaluate((), Schema.of())

    def test_logical_and_or_not(self):
        t, f = Literal(True), Literal(False)
        assert LogicalOp("and", (t, t)).evaluate((), Schema.of())
        assert LogicalOp("or", (f, t)).evaluate((), Schema.of())
        assert LogicalOp("not", (f,)).evaluate((), Schema.of())

    def test_not_arity(self):
        with pytest.raises(ExpressionError):
            LogicalOp("not", (Literal(1), Literal(2)))

    def test_function_call(self):
        expr = FunctionCall("double", (ColumnRef("a"),))
        assert expr.evaluate((5, 0), self.schema, {"double": lambda x: 2 * x}) == 10

    def test_unknown_function(self):
        expr = FunctionCall("mystery", ())
        with pytest.raises(ExpressionError):
            expr.evaluate((), Schema.of(), {})

    def test_referenced_columns(self):
        expr = LogicalOp(
            "and",
            (
                Comparison(">", ColumnRef("a"), Literal(0)),
                FunctionCall("f", (ColumnRef("b"),)),
            ),
        )
        assert expr.referenced_columns() == {"a", "b"}


class TestAggregates:
    def test_count_skips_nulls(self):
        agg = CountAggregate()
        for value in (1, None, 2):
            agg.step(value)
        assert agg.final() == 2

    def test_sum(self):
        agg = SumAggregate()
        for value in (1, 2, 3):
            agg.step(value)
        assert agg.final() == 6

    def test_sum_empty_is_null(self):
        assert SumAggregate().final() is None

    def test_min_max(self):
        low, high = MinAggregate(), MaxAggregate()
        for value in (5, 1, 9):
            low.step(value)
            high.step(value)
        assert low.final() == 1
        assert high.final() == 9

    def test_avg(self):
        agg = AvgAggregate()
        for value in (2.0, 4.0):
            agg.step(value)
        assert agg.final() == 3.0

    def test_argmax_returns_key_of_max(self):
        agg = ArgmaxAggregate()
        agg.step(1.0, "low")
        agg.step(9.0, "high")
        agg.step(5.0, "mid")
        assert agg.final() == "high"

    def test_argmax_tie_breaks_on_smaller_key(self):
        agg = ArgmaxAggregate()
        agg.step(5.0, "zebra")
        agg.step(5.0, "aardvark")
        assert agg.final() == "aardvark"

    @given(st.lists(st.tuples(st.floats(-1e3, 1e3), st.text(max_size=4)), min_size=1))
    def test_argmax_matches_python_max(self, pairs):
        agg = ArgmaxAggregate()
        for value, key in pairs:
            agg.step(value, key)
        best = min(
            (key for value, key in pairs
             if value == max(v for v, _ in pairs))
        )
        assert agg.final() == best

    def test_registry_lookup(self):
        assert isinstance(make_aggregate("ARGMAX"), ArgmaxAggregate)
        assert is_aggregate("Count")
        assert not is_aggregate("modulgain")

    def test_unknown_aggregate(self):
        with pytest.raises(KeyError):
            make_aggregate("median")

"""Partition container."""

import pytest

from repro.community.partition import Partition, singleton_partition
from repro.simgraph.graph import MultiGraph


class TestPartition:
    @pytest.fixture
    def partition(self):
        return Partition({"a": "c1", "b": "c1", "c": "c2"})

    def test_community_of(self, partition):
        assert partition.community_of("a") == "c1"

    def test_unknown_vertex(self, partition):
        with pytest.raises(KeyError):
            partition.community_of("zz")

    def test_members(self, partition):
        assert partition.members("c1") == {"a", "b"}

    def test_unknown_community(self, partition):
        with pytest.raises(KeyError):
            partition.members("c9")

    def test_sizes_sorted(self, partition):
        assert partition.sizes() == [1, 2]

    def test_community_count(self, partition):
        assert partition.community_count() == 2
        assert len(partition) == 2

    def test_relabel_merges(self, partition):
        merged = partition.relabel({"c2": "c1"})
        assert merged.community_count() == 1
        assert merged.members("c1") == {"a", "b", "c"}

    def test_relabel_unmapped_keeps_name(self, partition):
        relabelled = partition.relabel({})
        assert relabelled.assignment == partition.assignment

    def test_label_swap_same_structure(self, partition):
        swapped = partition.relabel({"c1": "c2", "c2": "c1"})
        assert partition.same_structure(swapped)
        assert partition.assignment != swapped.assignment

    def test_different_structure_detected(self, partition):
        moved = Partition({"a": "c1", "b": "c2", "c": "c2"})
        assert not partition.same_structure(moved)

    def test_validate_covers(self, partition):
        graph = MultiGraph()
        graph.add_edge("a", "b")
        graph.add_vertex("c")
        partition.validate_covers(graph)  # exact cover → fine
        graph.add_vertex("d")
        with pytest.raises(ValueError):
            partition.validate_covers(graph)

    def test_singleton_partition(self):
        partition = singleton_partition(["x", "y"])
        assert partition.community_of("x") == "x"
        assert partition.community_count() == 2

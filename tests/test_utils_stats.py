"""Statistics helpers behind the §3 normalisation."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.utils.stats import (
    log_transform,
    mean,
    percentile,
    stddev,
    summarize,
    zscores,
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestMean:
    def test_basic(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])


class TestStddev:
    def test_constant_is_zero(self):
        assert stddev([5.0, 5.0, 5.0]) == 0.0

    def test_known_value(self):
        assert stddev([2.0, 4.0]) == 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            stddev([])


class TestZscores:
    def test_symmetric_pair(self):
        assert zscores([1.0, 3.0]) == [-1.0, 1.0]

    def test_constant_pool_all_zero(self):
        assert zscores([7.0, 7.0, 7.0]) == [0.0, 0.0, 0.0]

    def test_empty(self):
        assert zscores([]) == []

    @given(st.lists(finite_floats, min_size=2, max_size=50))
    def test_zero_mean(self, values):
        zs = zscores(values)
        assert abs(sum(zs) / len(zs)) < 1e-6

    @given(st.lists(finite_floats, min_size=2, max_size=50))
    def test_unit_variance_unless_constant(self, values):
        zs = zscores(values)
        if any(z != 0 for z in zs):
            variance = sum(z * z for z in zs) / len(zs)
            assert abs(variance - 1.0) < 1e-6

    @given(st.lists(finite_floats, min_size=2, max_size=30))
    def test_order_preserved(self, values):
        zs = zscores(values)
        for i in range(len(values) - 1):
            if values[i] < values[i + 1]:
                assert zs[i] <= zs[i + 1]


class TestLogTransform:
    def test_unit_value(self):
        assert log_transform([1.0]) == [0.0]

    def test_e_value(self):
        assert abs(log_transform([math.e])[0] - 1.0) < 1e-12

    def test_zero_floored_by_epsilon(self):
        result = log_transform([0.0], epsilon=1e-3)
        assert abs(result[0] - math.log(1e-3)) < 1e-12

    def test_epsilon_must_be_positive(self):
        with pytest.raises(ValueError):
            log_transform([1.0], epsilon=0.0)

    @given(st.lists(st.floats(0.0, 1e6, allow_nan=False), max_size=30))
    def test_monotone(self, values):
        logged = log_transform(values)
        pairs = sorted(zip(values, logged))
        for (v1, l1), (v2, l2) in zip(pairs, pairs[1:]):
            if v1 < v2:
                assert l1 <= l2


class TestSummarize:
    def test_fields(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary.count == 3
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert summary.mean == 2.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_str_renders(self):
        assert "n=2" in str(summarize([1.0, 2.0]))


class TestPercentile:
    def test_median_interpolated(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.5

    def test_extremes(self):
        values = [3.0, 1.0, 2.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 3.0

    def test_single_value(self):
        assert percentile([42.0], 0.3) == 42.0

    def test_fraction_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

"""Query sets, reporting, and experiment drivers (shape assertions).

These are the §6 reproduction checks: each driver must exhibit the
paper's qualitative result on the small test-scale system.
"""

import pytest

from repro.eval.experiments import (
    ExperimentContext,
    run_example_tables,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_table8,
    run_table9,
)
from repro.eval.querysets import QuerySetConfig, build_query_sets, total_queries
from repro.eval.reporting import render_histogram, render_series, render_table


@pytest.fixture(scope="module")
def ctx(system) -> ExperimentContext:
    from repro.crowd.study import CrowdStudy, StudyConfig

    offline = system.offline
    sets = build_query_sets(
        offline.world,
        offline.store,
        QuerySetConfig(per_domain=12, top_set=30, min_frequency=5),
    )
    study = CrowdStudy(offline.world, system.platform, StudyConfig(seed=9))
    return ExperimentContext(system=system, query_sets=sets, study=study)


class TestQuerySets:
    def test_six_sets(self, ctx):
        names = [s.name for s in ctx.query_sets]
        assert names == [
            "sports", "electronics", "finance", "health", "wikipedia",
            "top 250",
        ]

    def test_domain_sets_respect_domain(self, ctx, system):
        world = system.offline.world
        for query_set in ctx.query_sets[:4]:
            for query in query_set.queries:
                topic = world.primary_topic_for(query)
                assert topic is not None and topic.domain == query_set.name

    def test_total_queries(self, ctx):
        assert total_queries(ctx.query_sets) == sum(
            len(s) for s in ctx.query_sets
        )

    def test_queries_meet_frequency_floor(self, ctx, system):
        store = system.offline.store
        for query_set in ctx.query_sets:
            for query in query_set.queries:
                assert store.query_count(query) >= 5

    def test_config_validation(self):
        with pytest.raises(ValueError):
            QuerySetConfig(per_domain=0)


class TestReporting:
    def test_render_table(self):
        out = render_table(["a", "bb"], [["1", "2"], ["333", "4"]], "T")
        assert "T" in out and "333" in out
        assert out.splitlines()[1].startswith("a")

    def test_render_series(self):
        out = render_series("x", {"s": [1.0, 2.0]}, [0, 1])
        assert "1.00" in out and "2.00" in out

    def test_render_histogram(self):
        out = render_histogram(["a", "b"], [1.0, 2.0])
        assert out.count("#") > 0

    def test_render_histogram_empty_values(self):
        assert render_histogram([], []) == ""


class TestFig5:
    def test_counts_non_increasing(self, ctx):
        result = run_fig5(ctx)
        counts = result.community_counts
        assert all(a >= b for a, b in zip(counts, counts[1:]))

    def test_starts_at_vertex_count(self, ctx, system):
        result = run_fig5(ctx)
        assert result.community_counts[0] == (
            system.offline.multigraph.vertex_count
        )

    def test_converges_quickly(self, ctx):
        # the paper: "converges after 6 iterations"; allow headroom
        assert run_fig5(ctx).converged_after <= 12


class TestFig6:
    def test_fractions_sum_to_one(self, ctx):
        result = run_fig6(ctx)
        assert abs(sum(b.fraction for b in result.buckets) - 1.0) < 1e-9

    def test_small_communities_dominate(self, ctx):
        buckets = {b.label: b.fraction for b in run_fig6(ctx).buckets}
        # paper: modal bucket 2–10, very few giants
        assert buckets["2 to 10"] >= buckets["More than 50"]
        assert buckets["More than 50"] < 0.1

    def test_orphans_exist(self, ctx):
        buckets = {b.label: b.fraction for b in run_fig6(ctx).buckets}
        assert buckets["1"] > 0.05


class TestFig7:
    def test_seed_community_contains_seed(self, ctx):
        result = run_fig7(ctx)
        assert result.seed_term in result.community

    def test_neighbours_ranked(self, ctx):
        result = run_fig7(ctx)
        weights = [n.link_weight for n in result.neighbours]
        assert weights == sorted(weights, reverse=True)

    def test_explicit_seed(self, ctx, system):
        term = next(iter(system.offline.partition.assignment))
        result = run_fig7(ctx, seed_term=term)
        assert result.seed_term == term


class TestTable8:
    def test_esharp_never_worse(self, ctx):
        for row in run_table8(ctx):
            assert row.esharp >= row.baseline

    def test_improvement_somewhere(self, ctx):
        rows = run_table8(ctx)
        assert any(row.esharp > row.baseline for row in rows)

    def test_coverage_in_unit_interval(self, ctx):
        for row in run_table8(ctx):
            assert 0.0 <= row.baseline <= 1.0
            assert 0.0 <= row.esharp <= 1.0

    def test_improvement_formula(self, ctx):
        from repro.eval.experiments import CoverageRow

        assert abs(CoverageRow("x", 0.8, 1.0).improvement - 0.25) < 1e-12
        assert CoverageRow("x", 0.0, 0.5).improvement == float("inf")
        assert CoverageRow("x", 0.0, 0.0).improvement == 0.0


class TestFig8:
    def test_all_queries_have_zero_or_more(self, ctx):
        for result in run_fig8(ctx):
            assert result.baseline_pct[0] == 100.0
            assert result.esharp_pct[0] == 100.0

    def test_curves_non_increasing(self, ctx):
        for result in run_fig8(ctx):
            for curve in (result.baseline_pct, result.esharp_pct):
                assert all(a >= b for a, b in zip(curve, curve[1:]))

    def test_esharp_dominates(self, ctx):
        # the paper: expansion improves the expert count per query
        dominated = 0
        total = 0
        for result in run_fig8(ctx):
            for b, e in zip(result.baseline_pct, result.esharp_pct):
                total += 1
                if e >= b:
                    dominated += 1
        assert dominated / total > 0.9


class TestFig9:
    def test_monotone_in_threshold(self, ctx):
        result = run_fig9(ctx)
        for curve in (result.baseline_avg, result.esharp_avg):
            assert all(a >= b for a, b in zip(curve, curve[1:]))

    def test_esharp_above_baseline(self, ctx):
        result = run_fig9(ctx)
        assert all(
            e >= b for e, b in zip(result.esharp_avg, result.baseline_avg)
        )

    def test_unknown_dataset(self, ctx):
        with pytest.raises(KeyError):
            run_fig9(ctx, dataset="nope")


class TestFig10:
    def test_impurity_bounded(self, ctx):
        for result in run_fig10(ctx, datasets=("sports",)):
            for point in result.baseline + result.esharp:
                assert 0.0 <= point.impurity <= 1.0

    def test_esharp_reaches_higher_recall(self, ctx):
        for result in run_fig10(ctx, datasets=("sports", "top 250")):
            max_b = max(p.avg_experts for p in result.baseline)
            max_e = max(p.avg_experts for p in result.esharp)
            assert max_e >= max_b


class TestTable9:
    def test_rows_present(self, ctx):
        result = run_table9(ctx, sample_queries=5)
        names = [row[0] for row in result.rows]
        assert names == ["Extraction", "Clustering", "Expansion", "Detection"]

    def test_online_stages_fast(self, ctx):
        result = run_table9(ctx, sample_queries=5)
        # paper: expansion < 100 ms, detection < 1 s — generous bounds here
        assert result.expansion_seconds < 0.1
        assert result.detection_seconds < 1.0


class TestExampleTables:
    def test_default_queries_one_per_set(self, ctx):
        tables = run_example_tables(ctx)
        assert len(tables) == len([s for s in ctx.query_sets if s.queries])

    def test_top_k_respected(self, ctx):
        for table in run_example_tables(ctx, top_k=2):
            assert len(table.baseline) <= 2
            assert len(table.esharp) <= 2

    def test_explicit_queries(self, ctx):
        query = ctx.query_sets[0].queries[0]
        tables = run_example_tables(ctx, queries=[query])
        assert tables[0].query == query

"""Graph containers and discretisation (footnote 1)."""

import pytest
from hypothesis import given, strategies as st

from repro.simgraph.graph import MultiGraph, WeightedGraph, discretize

edge_lists = st.lists(
    st.tuples(
        st.sampled_from("abcdef"),
        st.sampled_from("abcdef"),
        st.integers(1, 9),
    ).filter(lambda e: e[0] != e[1]),
    max_size=20,
)


class TestWeightedGraph:
    def test_add_and_query(self):
        graph = WeightedGraph()
        graph.add_edge("a", "b", 0.5)
        assert graph.weight("a", "b") == 0.5
        assert graph.weight("b", "a") == 0.5
        assert graph.weight("a", "c") == 0.0

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            WeightedGraph().add_edge("a", "a", 1.0)

    def test_non_positive_weight_rejected(self):
        with pytest.raises(ValueError):
            WeightedGraph().add_edge("a", "b", 0.0)

    def test_edges_enumerated_once(self):
        graph = WeightedGraph.from_edges({("a", "b"): 1.0, ("b", "c"): 2.0})
        assert list(graph.edges()) == [("a", "b", 1.0), ("b", "c", 2.0)]

    def test_isolated_vertex(self):
        graph = WeightedGraph()
        graph.add_vertex("lonely")
        assert graph.has_vertex("lonely")
        assert graph.neighbours("lonely") == {}

    def test_unknown_vertex_neighbours(self):
        with pytest.raises(KeyError):
            WeightedGraph().neighbours("ghost")

    def test_counts(self):
        graph = WeightedGraph.from_edges({("a", "b"): 1.0, ("a", "c"): 1.0})
        assert graph.vertex_count == 3
        assert graph.edge_count == 2

    def test_neighbour_view_is_zero_copy_and_read_only(self):
        graph = WeightedGraph.from_edges({("a", "b"): 1.0})
        view = graph.neighbour_view("a")
        assert dict(view) == {"b": 1.0}
        with pytest.raises(TypeError):
            view["c"] = 2.0
        # the view tracks later mutations instead of copying
        graph.add_edge("a", "c", 3.0)
        assert dict(view) == {"b": 1.0, "c": 3.0}

    def test_neighbour_view_unknown_vertex(self):
        with pytest.raises(KeyError):
            WeightedGraph().neighbour_view("ghost")

    def test_sorted_vertices_cache_tracks_mutation(self):
        graph = WeightedGraph.from_edges({("b", "c"): 1.0})
        assert graph.sorted_vertices() == ("b", "c")
        graph.add_edge("a", "b", 1.0)
        assert graph.sorted_vertices() == ("a", "b", "c")
        graph.add_vertex("d")
        assert graph.vertices() == ["a", "b", "c", "d"]


class TestMultiGraph:
    def test_degree_counts_multiplicity(self):
        graph = MultiGraph()
        graph.add_edge("a", "b", 3)
        assert graph.degree("a") == 3
        assert graph.degree("b") == 3
        assert graph.total_edges == 3

    def test_parallel_edges_accumulate(self):
        graph = MultiGraph()
        graph.add_edge("a", "b", 2)
        graph.add_edge("b", "a", 1)
        assert graph.multiplicity("a", "b") == 3
        assert graph.distinct_edge_count == 1

    def test_total_degree_is_twice_edges(self):
        graph = MultiGraph.from_edges([("a", "b", 2), ("b", "c", 5)])
        assert graph.total_degree == 2 * graph.total_edges

    @given(edge_lists)
    def test_handshake_lemma(self, edges):
        graph = MultiGraph()
        for u, v, m in edges:
            graph.add_edge(u, v, m)
        degree_sum = sum(graph.degree(v) for v in graph.vertices())
        assert degree_sum == 2 * graph.total_edges

    def test_neighbours_after_mutation(self):
        graph = MultiGraph()
        graph.add_edge("a", "b", 1)
        assert list(graph.neighbours("a")) == [("b", 1)]
        graph.add_edge("a", "c", 2)  # must invalidate the cache
        assert list(graph.neighbours("a")) == [("b", 1), ("c", 2)]

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            MultiGraph().add_edge("x", "x")

    def test_zero_multiplicity_rejected(self):
        with pytest.raises(ValueError):
            MultiGraph().add_edge("a", "b", 0)

    def test_unknown_degree(self):
        with pytest.raises(KeyError):
            MultiGraph().degree("ghost")

    def test_isolated_vertex_degree_zero(self):
        graph = MultiGraph()
        graph.add_vertex("solo")
        assert graph.degree("solo") == 0
        assert "solo" in graph.vertices()

    def test_storage_bytes_positive(self):
        graph = MultiGraph.from_edges([("aa", "bb", 1)])
        assert graph.storage_bytes() == 2 + 2 + 8

    def test_sorted_edges_cached_and_invalidated(self):
        graph = MultiGraph.from_edges([("b", "c", 2), ("a", "b", 1)])
        first = graph.sorted_edges()
        assert first == (("a", "b", 1), ("b", "c", 2))
        assert graph.sorted_edges() is first  # cached between mutations
        graph.add_edge("a", "c", 4)
        assert graph.sorted_edges() == (
            ("a", "b", 1),
            ("a", "c", 4),
            ("b", "c", 2),
        )


class TestInternedGraph:
    def test_ids_follow_sorted_label_order(self):
        graph = MultiGraph.from_edges([("q2", "q10", 3), ("q10", "q1", 1)])
        interned = graph.interned()
        assert interned.labels == ("q1", "q10", "q2")
        assert interned.index == {"q1": 0, "q10": 1, "q2": 2}
        # adjacency and degrees line up with the id assignment
        assert interned.adjacency[1] == {0: 1, 2: 3}
        assert interned.degrees == (1, 4, 3)
        assert interned.total_edges == 4

    def test_includes_isolated_vertices(self):
        graph = MultiGraph.from_edges([("a", "b", 1)])
        graph.add_vertex("solo")
        interned = graph.interned()
        assert interned.labels == ("a", "b", "solo")
        assert interned.degrees == (1, 1, 0)
        assert interned.adjacency[2] == {}

    def test_cached_until_mutation(self):
        graph = MultiGraph.from_edges([("a", "b", 1)])
        first = graph.interned()
        assert graph.interned() is first
        graph.add_edge("b", "c", 2)
        rebuilt = graph.interned()
        assert rebuilt is not first
        assert rebuilt.labels == ("a", "b", "c")

    def test_adjacency_is_read_only(self):
        graph = MultiGraph.from_edges([("a", "b", 2)])
        interned = graph.interned()
        with pytest.raises(TypeError):
            interned.adjacency[0][1] = 99


class TestDiscretize:
    def test_rounding(self):
        graph = discretize({("a", "b"): 0.5}, scale=10.0)
        assert graph.multiplicity("a", "b") == 5

    def test_floor_of_one(self):
        graph = discretize({("a", "b"): 0.001}, scale=10.0)
        assert graph.multiplicity("a", "b") == 1

    def test_isolated_vertices_added(self):
        graph = discretize({("a", "b"): 1.0}, vertices=["c"])
        assert "c" in graph.vertices()
        assert graph.degree("c") == 0

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            discretize({}, scale=0.0)

    @given(
        st.dictionaries(
            st.tuples(st.sampled_from("abc"), st.sampled_from("xyz")),
            st.floats(0.01, 1.0),
            max_size=9,
        )
    )
    def test_total_edges_close_to_scaled_weight(self, edges):
        graph = discretize(edges, scale=100.0)
        expected = sum(max(1, round(w * 100)) for w in edges.values())
        assert graph.total_edges == expected

"""Text composition for both platforms."""

import random

from repro.microblog import textgen as mb
from repro.qa import textgen as qa
from repro.utils.text import tokenize


class TestMicroblogTextgen:
    def test_tweet_contains_keyword_tokens(self):
        rng = random.Random(0)
        for _ in range(20):
            text = mb.compose_tweet("dow futures", rng)
            tokens = set(tokenize(text))
            assert {"dow", "futures"} <= tokens

    def test_tweet_fits_140(self):
        rng = random.Random(0)
        long_keyword = "a very long keyword phrase " * 4
        assert len(mb.compose_tweet(long_keyword.strip(), rng)) <= 140

    def test_mention_names_the_user(self):
        rng = random.Random(0)
        text = mb.compose_mention("49ers", "expert_handle", rng)
        assert "@expert_handle" in text

    def test_retweet_format(self):
        text = mb.compose_retweet("someone", "original words here")
        assert text.startswith("rt @someone: ")
        assert "original words" in text

    def test_spam_mentions_keyword(self):
        rng = random.Random(0)
        assert "49ers" in mb.compose_spam("49ers", rng)

    def test_chatter_has_no_placeholder(self):
        rng = random.Random(0)
        assert "{" not in mb.compose_chatter(rng)

    def test_screen_names_unique(self):
        rng = random.Random(0)
        taken: set[str] = set()
        names = [mb.make_screen_name("falcons", rng, taken) for _ in range(30)]
        assert len(names) == len(set(names))

    def test_description_mentions_topic(self):
        rng = random.Random(0)
        description = mb.make_description("focused_expert", "austin falcons", rng)
        assert "austin falcons" in description


class TestQATextgen:
    def test_question_contains_keyword(self):
        rng = random.Random(0)
        for _ in range(10):
            text = qa.compose_question("dow futures", rng)
            assert {"dow", "futures"} <= set(tokenize(text))

    def test_a2a_mentions_writer(self):
        rng = random.Random(0)
        text = qa.compose_a2a("diabetes", "the_writer", rng)
        assert "@the_writer" in text
        assert "diabetes" in text

    def test_answer_is_long_form(self):
        rng = random.Random(0)
        text = qa.compose_answer("diabetes", rng)
        assert len(text) > 80
        assert "diabetes" in text

    def test_share_credits_author(self):
        text = qa.compose_share("author_handle", "great answer text")
        assert "@author_handle" in text
        assert "great answer text" in text

    def test_share_respects_limit(self):
        text = qa.compose_share("a", "x" * 1000, max_chars=500)
        assert len(text) <= 500

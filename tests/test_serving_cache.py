"""The bounded LRU+TTL result cache (serving tier)."""

import threading

import pytest

from repro.serving.cache import CacheInfo, LRUCache


class TestLRUEviction:
    def test_stores_and_returns(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert cache.get("missing", default=7) == 7

    def test_evicts_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1          # refresh a's recency
        cache.put("c", 3)                    # evicts b, not a
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.cache_info().evictions == 1

    def test_put_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)                   # re-put refreshes a
        cache.put("c", 3)                    # evicts b
        assert cache.get("a") == 10
        assert cache.get("b") is None

    def test_capacity_zero_disables_caching(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0
        info = cache.cache_info()
        assert info.hits == 0 and info.misses == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)

    def test_contains_does_not_touch_counters(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        assert "a" in cache and "b" not in cache
        info = cache.cache_info()
        assert info.hits == 0 and info.misses == 0

    def test_clear(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.clear() == 2
        assert cache.get("a") is None


class TestTTL:
    def _make(self, ttl):
        clock = {"now": 0.0}
        cache = LRUCache(8, ttl_seconds=ttl, clock=lambda: clock["now"])
        return cache, clock

    def test_entry_expires(self):
        cache, clock = self._make(ttl=10.0)
        cache.put("a", 1)
        clock["now"] = 9.9
        assert cache.get("a") == 1
        clock["now"] = 10.0
        assert cache.get("a") is None
        info = cache.cache_info()
        assert info.expirations == 1
        assert info.size == 0

    def test_purge_expired(self):
        cache, clock = self._make(ttl=5.0)
        cache.put("a", 1)
        cache.put("b", 2)
        clock["now"] = 6.0
        cache.put("c", 3)
        assert cache.purge_expired() == 2
        assert len(cache) == 1
        assert cache.get("c") == 3

    def test_invalid_ttl_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(4, ttl_seconds=0.0)


class TestCounters:
    def test_hit_rate_closes(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        for _ in range(3):
            cache.get("a")
        cache.get("b")
        info = cache.cache_info()
        assert isinstance(info, CacheInfo)
        assert info.hits == 3 and info.misses == 1
        assert info.lookups == 4
        assert info.hit_rate == pytest.approx(0.75)

    def test_hit_rate_without_traffic_is_zero(self):
        assert LRUCache(4).cache_info().hit_rate == 0.0

    def test_concurrent_access_is_consistent(self):
        cache = LRUCache(64)
        for i in range(64):
            cache.put(i, i)
        workers = 8
        lookups_each = 500

        def hammer(seed: int) -> None:
            for i in range(lookups_each):
                key = (seed * 31 + i) % 96      # ~1/3 misses
                value = cache.get(key)
                assert value is None or value == key
                cache.put(key % 64, key % 64)

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        info = cache.cache_info()
        assert info.hits + info.misses == workers * lookups_each
        assert len(cache) <= 64

"""Table TSV persistence."""

import pytest

from repro.relational.io import TableIOError, load_table, save_table
from repro.relational.table import Table


class TestRoundTrip:
    def test_mixed_types(self, tmp_path):
        table = Table.from_dicts(
            ["name", "count", "ratio", "flag"],
            [
                {"name": "a", "count": 1, "ratio": 0.5, "flag": True},
                {"name": "b", "count": 2, "ratio": 1.5, "flag": False},
            ],
        )
        path = tmp_path / "t.tsv"
        written = save_table(table, path)
        assert written == path.stat().st_size
        loaded = load_table(path)
        assert loaded.rows == table.rows
        assert loaded.schema.names() == table.schema.names()

    def test_qualified_columns_roundtrip(self, tmp_path):
        from repro.relational.schema import Schema

        table = Table(Schema.of("g.query1", "weight"), [("a", 3)])
        path = tmp_path / "q.tsv"
        save_table(table, path)
        loaded = load_table(path)
        assert loaded.schema.qualified_names() == ["g.query1", "weight"]
        assert loaded.rows == [("a", 3)]

    def test_nulls_roundtrip(self, tmp_path):
        table = Table.from_dicts(
            ["k", "v"], [{"k": "x", "v": None}, {"k": "y", "v": 2}]
        )
        path = tmp_path / "n.tsv"
        save_table(table, path)
        assert load_table(path).rows == [("x", None), ("y", 2)]

    def test_empty_table(self, tmp_path):
        table = Table.from_dicts(["a"], [])
        path = tmp_path / "e.tsv"
        save_table(table, path)
        loaded = load_table(path)
        assert loaded.rows == []
        assert loaded.schema.names() == ["a"]


class TestErrors:
    def test_tab_in_value_rejected(self, tmp_path):
        table = Table.from_dicts(["s"], [{"s": "has\ttab"}])
        with pytest.raises(TableIOError):
            save_table(table, tmp_path / "bad.tsv")

    def test_unserialisable_type_rejected(self, tmp_path):
        table = Table.from_dicts(["s"], [{"s": object()}])
        with pytest.raises(TableIOError):
            save_table(table, tmp_path / "bad.tsv")

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.tsv"
        path.write_text("")
        with pytest.raises(TableIOError):
            load_table(path)

    def test_malformed_header_rejected(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("name:mystery\nx\n")
        with pytest.raises(TableIOError):
            load_table(path)

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "ragged.tsv"
        path.write_text("a:str\tb:int\nonly_one_cell\n")
        with pytest.raises(TableIOError):
            load_table(path)


class TestDomainStorePersistence:
    def test_roundtrip(self, tmp_path):
        from repro.expansion.domainstore import DomainStore, ExpertiseDomain

        store = DomainStore(
            [
                ExpertiseDomain("d1", ("49ers", "niners")),
                ExpertiseDomain("d2", ("nasdaq",)),
            ]
        )
        path = tmp_path / "domains.tsv"
        store.save(path)
        loaded = DomainStore.load(path)
        assert loaded.domain_count == 2
        assert set(loaded.expand("49ers")) == {"49ers", "niners"}
        # legacy ids are canonicalised on load: each domain is renamed to
        # its smallest member keyword, the id every pipeline-built store
        # uses (DomainStore.rebuilt reuse depends on it)
        assert loaded.lookup("nasdaq").domain_id == "nasdaq"
        assert loaded.lookup("niners").domain_id == "49ers"

"""The fleet tier: sharding determinism, exact scatter-gather merge,
hedging/failover, CAS snapshot promotion, and both replica transports.

The load-bearing property is **byte-identity**: a router over any number
of replicas, under any sharding policy, must produce exactly the answer
one :class:`ExpertService` produces — same experts, same order, same
scores, same snapshot version.  That property is checked three ways
here: unit tests on the merge's tie-breaking, a hypothesis sweep over
real candidate queries against a live 3-replica fleet, and a subprocess
round-trip proving the wire format preserves it across processes.
"""

from __future__ import annotations

import threading
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.esharp import ESharp
from repro.detector.features import FeatureVector
from repro.detector.normalize import NormalizedFeatures
from repro.detector.ranking import RankedExpert, RankingConfig
from repro.expansion.domainstore import DomainStore
from repro.fleet import (
    ConsistentHashRing,
    DomainPartitionSharding,
    FleetConfig,
    FleetRouter,
    FleetVersionSkewError,
    InProcessReplica,
    NoHealthyReplicaError,
    PromotionError,
    ReplicaTracker,
    SubprocessReplica,
    TokenHashSharding,
    merge_partials,
    stable_hash,
)
from repro.fleet import wire
from repro.serving.admission import AdmissionController
from repro.serving.service import (
    ExpertService,
    PartialPool,
    ReplicaHealthReport,
    ServedAnswer,
    ServiceConfig,
)
from repro.serving.snapshot import SnapshotHolder, StaleSnapshotError
from repro.utils.text import phrase_key


# -- fixtures -----------------------------------------------------------------


@pytest.fixture(scope="module")
def artifact_dir(system, tmp_path_factory):
    path = tmp_path_factory.mktemp("fleet") / "artifact-v1"
    system.save_artifact(path)
    return path


@pytest.fixture(scope="module")
def artifact_v2_dir(artifact_dir, tmp_path_factory):
    """A second generation derived from the first (version 2)."""
    path = tmp_path_factory.mktemp("fleet") / "artifact-v2"
    upgraded = ESharp.from_artifact(artifact_dir)
    upgraded.refresh_domains()
    upgraded.save_artifact(path)
    return path


@pytest.fixture(scope="module")
def single_service(system):
    with ExpertService(system) as service:
        yield service


@pytest.fixture(scope="module")
def hash_fleet(system, artifact_dir):
    """Three replicas sharing the session system, term-hash sharded —
    the policy under which multi-term expansions genuinely scatter."""
    replicas = [
        InProcessReplica(f"replica-{i}", system) for i in range(3)
    ]
    router = FleetRouter.from_artifact(
        artifact_dir, replicas, sharding="hash"
    )
    yield router
    router.close()


@pytest.fixture(scope="module")
def queries(system):
    from repro.serving.loadgen import candidate_queries

    return candidate_queries(system, 32)


def answer_key(answer):
    """Everything observable about an answer except timings."""
    return (
        answer.experts,
        tuple(answer.terms),
        answer.matched_domain,
        answer.snapshot_version,
    )


# -- sharding -----------------------------------------------------------------


class TestSharding:
    def test_stable_hash_is_processwide_constant(self):
        # SHA-1 prefix, so this value holds across runs, platforms and
        # PYTHONHASHSEED — the property every routing decision rests on
        assert stable_hash("expertise") == 0xB389D89CE852030F
        assert stable_hash("expertise") != stable_hash("Expertise")

    def test_ring_is_deterministic_and_in_range(self):
        a = ConsistentHashRing(4)
        b = ConsistentHashRing(4)
        keys = [f"key-{i}" for i in range(200)]
        owners = [a.owner(k) for k in keys]
        assert owners == [b.owner(k) for k in keys]
        assert set(owners) <= set(range(4))
        assert len(set(owners)) == 4  # 200 keys spread over all shards

    def test_ring_resize_moves_few_keys(self):
        before = ConsistentHashRing(4)
        after = ConsistentHashRing(5)
        keys = [f"key-{i}" for i in range(500)]
        moved = sum(before.owner(k) != after.owner(k) for k in keys)
        # consistent hashing: adding a fifth shard should move roughly
        # 1/5 of the keys, not rehash the world
        assert moved < 250

    def test_plan_partitions_terms_and_keeps_index_order(self):
        policy = TokenHashSharding(3)
        terms = [f"term number {i}" for i in range(20)]
        legs = policy.plan(terms)
        seen = sorted(pair for leg in legs.values() for pair in leg)
        assert seen == list(enumerate(terms))
        for shard, leg in legs.items():
            assert [i for i, _ in leg] == sorted(i for i, _ in leg)
            for _, term in leg:
                assert policy.shard_of_term(term) == shard

    def test_domain_partition_collapses_matched_expansions(self, system):
        store = system.snapshots.get().domain_store
        policy = DomainPartitionSharding.from_store(3, store)
        for domain in store.domains():
            owners = {policy.shard_of_term(k) for k in domain.keywords}
            assert owners == {policy.shard_of_domain(domain.domain_id)}
            # the full-community expansion of any member keyword is the
            # domain's keyword list -> exactly one leg -> one replica
            assert len(policy.plan(list(domain.keywords))) == 1

    def test_hash_sharding_scatters_multi_term_expansions(self):
        policy = TokenHashSharding(4)
        legs = policy.plan([f"distinct term {i}" for i in range(32)])
        assert len(legs) > 1


# -- the merge ----------------------------------------------------------------


def make_expert(user_id: int, score: float) -> RankedExpert:
    return RankedExpert(
        user_id=user_id,
        screen_name=f"user{user_id}",
        description="",
        verified=False,
        followers=100 + user_id,
        score=score,
        features=FeatureVector(user_id, 1.0, 1.0, 1.0),
        zscores=NormalizedFeatures(user_id, score, score, score),
    )


def pool(*entries, version=1, query="q"):
    return PartialPool(
        query=query, snapshot_version=version, entries=tuple(entries)
    )


class TestMergePartials:
    def test_best_score_per_user_wins(self):
        experts, version = merge_partials(
            [
                pool((0, make_expert(1, 2.0)), (1, make_expert(2, 5.0))),
                pool((2, make_expert(1, 4.0))),
            ],
            threshold=1.0,
            max_results=15,
        )
        assert version == 1
        assert [(e.user_id, e.score) for e in experts] == [(2, 5.0), (1, 4.0)]

    def test_score_tie_breaks_to_lowest_term_index(self):
        early, late = make_expert(1, 3.0), make_expert(1, 3.0)
        late = late._replace(description="from the later term")
        experts, _ = merge_partials(
            [pool((4, late)), pool((2, early))],
            threshold=1.0,
            max_results=15,
        )
        # same score from term index 2 and 4: index 2's entry must win,
        # exactly like the single-replica union's first-term-wins rule
        assert len(experts) == 1
        assert experts[0].description == ""

    def test_ranking_sorts_by_score_then_user_id(self):
        experts, _ = merge_partials(
            [
                pool(
                    (0, make_expert(7, 2.0)),
                    (0, make_expert(3, 2.0)),
                    (0, make_expert(5, 9.0)),
                )
            ],
            threshold=1.0,
            max_results=15,
        )
        assert [e.user_id for e in experts] == [5, 3, 7]

    def test_threshold_is_inclusive_and_cap_applies(self):
        entries = [(0, make_expert(i, float(i))) for i in range(1, 7)]
        experts, _ = merge_partials(
            [pool(*entries)], threshold=3.0, max_results=2
        )
        assert [e.score for e in experts] == [6.0, 5.0]
        experts, _ = merge_partials(
            [pool(*entries)], threshold=3.0, max_results=15
        )
        assert min(e.score for e in experts) == 3.0  # >= not >

    def test_mixed_versions_refuse_to_merge(self):
        with pytest.raises(FleetVersionSkewError):
            merge_partials(
                [
                    pool((0, make_expert(1, 2.0)), version=1),
                    pool((1, make_expert(2, 2.0)), version=2),
                ],
                threshold=1.0,
                max_results=15,
            )


# -- scatter-gather == single replica (the headline property) -----------------


class TestScatterGatherEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_router_answers_byte_identical(
        self, data, hash_fleet, single_service, queries
    ):
        query = data.draw(st.sampled_from(queries))
        assert answer_key(hash_fleet.query(query)) == answer_key(
            single_service.query(query)
        )

    def test_unmatched_query_routes_single_shard(
        self, hash_fleet, single_service
    ):
        query = "no such expertise phrase"
        answer = hash_fleet.query(query)
        assert answer.mode == "single-shard"
        assert len(answer.shards) == 1
        assert answer_key(answer) == answer_key(single_service.query(query))

    def test_fleet_actually_scattered(self, hash_fleet, queries):
        for query in queries:
            hash_fleet.query(query)
        stats = hash_fleet.stats()
        assert stats.scattered > 0
        assert stats.scatter_legs > stats.scattered
        assert stats.requests == stats.single_shard + stats.scattered

    def test_min_zscore_passthrough(self, hash_fleet, single_service, queries):
        query = queries[0]
        assert answer_key(hash_fleet.query(query, min_zscore=0.1)) == (
            answer_key(single_service.query(query, min_zscore=0.1))
        )


# -- hedging and failover -----------------------------------------------------


class ScriptedReplica:
    """A replica whose latency/failure behaviour the test scripts."""

    kind = "scripted"

    def __init__(self, name, *, delay=0.0, fail=False, version=1):
        self.name = name
        self.delay = delay
        self.fail = fail
        self.version = version
        self.calls = 0

    def _answer(self, query):
        self.calls += 1
        if self.delay:
            time.sleep(self.delay)
        if self.fail:
            raise RuntimeError(f"{self.name} scripted failure")
        return ServedAnswer(
            query=query,
            experts=(),
            terms=(query,),
            matched_domain=None,
            snapshot_version=self.version,
            cache_hit=False,
            coalesced=False,
            expansion_seconds=0.0,
            detection_seconds=0.0,
            total_seconds=self.delay,
        )

    def query(self, query, min_zscore=None):
        return self._answer(query)

    def score_partial(self, query, indexed_terms):
        answer = self._answer(query)
        return PartialPool(
            query=query, snapshot_version=answer.snapshot_version, entries=()
        )

    def health(self):
        return ReplicaHealthReport(
            snapshot_version=self.version,
            cache_hit_ratio=0.0,
            requests=self.calls,
            partial_requests=0,
            in_flight=0,
            waiting=0,
        )

    def close(self):
        pass


def scripted_router(replicas, **config_kwargs):
    return FleetRouter(
        replicas,
        domain_store=DomainStore([]),
        ranking=RankingConfig(),
        sharding=TokenHashSharding(len(replicas)),
        config=FleetConfig(**config_kwargs),
    )


def shard_of(router, query):
    return router.sharding.shard_of_term(query)


class TestHedgingAndFailover:
    def test_slow_primary_hedges_to_backup(self):
        fast = ScriptedReplica("fast")
        slow = ScriptedReplica("slow", delay=0.4)
        replicas = [slow, fast]
        router = scripted_router(
            replicas, hedging=True, hedge_default_deadline_seconds=0.02
        )
        with router:
            # a query owned by the slow shard, so the backup must win
            query = next(
                q
                for q in (f"query {i}" for i in range(64))
                if shard_of(router, q) == 0
            )
            started = time.perf_counter()
            answer = router.query(query)
            elapsed = time.perf_counter() - started
            stats = router.stats()
        assert answer.hedges == 1
        assert fast.calls == 1
        assert elapsed < 0.4  # did not wait out the slow primary
        assert stats.hedges_fired == 1
        assert stats.hedge_wins == 1

    def test_failing_primary_fails_over(self):
        broken = ScriptedReplica("broken", fail=True)
        healthy = ScriptedReplica("healthy")
        router = scripted_router([broken, healthy], hedging=False)
        with router:
            query = next(
                q
                for q in (f"query {i}" for i in range(64))
                if shard_of(router, q) == 0
            )
            answer = router.query(query)
            stats = router.stats()
        assert answer.snapshot_version == 1
        assert healthy.calls == 1
        assert stats.failovers == 1

    def test_all_replicas_failing_raises_first_error(self):
        router = scripted_router(
            [ScriptedReplica(f"r{i}", fail=True) for i in range(2)],
            hedging=False,
        )
        with router:
            with pytest.raises(RuntimeError, match="scripted failure"):
                router.query("anything")

    def test_tracker_deadline_and_ranking(self):
        tracker = ReplicaTracker(
            ["a", "b"],
            min_samples=4,
            default_deadline_seconds=0.5,
            min_deadline_seconds=0.001,
        )
        assert tracker.hedge_deadline("a") == 0.5  # too few samples yet
        for _ in range(8):
            tracker.record_success("a", 0.010)
            tracker.record_success("b", 0.100)
        assert tracker.hedge_deadline("a") == pytest.approx(0.010)
        assert tracker.ranked() == ["a", "b"]  # faster median first
        tracker.record_failure("a")
        assert tracker.ranked() == ["b", "a"]  # failure streak dominates
        assert tracker.ranked(exclude={"b"}) == ["a"]
        tracker.record_success("a", 0.010)  # success resets the streak
        assert tracker.ranked() == ["a", "b"]


# -- CAS snapshot publication -------------------------------------------------


class TestSnapshotCAS:
    def test_racing_cas_publishers_have_one_winner(self):
        holder = SnapshotHolder()
        holder.publish(object(), object())  # v1
        barrier = threading.Barrier(8)
        outcomes = []
        lock = threading.Lock()

        def contender():
            barrier.wait()
            try:
                snapshot = holder.publish(
                    object(), object(), expected_version=1
                )
                with lock:
                    outcomes.append(("won", snapshot.version))
            except StaleSnapshotError:
                with lock:
                    outcomes.append(("lost", None))

        threads = [threading.Thread(target=contender) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wins = [o for o in outcomes if o[0] == "won"]
        assert len(wins) == 1  # exactly one CAS succeeds
        assert wins[0][1] == 2
        assert holder.version == 2

    def test_retrying_publishers_keep_versions_monotonic(self):
        holder = SnapshotHolder()
        holder.publish(object(), object())
        published = []
        lock = threading.Lock()

        def writer():
            while True:
                expected = holder.version
                try:
                    snapshot = holder.publish(
                        object(), object(), expected_version=expected
                    )
                except StaleSnapshotError:
                    continue
                with lock:
                    published.append(snapshot.version)
                return

        threads = [threading.Thread(target=writer) for _ in range(12)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(published) == list(range(2, 14))
        assert holder.version == 13

    def test_explicit_version_must_advance(self):
        holder = SnapshotHolder()
        holder.publish(object(), object(), version=5)
        with pytest.raises(StaleSnapshotError):
            holder.publish(object(), object(), version=5)
        with pytest.raises(StaleSnapshotError):
            holder.publish(object(), object(), version=3)
        assert holder.publish(object(), object(), version=9).version == 9


# -- two-phase fleet promotion ------------------------------------------------


def fresh_fleet(artifact_dir, count=2):
    replicas = [
        InProcessReplica(f"replica-{i}", ESharp.from_artifact(artifact_dir))
        for i in range(count)
    ]
    return FleetRouter.from_artifact(artifact_dir, replicas)


class TestFleetPromotion:
    def test_promote_rolls_every_replica(self, artifact_dir, artifact_v2_dir):
        with fresh_fleet(artifact_dir) as router:
            before = {
                name: h.snapshot_version for name, h in router.health().items()
            }
            assert set(before.values()) == {1}
            target = router.promote(artifact_v2_dir)
            assert target == 2
            after = {
                name: h.snapshot_version for name, h in router.health().items()
            }
            assert set(after.values()) == {2}
            # answers are stamped with the new generation immediately
            assert router.query("anything").snapshot_version == 2

    def test_preload_failure_flips_nothing(self, artifact_dir, tmp_path):
        with fresh_fleet(artifact_dir) as router:
            with pytest.raises(PromotionError) as excinfo:
                router.promote(tmp_path / "no-such-artifact")
            assert "nothing was flipped" in str(excinfo.value)
            assert all(
                "preload failed" in outcome
                for outcome in excinfo.value.outcomes.values()
            )
            versions = {
                h.snapshot_version for h in router.health().values()
            }
            assert versions == {1}  # phase one failed -> no replica moved

    def test_flip_loses_cas_when_version_moved(
        self, artifact_dir, artifact_v2_dir
    ):
        replica = InProcessReplica(
            "replica-0", ESharp.from_artifact(artifact_dir)
        )
        try:
            replica.preload(artifact_v2_dir)
            with pytest.raises(StaleSnapshotError):
                replica.promote(expected_version=999)
            assert replica.snapshot_version == 1  # CAS loss flips nothing
            assert replica.promote(expected_version=1) == 2
        finally:
            replica.close()

    def test_promote_before_preload_is_typed(self, artifact_dir):
        replica = InProcessReplica(
            "replica-0", ESharp.from_artifact(artifact_dir)
        )
        try:
            with pytest.raises(PromotionError, match="before preload"):
                replica.promote()
        finally:
            replica.close()


# -- wire format and the subprocess transport ---------------------------------


class TestWire:
    def test_expert_and_answer_round_trip_exactly(self, single_service, queries):
        answer = single_service.query(queries[0])
        decoded = wire.answer_from_wire(
            wire.parse_message(
                __import__("json").dumps(wire.answer_to_wire(answer))
            )
        )
        assert decoded == answer

    def test_partial_round_trip(self):
        original = pool((3, make_expert(9, 1.25)), version=4)
        assert wire.partial_from_wire(wire.partial_to_wire(original)) == original

    def test_typed_errors_survive_the_wire(self):
        from repro.serving.errors import (
            ServiceClosedError,
            ServiceOverloadedError,
        )

        closed = wire.error_from_wire(
            wire.error_to_wire(ServiceClosedError("closed"))
        )
        assert isinstance(closed, ServiceClosedError)
        overloaded = wire.error_from_wire(
            wire.error_to_wire(
                ServiceOverloadedError("busy", in_flight=3, waiting=2)
            )
        )
        assert isinstance(overloaded, ServiceOverloadedError)
        unknown = wire.error_from_wire({"type": "WeirdError", "message": "?"})
        from repro.fleet import RemoteReplicaError

        assert isinstance(unknown, RemoteReplicaError)
        assert unknown.remote_type == "WeirdError"

    def test_undecodable_line_is_protocol_error(self):
        from repro.fleet import WorkerProtocolError

        with pytest.raises(WorkerProtocolError):
            wire.parse_message("not json at all")
        with pytest.raises(WorkerProtocolError):
            wire.parse_message("[1, 2, 3]")


class TestSubprocessReplica:
    @pytest.fixture(scope="class")
    def worker(self, artifact_dir):
        replica = SubprocessReplica(
            "worker-0", artifact_dir, detection_workers=1
        )
        yield replica
        replica.close()

    def test_handshake_reports_artifact_version(self, worker):
        assert worker.snapshot_version == 1
        assert worker.ping()

    def test_answers_match_in_process_exactly(
        self, worker, single_service, queries
    ):
        for query in queries[:6]:
            assert answer_key(worker.query(query)) == answer_key(
                single_service.query(query)
            )

    def test_partial_matches_in_process_exactly(
        self, worker, single_service, queries
    ):
        indexed = [(0, queries[0]), (3, queries[1])]
        theirs = worker.score_partial(queries[0], indexed)
        ours = single_service.score_partial(queries[0], indexed)
        assert theirs == ours

    def test_health_round_trip(self, worker):
        report = worker.health()
        assert report.snapshot_version == 1
        assert report.requests >= 1


# -- serving satellites riding along ------------------------------------------


class TestServingSatellites:
    def test_drain_counts_stragglers_exactly(self):
        control = AdmissionController(max_in_flight=4)
        control.acquire()
        control.acquire()
        assert control.drain(timeout=0.05) == 2
        control.release()
        assert control.drain(timeout=0.05) == 1
        control.release()
        assert control.drain(timeout=1.0) == 0

    def test_drain_includes_queued_waiters(self):
        control = AdmissionController(max_in_flight=1, timeout_seconds=5.0)
        control.acquire()
        entered = threading.Event()

        def waiter():
            entered.set()
            control.acquire()
            control.release()

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        entered.wait(timeout=1.0)
        deadline = time.monotonic() + 1.0
        while control.waiting == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert control.drain(timeout=0.05) == 2  # one running, one queued
        control.release()
        thread.join(timeout=2.0)
        assert control.drain(timeout=1.0) == 0

    def test_service_stats_expose_hit_ratio_and_version(
        self, system, queries
    ):
        with ExpertService(system, ServiceConfig(detection_workers=1)) as svc:
            svc.query(queries[0])
            svc.query(queries[0])
            stats = svc.stats()
            report = svc.health()
        assert stats.cache_hit_ratio == pytest.approx(0.5)
        assert report.snapshot_version == system.snapshots.version
        assert report.cache_hit_ratio == pytest.approx(0.5)


# -- the CLI front door -------------------------------------------------------


class TestFleetCli:
    def test_fleet_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["fleet", "--from-artifact", "somewhere"]
        )
        assert args.replicas == 2
        assert args.sharding == "domain"
        assert not args.process

    def test_fleet_rejects_bad_arguments(self, capsys):
        from repro.cli import main

        rc = main(
            ["fleet", "--from-artifact", "somewhere", "--replicas", "0"]
        )
        assert rc == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_fleet_command_replays_with_injected_replicas(
        self, artifact_dir, system, tmp_path, capsys
    ):
        from repro.cli import build_parser, run_fleet_command

        json_path = tmp_path / "fleet.json"
        args = build_parser().parse_args(
            [
                "fleet",
                "--from-artifact",
                str(artifact_dir),
                "--queries",
                "24",
                "--concurrency",
                "2",
                "--unique",
                "8",
                "--json",
                str(json_path),
            ]
        )
        replicas = [
            InProcessReplica("replica-0", system),
            InProcessReplica("replica-1", system),
        ]
        try:
            rc = run_fleet_command(args, replicas=replicas)
        finally:
            for replica in replicas:
                replica.close()
        assert rc == 0
        out = capsys.readouterr().out
        assert "fleet replay" in out
        assert "routing:" in out
        payload = __import__("json").loads(json_path.read_text())
        assert payload["command"] == "fleet"
        assert payload["report"]["errors"] == 0
        assert payload["fleet"]["replicas"] == 2

"""The paper's parallel algorithm (§4.2.2)."""

import pytest

from repro.community.modularity import total_modularity
from repro.community.parallel import (
    ParallelCommunityDetector,
    ParallelConfig,
    _collapse_components,
    _resolve_mutual,
)
from repro.community.partition import Partition, singleton_partition


class TestParallelConfig:
    def test_defaults(self):
        assert ParallelConfig().merge_mode == "pointer"

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            ParallelConfig(merge_mode="telepathy")

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            ParallelConfig(max_iterations=0)


class TestChooseTargets:
    def test_triangles_choose_within_triangle(self, triangle_graph):
        detector = ParallelCommunityDetector(triangle_graph)
        targets = detector.choose_targets(
            singleton_partition(triangle_graph.vertices())
        )
        # every a-vertex must target another a-vertex: intra-triangle gain
        # (5 − 10·10/62 ≈ 3.4) dwarfs the bridge gain (1 − 11·11/62 < 0)
        for source, target in targets.items():
            assert source[0] == target[0]

    def test_no_positive_gain_no_targets(self):
        # a single edge: merging the endpoints has ΔMod = 1 − 1·1/2 = 0.5 > 0
        # but two *disconnected* edges with balanced degrees may still merge;
        # use a star where leaves have no edge between them
        from repro.simgraph.graph import MultiGraph

        graph = MultiGraph()
        graph.add_edge("hub", "leaf1", 1)
        graph.add_edge("hub", "leaf2", 1)
        detector = ParallelCommunityDetector(graph)
        targets = detector.choose_targets(singleton_partition(graph.vertices()))
        # leaves are not connected to each other, so their only candidate is
        # the hub; the hub picks exactly one best leaf
        assert set(targets) <= {"hub", "leaf1", "leaf2"}
        assert targets["leaf1"] == "hub"
        assert targets["leaf2"] == "hub"


class TestMergeModes:
    def test_pointer_swap_is_structurally_stable(self):
        partition = Partition({"x": "A", "y": "B"})
        swapped = partition.relabel({"A": "B", "B": "A"})
        assert partition.same_structure(swapped)

    def test_resolve_mutual_merges_pairs(self):
        targets = {"A": "B", "B": "A", "C": "A"}
        mapping = _resolve_mutual(targets)
        assert mapping["A"] == "A"
        assert mapping["B"] == "A"
        assert mapping["C"] == "A"

    def test_collapse_components_flattens_chains(self):
        mapping = _collapse_components({"C": "B", "B": "A"})
        assert mapping == {"A": "A", "B": "A", "C": "A"}

    def test_collapse_components_cycles(self):
        mapping = _collapse_components({"A": "B", "B": "C", "C": "A"})
        assert set(mapping.values()) == {"A"}


class TestRunOnTriangles:
    @pytest.mark.parametrize("mode", ["matching", "components"])
    def test_merging_modes_find_the_two_triangles(self, triangle_graph, mode):
        detector = ParallelCommunityDetector(
            triangle_graph, ParallelConfig(merge_mode=mode)
        )
        partition = detector.run()
        assert partition.community_count() == 2
        assert partition.members(partition.community_of("a1")) == {
            "a1", "a2", "a3",
        }

    def test_pointer_mode_never_mixes_triangles(self, triangle_graph):
        """Pointer semantics may stall on mutual-best pairs (that is its
        regularising property), but must never place vertices of the two
        triangles in one community."""
        detector = ParallelCommunityDetector(
            triangle_graph, ParallelConfig(merge_mode="pointer")
        )
        partition = detector.run()
        for community in partition.communities():
            prefixes = {member[0] for member in partition.members(community)}
            assert len(prefixes) == 1

    def test_history_starts_with_singletons(self, triangle_graph):
        detector = ParallelCommunityDetector(triangle_graph)
        detector.run()
        assert detector.history[0].communities == 6
        assert detector.history[0].iteration == 0

    def test_community_counts_non_increasing(self, multigraph):
        detector = ParallelCommunityDetector(
            multigraph, ParallelConfig(merge_mode="pointer")
        )
        detector.run()
        counts = detector.community_counts()
        assert all(a >= b for a, b in zip(counts, counts[1:]))

    def test_modularity_improves_from_singletons(self, multigraph):
        detector = ParallelCommunityDetector(multigraph)
        partition = detector.run()
        singles = singleton_partition(multigraph.vertices())
        assert total_modularity(multigraph, partition) > total_modularity(
            multigraph, singles
        )

    def test_partition_covers_graph(self, multigraph):
        partition = ParallelCommunityDetector(multigraph).run()
        partition.validate_covers(multigraph)

    def test_isolated_vertices_stay_orphans(self):
        from repro.simgraph.graph import MultiGraph

        graph = MultiGraph()
        graph.add_edge("a", "b", 3)
        graph.add_vertex("orphan")
        partition = ParallelCommunityDetector(graph).run()
        assert partition.members(partition.community_of("orphan")) == {"orphan"}

    def test_deterministic(self, multigraph):
        a = ParallelCommunityDetector(multigraph).run()
        b = ParallelCommunityDetector(multigraph).run()
        assert a.assignment == b.assignment

    def test_target_communities_stops_early(self, multigraph):
        config = ParallelConfig(
            merge_mode="components",
            target_communities=multigraph.vertex_count // 2,
        )
        detector = ParallelCommunityDetector(multigraph, config)
        partition = detector.run()
        assert partition.community_count() >= 1

    def test_max_iterations_respected(self, multigraph):
        config = ParallelConfig(max_iterations=1)
        detector = ParallelCommunityDetector(multigraph, config)
        detector.run()
        assert len(detector.history) <= 2  # init + 1 iteration


class TestInternedRunMatchesStringSpecification:
    """``run()`` executes on interned integer ids; ``choose_targets`` /
    ``apply_targets`` remain the string-space specification.  Driving the
    public single-step methods to convergence must reproduce ``run()``'s
    partition *and* its Figure 5 history bit for bit."""

    def _reference_run(self, graph, config):
        from repro.community.parallel import _applied_gain

        detector = ParallelCommunityDetector(graph, config)
        partition = singleton_partition(graph.vertices())
        history = [(0, partition.community_count(), 0, 0.0)]
        for iteration in range(1, config.max_iterations + 1):
            targets = detector.choose_targets(partition)
            if not targets:
                break
            nxt = detector.apply_targets(partition, targets)
            gain = _applied_gain(graph, partition, nxt)
            history.append(
                (
                    iteration,
                    nxt.community_count(),
                    partition.community_count() - nxt.community_count(),
                    gain,
                )
            )
            converged = partition.same_structure(nxt)
            partition = nxt
            if converged:
                break
            if (
                config.target_communities
                and partition.community_count() <= config.target_communities
            ):
                break
        return partition, history

    @pytest.mark.parametrize("mode", ["pointer", "matching", "components"])
    def test_identical_partition_and_history(self, multigraph, mode):
        config = ParallelConfig(merge_mode=mode)
        detector = ParallelCommunityDetector(multigraph, config)
        fast = detector.run()
        fast_history = [
            (t.iteration, t.communities, t.merges, t.modularity_gain)
            for t in detector.history
        ]
        expected, expected_history = self._reference_run(multigraph, config)
        assert fast.assignment == expected.assignment
        assert fast_history == expected_history

    def test_explicit_initial_partition(self, triangle_graph):
        initial = Partition(
            {
                "a1": "left", "a2": "left", "a3": "left",
                "b1": "right", "b2": "right", "b3": "right",
            }
        )
        partition = ParallelCommunityDetector(triangle_graph).run(initial)
        # already optimal: the bridge merge has negative gain, so the
        # two-community structure must survive untouched
        assert partition.community_count() == 2
        assert partition.members(partition.community_of("a1")) == {
            "a1", "a2", "a3",
        }

    def test_initial_partition_must_cover(self, triangle_graph):
        with pytest.raises(ValueError):
            ParallelCommunityDetector(triangle_graph).run(
                Partition({"a1": "only"})
            )

"""Multi-tenant serving: quotas, the tenant registry, and — the
load-bearing property — cross-tenant isolation.

Three things must hold for many corpora to share one engine safely:

* **typed fairness** — a tenant saturating *its own* quota is rejected
  with :class:`TenantOverloadedError` ("you are the noisy one") while a
  tenant timing out purely on global saturation gets the plain
  :class:`ServiceOverloadedError` ("the box is full");
* **isolation by keying** — the same query on two tenants never shares
  a cache entry, a single-flight leader, or a batch slot, and one
  tenant's refresh never rotates another's warm cache;
* **byte-identity of the trivial case** — a one-tenant
  :class:`MultiTenantService` answers exactly like the classic
  single-tenant :class:`ExpertService` over the same artifact.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.esharp import ESharp
from repro.serving import (
    DEFAULT_TENANT,
    ExpertService,
    FairAdmissionController,
    MultiTenantService,
    ServiceConfig,
    ServiceOverloadedError,
    TenantClient,
    TenantOverloadedError,
    TenantQuota,
    TenantRegistry,
    TenantSpec,
    TenantStageError,
    UnknownTenantError,
)
from repro.serving.errors import (
    AdmissionProtocolError,
    ServiceClosedError,
    ServingError,
)


def answer_key(answer):
    """Everything observable about an answer except timings and tenant."""
    return (
        answer.experts,
        tuple(answer.terms),
        answer.matched_domain,
        answer.snapshot_version,
    )


# -- quotas: typed rejection + weighted-fair grants ---------------------------


class TestTenantQuota:
    def test_quota_fields_are_validated(self):
        with pytest.raises(ValueError, match="max_in_flight"):
            TenantQuota(max_in_flight=0)
        with pytest.raises(ValueError, match="max_queue_depth"):
            TenantQuota(max_queue_depth=-1)
        with pytest.raises(ValueError, match="weight"):
            TenantQuota(weight=0.0)

    def test_queue_full_rejection_is_tenant_typed(self):
        control = FairAdmissionController(max_in_flight=4)
        control.register("a", TenantQuota(max_in_flight=1, max_queue_depth=0))
        control.acquire("a")
        with pytest.raises(TenantOverloadedError) as info:
            control.acquire("a")
        assert info.value.tenant == "a"
        # the typed rejection is still the plain overload for old callers
        assert isinstance(info.value, ServiceOverloadedError)
        control.release("a")
        stats = {s.tenant: s for s in control.tenant_stats()}
        assert stats["a"].rejected_queue_full == 1
        assert stats["a"].admitted == 1

    def test_tenant_cap_timeout_is_tenant_typed(self):
        control = FairAdmissionController(
            max_in_flight=4, timeout_seconds=0.05
        )
        control.register("a", TenantQuota(max_in_flight=1, max_queue_depth=4))
        control.acquire("a")
        with pytest.raises(TenantOverloadedError) as info:
            control.acquire("a")  # waits, then times out at a's own cap
        assert info.value.tenant == "a"
        control.release("a")
        stats = {s.tenant: s for s in control.tenant_stats()}
        assert stats["a"].rejected_timeout == 1

    def test_global_saturation_timeout_is_plain_overload(self):
        """A tenant under its own quota that times out only because the
        shared capacity is full must NOT be blamed as the noisy one."""
        control = FairAdmissionController(
            max_in_flight=1, timeout_seconds=0.05
        )
        control.register("hog", TenantQuota(max_in_flight=8))
        control.register("meek", TenantQuota(max_in_flight=8))
        control.acquire("hog")
        with pytest.raises(ServiceOverloadedError) as info:
            control.acquire("meek")
        assert not isinstance(info.value, TenantOverloadedError)
        control.release("hog")

    def test_freed_capacity_goes_to_the_weighted_argmin(self):
        """Equal in-flight, different weights: the heavier tenant has
        the lower weighted occupancy and is granted the freed slot."""
        control = FairAdmissionController(
            max_in_flight=3, timeout_seconds=5.0
        )
        control.register("a", TenantQuota(max_in_flight=4, weight=2.0))
        control.register("b", TenantQuota(max_in_flight=4, weight=1.0))
        control.acquire("a")
        control.acquire("b")
        control.acquire("c")  # auto-registered default quota
        admitted = []

        def waiter(tenant):
            control.acquire(tenant)
            admitted.append(tenant)

        threads = [
            threading.Thread(target=waiter, args=(name,), daemon=True)
            for name in ("a", "b")
        ]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + 2.0
        while control.waiting < 2 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert control.waiting == 2
        control.release("c")  # a: 1/2.0 = 0.5 beats b: 1/1.0 = 1.0
        deadline = time.monotonic() + 2.0
        while len(admitted) < 1 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert admitted == ["a"]
        control.release("b")  # now b's waiter gets in
        for thread in threads:
            thread.join(timeout=2.0)
        assert sorted(admitted) == ["a", "b"]
        for tenant in ("a", "a", "b"):
            control.release(tenant)
        assert control.drain(timeout=1.0) == 0

    def test_release_without_acquire_is_a_protocol_error(self):
        control = FairAdmissionController(max_in_flight=2)
        with pytest.raises(AdmissionProtocolError):
            control.release("ghost")

    def test_drain_tenant_waits_only_its_own_work(self):
        control = FairAdmissionController(max_in_flight=4)
        control.acquire("a")
        assert control.drain_tenant("b", timeout=0.05) == 0
        assert control.drain_tenant("a", timeout=0.05) == 1
        control.release("a")
        assert control.drain_tenant("a", timeout=1.0) == 0

    def test_close_refuses_new_admissions_typed(self):
        control = FairAdmissionController(max_in_flight=2)
        control.close()
        with pytest.raises(ServiceClosedError):
            control.acquire("a")


# -- the registry: lazy load, LRU eviction, pins ------------------------------


class FakeResidentService:
    def __init__(self, name):
        self.name = name
        self.closed = False

    def close(self):
        self.closed = True
        return True


def make_registry(names=("a", "b", "c"), max_resident=None, builds=None):
    specs = [TenantSpec(name, f"/fake/{name}") for name in names]
    built = builds if builds is not None else {}

    def build(spec):
        service = FakeResidentService(spec.name)
        built.setdefault(spec.name, []).append(service)
        return object(), service

    return TenantRegistry(
        specs, build_resident=build, max_resident=max_resident
    )


class TestTenantRegistry:
    def test_tenant_names_are_validated(self):
        with pytest.raises(ValueError, match="invalid tenant name"):
            TenantSpec("no spaces", "/x")
        with pytest.raises(ValueError, match="invalid tenant name"):
            TenantSpec("", "/x")
        with pytest.raises(ValueError, match="duplicate"):
            make_registry(names=("a", "a"))
        with pytest.raises(ValueError, match="at least one"):
            TenantRegistry((), build_resident=lambda spec: (None, None))

    def test_loads_are_lazy_and_cached(self):
        registry = make_registry()
        assert registry.loads == 0 and registry.loaded() == ()
        resident = registry.acquire("a")
        registry.release(resident)
        assert registry.loads == 1 and registry.loaded() == ("a",)
        again = registry.acquire("a")
        registry.release(again)
        assert registry.loads == 1  # warm: no second build
        assert again is resident

    def test_unknown_tenant_is_typed(self):
        registry = make_registry()
        with pytest.raises(UnknownTenantError) as info:
            registry.acquire("zz")
        assert info.value.tenant == "zz"
        assert "a" in info.value.known

    def test_lru_eviction_closes_the_idle_victim(self):
        builds = {}
        registry = make_registry(max_resident=1, builds=builds)
        registry.release(registry.acquire("a"))
        registry.release(registry.acquire("b"))
        assert registry.loaded() == ("b",)
        assert registry.evictions == 1
        assert builds["a"][0].closed  # the victim's service was torn down
        # reloading the evicted tenant builds it again
        registry.release(registry.acquire("a"))
        assert registry.loads == 3

    def test_pinned_residents_are_never_evicted(self):
        registry = make_registry(max_resident=1)
        pinned = registry.acquire("a")  # held across the overflow
        other = registry.acquire("b")
        assert set(registry.loaded()) == {"a", "b"}  # over budget, both pinned
        registry.release(other)
        registry.release(pinned)
        # the next overflow can now evict the (idle) LRU tenant "a"
        registry.release(registry.acquire("c"))
        assert "a" not in registry.loaded()

    def test_dirty_residents_are_never_evicted(self):
        builds = {}
        registry = make_registry(max_resident=1, builds=builds)
        resident = registry.acquire("a")
        registry.mark_dirty("a")
        registry.release(resident)
        registry.release(registry.acquire("b"))
        assert "a" in registry.loaded()  # diverged state is not re-loadable
        assert not builds["a"][0].closed

    def test_release_of_unpinned_resident_is_typed(self):
        registry = make_registry()
        resident = registry.acquire("a")
        registry.release(resident)
        with pytest.raises(ServingError, match="unpinned"):
            registry.release(resident)

    def test_concurrent_cold_acquires_coalesce_on_one_load(self):
        started = threading.Event()
        unblock = threading.Event()
        builds = []

        def build(spec):
            builds.append(spec.name)
            started.set()
            assert unblock.wait(timeout=5.0)
            return object(), FakeResidentService(spec.name)

        registry = TenantRegistry(
            [TenantSpec("a", "/fake/a")], build_resident=build
        )
        residents = []

        def acquire():
            resident = registry.acquire("a")
            residents.append(resident)
            registry.release(resident)

        threads = [
            threading.Thread(target=acquire, daemon=True) for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        assert started.wait(timeout=5.0)
        unblock.set()
        for thread in threads:
            thread.join(timeout=5.0)
        assert builds == ["a"]  # one warm start, four pins
        assert len(set(id(r) for r in residents)) == 1

    def test_closed_registry_refuses_acquires(self):
        registry = make_registry()
        resident = registry.acquire("a")
        registry.release(resident)
        handed_back = registry.close()
        assert tuple(r.spec.name for r in handed_back) == ("a",)
        with pytest.raises(ServiceClosedError):
            registry.acquire("b")


# -- the multi-tenant service: isolation + byte-identity ----------------------


@pytest.fixture(scope="module")
def tenant_queries(system, system_b):
    from repro.serving.loadgen import candidate_queries

    return {
        "a": candidate_queries(system, 12),
        "b": candidate_queries(system_b, 12),
    }


@pytest.fixture(scope="module")
def multi(tenant_artifacts):
    """A shared two-tenant service for the read-only tests."""
    specs = [
        TenantSpec("a", str(tenant_artifacts["a"])),
        TenantSpec("b", str(tenant_artifacts["b"])),
    ]
    with MultiTenantService(
        specs, ServiceConfig(detection_workers=2)
    ) as service:
        yield service


class TestCrossTenantIsolation:
    def test_answers_are_stamped_with_their_tenant(
        self, multi, tenant_queries
    ):
        assert multi.query("a", tenant_queries["a"][0]).tenant == "a"
        assert multi.query("b", tenant_queries["b"][0]).tenant == "b"

    def test_cache_entries_never_cross_tenants(self, multi, tenant_queries):
        """The same query string on two tenants must miss twice: a hit
        on tenant B seeded by tenant A would be a data leak."""
        query = tenant_queries["a"][1]
        first_a = multi.query("a", query)
        assert not first_a.cache_hit
        assert multi.query("a", query).cache_hit  # warm within the tenant
        first_b = multi.query("b", query)
        assert not first_b.cache_hit  # A's entry is invisible to B
        assert multi.query("b", query).cache_hit
        assert first_b.tenant == "b"

    def test_partial_pools_carry_their_tenant(self, multi, tenant_queries):
        query = tenant_queries["a"][2]
        pool = multi.score_partial("a", query, [(0, query)])
        assert pool.tenant == "a"
        assert pool.query  # normalised, non-empty

    def test_submit_resolves_with_the_right_tenant(
        self, multi, tenant_queries
    ):
        futures = [
            multi.submit("a", tenant_queries["a"][3]),
            multi.submit("b", tenant_queries["b"][3]),
        ]
        answers = [future.result(timeout=30) for future in futures]
        assert [answer.tenant for answer in answers] == ["a", "b"]

    def test_concurrent_mixed_traffic_never_leaks(self, multi, tenant_queries):
        """Hammer both tenants with the same query strings concurrently;
        every answer must match its own tenant's reference exactly — a
        coalescing or batching leak would hand one tenant the other's
        experts."""
        reference = {
            tenant: {
                query: answer_key(multi.query(tenant, query))
                for query in tenant_queries[tenant][:4]
            }
            for tenant in ("a", "b")
        }
        failures = []

        def client(tenant):
            try:
                for _ in range(5):
                    for query in tenant_queries[tenant][:4]:
                        answer = multi.query(tenant, query)
                        if answer.tenant != tenant:
                            failures.append((tenant, "tenant", answer.tenant))
                        if answer_key(answer) != reference[tenant][query]:
                            failures.append((tenant, "answer", query))
            except Exception as exc:  # noqa: BLE001 - collected for assert
                failures.append((tenant, "error", repr(exc)))

        threads = [
            threading.Thread(target=client, args=(tenant,), daemon=True)
            for tenant in ("a", "b", "a", "b")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert failures == []

    def test_unknown_tenant_is_typed_everywhere(self, multi):
        with pytest.raises(UnknownTenantError):
            multi.query("ghost", "anything")
        with pytest.raises(UnknownTenantError):
            multi.tenant_version("ghost")
        with pytest.raises(UnknownTenantError):
            TenantClient(multi, "ghost")


class TestTenantScopedRefresh:
    @pytest.fixture
    def fresh_multi(self, tenant_artifacts):
        specs = [
            TenantSpec("a", str(tenant_artifacts["a"])),
            TenantSpec("b", str(tenant_artifacts["b"])),
        ]
        with MultiTenantService(
            specs, ServiceConfig(detection_workers=1)
        ) as service:
            yield service

    def test_refresh_rotates_one_tenant_and_leaves_the_other_warm(
        self, fresh_multi, tenant_queries
    ):
        query = tenant_queries["a"][0]
        fresh_multi.query("a", query)
        assert fresh_multi.query("a", query).cache_hit
        version_a = fresh_multi.tenant_version("a")
        snapshot = fresh_multi.refresh_domains("b")
        assert snapshot.version == fresh_multi.tenant_version("b")
        assert fresh_multi.tenant_version("b") == 2
        # tenant A: version unmoved, cache still warm
        assert fresh_multi.tenant_version("a") == version_a == 1
        assert fresh_multi.query("a", query).cache_hit

    def test_empty_delta_never_rotates_the_warm_cache(
        self, fresh_multi, tenant_queries
    ):
        query = tenant_queries["b"][0]
        fresh_multi.query("b", query)
        fresh_multi.refresh_delta("b", [])
        assert fresh_multi.tenant_version("b") == 1  # no serving change
        assert fresh_multi.query("b", query).cache_hit

    def test_refreshed_tenants_become_dirty_and_uneviictable(
        self, fresh_multi
    ):
        fresh_multi.refresh_delta("a", [])
        resident = {
            r.spec.name: r for r in fresh_multi.registry.residents()
        }
        assert resident["a"].dirty

    def test_stage_then_promote_is_tenant_scoped(
        self, fresh_multi, tenant_artifacts, tmp_path, tenant_queries
    ):
        v2_dir = tmp_path / "a-v2"
        upgraded = ESharp.from_artifact(tenant_artifacts["a"])
        upgraded.refresh_domains()
        upgraded.save_artifact(v2_dir)
        query_b = tenant_queries["b"][1]
        fresh_multi.query("b", query_b)
        staged = fresh_multi.stage("a", str(v2_dir))
        assert staged == 2
        assert fresh_multi.tenant_version("a") == 1  # not flipped yet
        assert fresh_multi.promote("a", expected_version=1) == 2
        assert fresh_multi.tenant_version("a") == 2
        # the other tenant never rotated and stayed cache-warm
        assert fresh_multi.tenant_version("b") == 1
        assert fresh_multi.query("b", query_b).cache_hit

    def test_promote_before_stage_is_typed(self, fresh_multi):
        with pytest.raises(TenantStageError, match="before stage"):
            fresh_multi.promote("a")


class TestSingleTenantByteIdentity:
    def test_one_tenant_service_matches_expert_service(
        self, tenant_artifacts, tenant_queries
    ):
        """The classic single-tenant deployment is the trivial one-tenant
        case of the registry — byte-identical answers, version included."""
        config = ServiceConfig(detection_workers=2)
        with ExpertService(
            ESharp.from_artifact(tenant_artifacts["a"]), config
        ) as single:
            with MultiTenantService(
                [TenantSpec("solo", str(tenant_artifacts["a"]))], config
            ) as multi:
                for query in tenant_queries["a"][:8]:
                    assert answer_key(multi.query("solo", query)) == (
                        answer_key(single.query(query))
                    )

    def test_default_tenant_label_is_preserved(self, system):
        with ExpertService(
            system, ServiceConfig(detection_workers=1)
        ) as service:
            from repro.serving.loadgen import candidate_queries

            answer = service.query(candidate_queries(system, 1)[0])
        assert answer.tenant == DEFAULT_TENANT


class TestTenantObservability:
    def test_health_reports_per_tenant_versions(self, multi, tenant_queries):
        multi.query("a", tenant_queries["a"][0])
        multi.query("b", tenant_queries["b"][0])
        report = multi.health()
        by_name = {entry.tenant: entry for entry in report.tenants}
        assert set(by_name) == {"a", "b"}
        assert by_name["a"].snapshot_version == 1
        assert by_name["b"].snapshot_version == 1
        assert by_name["a"].requests >= 1
        assert 0.0 <= by_name["a"].cache_hit_ratio <= 1.0
        assert report.tenant_version("a") == 1
        assert report.tenant_version("ghost") is None
        assert report.requests == sum(
            entry.requests for entry in report.tenants
        )

    def test_stats_aggregate_and_break_down(self, multi, tenant_queries):
        query = tenant_queries["a"][5]
        multi.query("a", query)
        multi.query("a", query)
        stats = multi.stats()
        by_name = {entry.tenant: entry for entry in stats.tenants}
        assert by_name["a"].cache_hit_ratio > 0.0
        assert stats.requests >= sum(
            entry.requests for entry in stats.tenants
        ) > 0
        round_trip = type(by_name["a"]).from_dict(by_name["a"].to_dict())
        assert round_trip == by_name["a"]

    def test_describe_tenants_lists_cold_and_loaded(self, tenant_artifacts):
        specs = [
            TenantSpec(
                "a",
                str(tenant_artifacts["a"]),
                quota=TenantQuota(max_in_flight=2, weight=2.0),
            ),
            TenantSpec("b", str(tenant_artifacts["b"])),
        ]
        with MultiTenantService(
            specs, ServiceConfig(detection_workers=1)
        ) as service:
            rows = {row["tenant"]: row for row in service.describe_tenants()}
            assert not rows["a"]["loaded"]  # lazy: nothing resident yet
            assert rows["a"]["snapshot_version"] is None
            assert rows["a"]["quota"]["weight"] == 2.0
            assert rows["b"]["quota"] is None
            from repro.serving.loadgen import candidate_queries

            queries = candidate_queries(
                ESharp.from_artifact(tenant_artifacts["a"]), 1
            )
            service.query("a", queries[0])
            rows = {row["tenant"]: row for row in service.describe_tenants()}
            assert rows["a"]["loaded"]
            assert rows["a"]["snapshot_version"] == 1
            assert rows["a"]["admission"]["admitted"] >= 1
            assert not rows["b"]["loaded"]

    def test_max_resident_evicts_idle_tenants_but_serving_stays_warm(
        self, tenant_artifacts, tenant_queries
    ):
        """An evicted-then-reloaded tenant republishes at the same
        artifact version, so its shared-cache entries are still live."""
        specs = [
            TenantSpec("a", str(tenant_artifacts["a"])),
            TenantSpec("b", str(tenant_artifacts["b"])),
        ]
        query = tenant_queries["a"][0]
        with MultiTenantService(
            specs, ServiceConfig(detection_workers=1), max_resident=1
        ) as service:
            service.query("a", query)
            service.query("b", tenant_queries["b"][0])  # evicts idle "a"
            assert service.registry.loaded() == ("b",)
            assert service.registry.evictions == 1
            answer = service.query("a", query)  # reload: warm cache
            assert answer.cache_hit
            assert service.registry.loads == 3


# -- fairness under load ------------------------------------------------------


class TestFairnessUnderLoad:
    def test_saturating_tenant_cannot_starve_the_light_one(
        self, tenant_artifacts, tenant_queries
    ):
        """A heavy tenant flooding past its quota is rejected typed;
        the light tenant keeps answering with bounded latency and zero
        errors."""
        specs = [
            TenantSpec(
                "heavy",
                str(tenant_artifacts["a"]),
                quota=TenantQuota(max_in_flight=2, max_queue_depth=0),
            ),
            TenantSpec(
                "light",
                str(tenant_artifacts["b"]),
                quota=TenantQuota(max_in_flight=4, max_queue_depth=8),
            ),
        ]
        config = ServiceConfig(
            detection_workers=2,
            max_in_flight=8,
            admission_timeout_seconds=5.0,
            cache_capacity=0,  # every request does real work
            single_flight=False,
        )
        rejections = []
        surprises = []
        light_latencies = []
        stop = threading.Event()

        with MultiTenantService(specs, config) as service:
            # warm both tenants before the contest starts
            service.query("heavy", tenant_queries["a"][0])
            service.query("light", tenant_queries["b"][0])

            def hammer():
                index = 0
                while not stop.is_set():
                    query = tenant_queries["a"][index % 8]
                    index += 1
                    try:
                        service.query("heavy", query)
                    except TenantOverloadedError as exc:
                        rejections.append(exc)
                    except Exception as exc:  # noqa: BLE001
                        surprises.append(("heavy", repr(exc)))

            threads = [
                threading.Thread(target=hammer, daemon=True)
                for _ in range(6)
            ]
            for thread in threads:
                thread.start()
            try:
                for round_index in range(15):
                    query = tenant_queries["b"][round_index % 8]
                    start = time.monotonic()
                    try:
                        answer = service.query("light", query)
                    except Exception as exc:  # noqa: BLE001
                        surprises.append(("light", repr(exc)))
                        continue
                    light_latencies.append(time.monotonic() - start)
                    assert answer.tenant == "light"
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=30)

        assert surprises == []
        assert len(light_latencies) == 15  # the light tenant never failed
        # every rejection blamed the noisy tenant, typed
        assert rejections, "the heavy tenant never hit its quota"
        assert all(exc.tenant == "heavy" for exc in rejections)
        # generous CI-safe bound: quota kept the light tenant responsive
        light_latencies.sort()
        p99 = light_latencies[
            min(len(light_latencies) - 1, int(len(light_latencies) * 0.99))
        ]
        assert p99 < 2.0

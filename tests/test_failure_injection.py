"""Failure injection: degenerate inputs every stage must survive.

Production pipelines meet empty logs, vocabulary-free corpora and queries
nobody ever tweeted; each component must degrade to an empty-but-valid
result rather than crash.
"""

import pytest

from repro.community.parallel import ParallelCommunityDetector
from repro.community.partition import singleton_partition
from repro.community.modularity import total_modularity
from repro.detector.palcounts import PalCountsDetector
from repro.expansion.domainstore import DomainStore
from repro.expansion.expander import QueryExpander
from repro.microblog.platform import MicroblogPlatform
from repro.querylog.store import QueryLogStore
from repro.simgraph.extract import extract_similarity_graph
from repro.simgraph.graph import MultiGraph


class TestEmptyLog:
    def test_extraction_of_empty_store(self):
        result = extract_similarity_graph(QueryLogStore())
        assert result.multigraph.vertex_count == 0
        assert result.report.bytes_read == 0

    def test_store_with_only_unsupported_queries(self):
        from repro.querylog.records import Impression

        store = QueryLogStore(min_support=100)
        store.add_impression(Impression("rare", ("u.com",)))
        result = extract_similarity_graph(store)
        assert result.multigraph.vertex_count == 0


class TestEmptyGraph:
    def test_clustering_empty_graph(self):
        graph = MultiGraph()
        partition = ParallelCommunityDetector(graph).run()
        assert partition.community_count() == 0

    def test_modularity_empty(self):
        graph = MultiGraph()
        assert total_modularity(graph, singleton_partition([])) == 0.0

    def test_clustering_edgeless_graph(self):
        graph = MultiGraph()
        for name in ("a", "b", "c"):
            graph.add_vertex(name)
        partition = ParallelCommunityDetector(graph).run()
        assert partition.community_count() == 3  # all orphans


class TestEmptyPlatform:
    def test_detector_on_empty_platform(self):
        detector = PalCountsDetector(MicroblogPlatform())
        assert detector.detect("anything") == []
        assert detector.candidate_count("anything") == 0

    def test_expander_on_empty_everything(self):
        expander = QueryExpander(
            DomainStore([]), PalCountsDetector(MicroblogPlatform())
        )
        result = expander.detect("ghost query")
        assert result.experts == []
        assert result.terms == ["ghost query"]


class TestDegenerateQueries:
    def test_empty_query_text(self, system):
        assert system.find_experts_baseline("") == []

    def test_whitespace_query(self, system):
        assert system.find_experts_baseline("   ") == []

    def test_punctuation_only_query(self, system):
        assert system.find_experts_baseline("!!! ???") == []

    def test_very_long_query(self, system):
        query = " ".join(f"term{i}" for i in range(100))
        assert system.find_experts(query) == []

    def test_query_with_unknown_tokens(self, system):
        assert system.find_experts("zzzz qqqq xxxx") == []


class TestDomainStoreEdgeCases:
    def test_empty_store_lookup(self):
        store = DomainStore([])
        assert store.lookup("anything") is None
        assert store.expand("anything") == ["anything"]
        assert store.domain_count == 0

    def test_from_empty_partition(self):
        from repro.community.partition import Partition

        store = DomainStore.from_partition(Partition({}))
        assert store.domain_count == 0

    def test_duplicate_keyword_across_domains_first_wins(self):
        from repro.expansion.domainstore import ExpertiseDomain

        store = DomainStore(
            [
                ExpertiseDomain("first", ("shared", "alpha")),
                ExpertiseDomain("second", ("shared", "beta")),
            ]
        )
        assert store.lookup("shared").domain_id == "first"

"""The columnar index engine: equivalence with the scan path + ingestion edges.

The contract of :class:`~repro.detector.engine.IndexedDetectionEngine` is
*identity*: candidate statistics — and therefore every ranked answer —
must match the scan-based path exactly, while the aggregation happens at
build time instead of query time.  The property-style test below asserts
that over the full evaluation query set (and its §5 expansion terms) of a
real built system; the unit tests pin the ingestion edge cases the index
must survive (out-of-order retweets, unknown mentionees, late-registered
users, staleness after new ingestion).
"""

import pytest

from repro.detector.candidates import collect_candidates
from repro.detector.engine import IndexedDetectionEngine
from repro.detector.palcounts import PalCountsDetector
from repro.detector.ranking import RankingConfig
from repro.eval.querysets import build_query_sets
from repro.microblog.platform import MicroblogPlatform, intersect_sorted
from repro.microblog.tweets import Tweet
from repro.microblog.users import UserProfile


def make_user(user_id: int, name: str | None = None) -> UserProfile:
    return UserProfile(
        user_id=user_id,
        screen_name=name or f"user{user_id}",
        description="a test account",
        persona="casual",
        expert_topics=(),
    )


@pytest.fixture
def platform():
    platform = MicroblogPlatform()
    for uid in (1, 2, 3):
        platform.add_user(make_user(uid))
    platform.add_tweet(
        Tweet(tweet_id=1, author_id=1, text="quantum computing breakthrough")
    )
    platform.add_tweet(
        Tweet(
            tweet_id=2,
            author_id=2,
            text="amazing quantum work",
            mentions=(1, 3),
        )
    )
    platform.add_tweet(
        Tweet(
            tweet_id=3,
            author_id=3,
            text="rt quantum computing breakthrough",
            retweet_of=1,
        )
    )
    platform.add_tweet(Tweet(tweet_id=4, author_id=2, text="lunch today"))
    return platform


class TestSingleTokenFastPath:
    def test_identical_to_scan(self, platform):
        engine = IndexedDetectionEngine(platform)
        assert engine.collect("quantum") == collect_candidates(
            platform, "quantum"
        )

    def test_one_lookup_counts(self, platform):
        engine = IndexedDetectionEngine(platform)
        stats = engine.collect("quantum")
        assert stats[1].on_topic_tweets == 1
        assert stats[1].on_topic_mentions == 1
        assert stats[1].on_topic_retweets_received == 1
        assert stats[3].on_topic_tweets == 1
        assert engine.stats().single_token_lookups == 1
        assert engine.stats().multi_token_queries == 0

    def test_unknown_token_empty(self, platform):
        engine = IndexedDetectionEngine(platform)
        assert engine.collect("blockchain") == {}
        assert engine.collect("") == {}

    def test_packed_columns_sorted_by_user(self, platform):
        engine = IndexedDetectionEngine(platform)
        packed = engine.token_candidates("quantum")
        ids = list(packed.user_ids)
        assert ids == sorted(ids)
        assert len(packed) == len(ids)
        assert packed.estimated_bytes() > 0


class TestMultiTokenPath:
    def test_identical_to_scan(self, platform):
        engine = IndexedDetectionEngine(platform)
        scan = collect_candidates(platform, "quantum computing")
        assert engine.collect("quantum computing") == scan
        assert engine.stats().multi_token_queries == 1

    def test_absent_term_short_circuits(self, platform):
        engine = IndexedDetectionEngine(platform)
        assert engine.collect("quantum warp") == {}

    def test_feature_vectors_match_pipeline(self, platform):
        from repro.detector.features import compute_features

        engine = IndexedDetectionEngine(platform)
        for query in ("quantum", "quantum computing", "nothing here"):
            stats = collect_candidates(platform, query)
            expected = compute_features(platform, stats)
            assert engine.feature_vectors(query) == expected


class TestIntersectSorted:
    def test_galloping_matches_set_semantics(self):
        a = list(range(0, 1000, 3))
        b = list(range(0, 1000, 7))
        c = list(range(0, 1000, 2))
        expected = sorted(set(a) & set(b) & set(c))
        assert intersect_sorted([a, b, c]) == expected

    def test_disjoint_lists(self):
        assert intersect_sorted([[1, 3, 5], [2, 4, 6]]) == []

    def test_subset_lists(self):
        assert intersect_sorted([[5, 9], [1, 5, 7, 9, 11]]) == [5, 9]


class TestStalenessAndIngestionEdges:
    def test_rebuilds_after_new_tweet(self, platform):
        engine = IndexedDetectionEngine(platform)
        before = engine.collect("quantum")
        platform.add_tweet(
            Tweet(tweet_id=9, author_id=1, text="more quantum results")
        )
        after = engine.collect("quantum")
        assert after[1].on_topic_tweets == before[1].on_topic_tweets + 1
        assert engine.stats().builds == 2

    def test_no_rebuild_when_unchanged(self, platform):
        engine = IndexedDetectionEngine(platform)
        engine.refresh()
        engine.collect("quantum")
        engine.collect("quantum computing")
        assert engine.stats().builds == 1
        assert engine.refresh() is False

    def test_unknown_mentionee_skipped(self, platform):
        # a tweet mentioning an id the platform never registered must not
        # create a candidate (its totals do not exist)
        platform.add_tweet(
            Tweet(
                tweet_id=10,
                author_id=2,
                text="quantum hype thread",
                mentions=(999,),
            )
        )
        engine = IndexedDetectionEngine(platform)
        scan = collect_candidates(platform, "quantum")
        assert 999 not in scan
        assert engine.collect("quantum") == scan

    def test_late_registered_mentionee_becomes_candidate(self, platform):
        platform.add_tweet(
            Tweet(
                tweet_id=10,
                author_id=2,
                text="quantum hype thread",
                mentions=(42,),
            )
        )
        engine = IndexedDetectionEngine(platform)
        assert 42 not in engine.collect("quantum")
        platform.add_user(make_user(42))
        stats = engine.collect("quantum")
        assert stats[42].on_topic_mentions == 1
        assert stats == collect_candidates(platform, "quantum")

    def test_out_of_order_retweet_resolved(self, platform):
        # the retweet arrives before its original: once the original is
        # ingested both the numerator and the denominator must see it
        platform.add_tweet(
            Tweet(
                tweet_id=20,
                author_id=2,
                text="rt superconductor news",
                retweet_of=21,
            )
        )
        platform.add_tweet(
            Tweet(tweet_id=21, author_id=3, text="superconductor news")
        )
        engine = IndexedDetectionEngine(platform)
        stats = engine.collect("superconductor")
        assert stats[3].on_topic_retweets_received == 1
        assert stats == collect_candidates(platform, "superconductor")


class TestDetectorIntegration:
    def test_detector_results_identical(self, platform):
        config = RankingConfig(min_zscore=-100.0)
        scan = PalCountsDetector(platform, config, use_engine=False)
        indexed = PalCountsDetector(platform, config)
        for query in ("quantum", "quantum computing", "lunch", "nothing"):
            assert scan.score(query) == indexed.score(query)
            assert scan.detect(query) == indexed.detect(query)
            assert scan.candidate_count(query) == indexed.candidate_count(
                query
            )

    def test_shared_engine_instance(self, platform):
        engine = IndexedDetectionEngine(platform)
        first = PalCountsDetector(platform, engine=engine)
        second = PalCountsDetector(platform, engine=engine)
        assert first.engine is engine and second.engine is engine

    def test_engine_disabled_means_scan(self, platform):
        assert PalCountsDetector(platform, use_engine=False).engine is None


class TestEvalQuerySetEquivalence:
    """The property-style contract: byte-identical over the eval queries."""

    def test_full_query_set_and_expansion_terms(self, system):
        offline = system.offline
        sets = build_query_sets(offline.world, offline.store)
        queries = [q for query_set in sets for q in query_set.queries]
        assert queries, "eval query sets came out empty"
        terms: set[str] = set(queries)
        for query in queries:
            terms.update(system.expansion_terms(query))

        platform = system.platform
        scan = PalCountsDetector(
            platform,
            ranking=system.config.ranking,
            normalization=system.config.normalization,
            use_engine=False,
        )
        indexed = PalCountsDetector(
            platform,
            ranking=system.config.ranking,
            normalization=system.config.normalization,
        )
        for term in sorted(terms):
            assert scan.score(term) == indexed.score(term), term

    def test_engine_memory_is_reported(self, system):
        engine = system.detector.engine
        assert engine is not None
        assert engine.estimated_bytes() > 0
        stats = engine.stats()
        assert stats.tokens > 0 and stats.candidate_rows > 0

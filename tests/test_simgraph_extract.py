"""End-to-end extraction on the shared session fixtures."""

import itertools

from repro.simgraph.extract import extract_similarity_graph


class TestExtraction:
    def test_vertices_are_supported_queries(self, query_store, extraction):
        supported = query_store.supported_queries()
        for vertex in extraction.multigraph.vertices():
            assert vertex in supported

    def test_graphs_agree_on_vertices(self, extraction):
        assert set(extraction.weighted.vertices()) == set(
            extraction.multigraph.vertices()
        )

    def test_report_accounts_bytes(self, query_store, extraction):
        assert extraction.report.bytes_read == query_store.raw_bytes
        assert extraction.report.bytes_written > 0

    def test_same_topic_terms_more_similar_than_cross_topic(
        self, world, extraction
    ):
        graph = extraction.weighted
        same_topic, cross_topic = [], []
        # two head topics per domain so cross-domain pairs exist
        topics = [
            t
            for domain in world.domains
            for t in world.topics_in_domain(domain)[:2]
        ]
        for topic in topics:
            present = [k.text for k in topic.keywords if graph.has_vertex(k.text)]
            for a, b in itertools.combinations(present, 2):
                same_topic.append(graph.weight(a, b))
        for t1, t2 in itertools.combinations(topics, 2):
            if t1.domain == t2.domain:
                continue
            k1 = t1.canonical.text
            k2 = t2.canonical.text
            if graph.has_vertex(k1) and graph.has_vertex(k2):
                cross_topic.append(graph.weight(k1, k2))
        assert same_topic and cross_topic
        assert (sum(same_topic) / len(same_topic)) > (
            sum(cross_topic) / len(cross_topic)
        )

    def test_isolated_vertices_excludable(self, query_store, small_config):
        lean = extract_similarity_graph(
            query_store, small_config.similarity, include_isolated=False
        )
        full = extract_similarity_graph(query_store, small_config.similarity)
        assert lean.multigraph.vertex_count <= full.multigraph.vertex_count
        for vertex in lean.multigraph.vertices():
            assert lean.multigraph.degree(vertex) > 0

    def test_deterministic(self, query_store, small_config):
        a = extract_similarity_graph(query_store, small_config.similarity)
        b = extract_similarity_graph(query_store, small_config.similarity)
        assert list(a.multigraph.edges()) == list(b.multigraph.edges())


class TestHonestWorkerAccounting:
    def test_workers_one_is_serial_and_reported(self, query_store, small_config):
        extraction = extract_similarity_graph(
            query_store, small_config.similarity, workers=1
        )
        assert extraction.report.workers == 1
        assert extraction.join_stats.workers == 1

    def test_report_matches_pool_actually_used(self, query_store, small_config):
        # requesting a wide pool must never stamp the request into the
        # Table 9 row: the report carries the clamped, honest pool size
        extraction = extract_similarity_graph(
            query_store, small_config.similarity, workers=65
        )
        assert extraction.report.workers == extraction.join_stats.workers
        from repro.simgraph.accumulate import _cpu_budget

        assert extraction.join_stats.workers <= _cpu_budget()

    def test_forced_pool_reported_and_equivalent(self, query_store, small_config):
        serial = extract_similarity_graph(query_store, small_config.similarity)
        pooled = extract_similarity_graph(
            query_store, small_config.similarity, workers=2, force_workers=True
        )
        assert pooled.report.workers == 2
        assert list(pooled.multigraph.edges()) == list(
            serial.multigraph.edges()
        )

    def test_offline_pipeline_reports_honest_workers(self, small_config):
        from repro.core.offline import OfflinePipeline

        artifacts = OfflinePipeline(small_config).run()
        extraction_row, clustering_row = artifacts.clock.reports[:2]
        assert extraction_row.name == "Extraction"
        # the config requests 65 simulated VMs; the row must show the pool
        # the join really used on this machine
        from repro.simgraph.accumulate import _cpu_budget

        assert extraction_row.workers <= _cpu_budget()
        assert clustering_row.workers == 1

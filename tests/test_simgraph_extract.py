"""End-to-end extraction on the shared session fixtures."""

import itertools

from repro.simgraph.extract import extract_similarity_graph


class TestExtraction:
    def test_vertices_are_supported_queries(self, query_store, extraction):
        supported = query_store.supported_queries()
        for vertex in extraction.multigraph.vertices():
            assert vertex in supported

    def test_graphs_agree_on_vertices(self, extraction):
        assert set(extraction.weighted.vertices()) == set(
            extraction.multigraph.vertices()
        )

    def test_report_accounts_bytes(self, query_store, extraction):
        assert extraction.report.bytes_read == query_store.raw_bytes
        assert extraction.report.bytes_written > 0

    def test_same_topic_terms_more_similar_than_cross_topic(
        self, world, extraction
    ):
        graph = extraction.weighted
        same_topic, cross_topic = [], []
        # two head topics per domain so cross-domain pairs exist
        topics = [
            t
            for domain in world.domains
            for t in world.topics_in_domain(domain)[:2]
        ]
        for topic in topics:
            present = [k.text for k in topic.keywords if graph.has_vertex(k.text)]
            for a, b in itertools.combinations(present, 2):
                same_topic.append(graph.weight(a, b))
        for t1, t2 in itertools.combinations(topics, 2):
            if t1.domain == t2.domain:
                continue
            k1 = t1.canonical.text
            k2 = t2.canonical.text
            if graph.has_vertex(k1) and graph.has_vertex(k2):
                cross_topic.append(graph.weight(k1, k2))
        assert same_topic and cross_topic
        assert (sum(same_topic) / len(same_topic)) > (
            sum(cross_topic) / len(cross_topic)
        )

    def test_isolated_vertices_excludable(self, query_store, small_config):
        lean = extract_similarity_graph(
            query_store, small_config.similarity, include_isolated=False
        )
        full = extract_similarity_graph(query_store, small_config.similarity)
        assert lean.multigraph.vertex_count <= full.multigraph.vertex_count
        for vertex in lean.multigraph.vertices():
            assert lean.multigraph.degree(vertex) > 0

    def test_deterministic(self, query_store, small_config):
        a = extract_similarity_graph(query_store, small_config.similarity)
        b = extract_similarity_graph(query_store, small_config.similarity)
        assert list(a.multigraph.edges()) == list(b.multigraph.edges())

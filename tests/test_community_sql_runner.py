"""Figure 4 SQL execution — cross-checked against the pure-Python path."""

import pytest

from repro.community.parallel import ParallelCommunityDetector, ParallelConfig
from repro.community.partition import singleton_partition
from repro.community.sql_runner import FIGURE4_SQL, SqlCommunityDetector
from repro.simgraph.graph import MultiGraph


@pytest.fixture(scope="module")
def medium_graph(request):
    """A deterministic ~100-vertex planted-community graph."""
    import random

    rng = random.Random(42)
    graph = MultiGraph()
    for block in range(8):
        vertices = [f"b{block}v{i}" for i in range(12)]
        for i, u in enumerate(vertices):
            for v in vertices[i + 1 :]:
                if rng.random() < 0.5:
                    graph.add_edge(u, v, rng.randint(1, 3))
    # sparse inter-block bridges
    for block in range(7):
        graph.add_edge(f"b{block}v0", f"b{block + 1}v0", 1)
    return graph


class TestSqlRunner:
    def test_figure4_sql_parses(self):
        from repro.relational.sql.parser import parse_script

        statements = parse_script(FIGURE4_SQL)
        assert len(statements) == 3

    def test_matches_pointer_mode_every_iteration(self, medium_graph):
        config = ParallelConfig(merge_mode="pointer", max_iterations=6)
        python_detector = ParallelCommunityDetector(medium_graph, config)
        sql_detector = SqlCommunityDetector(medium_graph, config)

        python_partition = singleton_partition(medium_graph.vertices())
        sql_partition = singleton_partition(medium_graph.vertices())
        for _ in range(4):
            targets = python_detector.choose_targets(python_partition)
            python_partition = python_detector.apply_targets(
                python_partition, targets
            )
            sql_partition = sql_detector.iterate_once(sql_partition)
            assert python_partition.assignment == sql_partition.assignment

    def test_full_run_same_structure(self, medium_graph):
        config = ParallelConfig(merge_mode="pointer", max_iterations=12)
        python_final = ParallelCommunityDetector(medium_graph, config).run()
        sql_final = SqlCommunityDetector(medium_graph, config).run()
        assert python_final.same_structure(sql_final)

    def test_history_counts_match(self, medium_graph):
        config = ParallelConfig(merge_mode="pointer", max_iterations=12)
        python_detector = ParallelCommunityDetector(medium_graph, config)
        sql_detector = SqlCommunityDetector(medium_graph, config)
        python_detector.run()
        sql_detector.run()
        assert python_detector.community_counts() == sql_detector.community_counts()

    def test_non_pointer_config_coerced(self, medium_graph):
        detector = SqlCommunityDetector(
            medium_graph, ParallelConfig(merge_mode="components")
        )
        assert detector.config.merge_mode == "pointer"

    def test_run_stats_populated(self, medium_graph):
        detector = SqlCommunityDetector(
            medium_graph, ParallelConfig(max_iterations=3)
        )
        detector.run()
        assert detector.run_stats.iterations >= 1
        assert detector.run_stats.rows_read > 0
        assert detector.run_stats.bytes_written > 0

    def test_blocks_rarely_mixed(self, medium_graph):
        partition = SqlCommunityDetector(
            medium_graph, ParallelConfig(max_iterations=12)
        ).run()
        # pointer semantics may leave a block split into a few communities,
        # but communities must (almost) never straddle two planted blocks
        spanning = 0
        for community in partition.communities():
            blocks = {member.split("v")[0] for member in partition.members(community)}
            if len(blocks) > 1:
                spanning += 1
        assert spanning <= 1
        assert partition.community_count() < medium_graph.vertex_count // 2

"""Aggregate functions for GROUP BY, including the paper's ``argmax``.

Figure 4's second query is::

    partitions = select query2, argmax(distance, query1)
                 from neighbors group by query2;

``argmax(value, key)`` returns the ``key`` of the row with the largest
``value`` in the group.  Ties break on the smaller key, so results are
deterministic regardless of row order — the paper leaves tie-breaking
unspecified (DESIGN.md §6 item 4).
"""

from __future__ import annotations

from typing import Any, Callable, Type


class Aggregate:
    """Streaming aggregate: ``step`` per row, ``final`` once per group."""

    #: number of expression arguments the aggregate consumes
    arity: int = 1

    def step(self, *values: Any) -> None:
        raise NotImplementedError

    def final(self) -> Any:
        raise NotImplementedError


class CountAggregate(Aggregate):
    """COUNT(expr) — counts non-null values; COUNT(*) is planned as Literal(1)."""

    def __init__(self) -> None:
        self._count = 0

    def step(self, value: Any) -> None:
        if value is not None:
            self._count += 1

    def final(self) -> int:
        return self._count


class SumAggregate(Aggregate):
    def __init__(self) -> None:
        self._total: Any = None

    def step(self, value: Any) -> None:
        if value is None:
            return
        self._total = value if self._total is None else self._total + value

    def final(self) -> Any:
        return self._total


class MinAggregate(Aggregate):
    def __init__(self) -> None:
        self._best: Any = None

    def step(self, value: Any) -> None:
        if value is None:
            return
        if self._best is None or value < self._best:
            self._best = value

    def final(self) -> Any:
        return self._best


class MaxAggregate(Aggregate):
    def __init__(self) -> None:
        self._best: Any = None

    def step(self, value: Any) -> None:
        if value is None:
            return
        if self._best is None or value > self._best:
            self._best = value

    def final(self) -> Any:
        return self._best


class AvgAggregate(Aggregate):
    def __init__(self) -> None:
        self._total = 0.0
        self._count = 0

    def step(self, value: Any) -> None:
        if value is None:
            return
        self._total += value
        self._count += 1

    def final(self) -> float | None:
        return self._total / self._count if self._count else None


class ArgmaxAggregate(Aggregate):
    """``argmax(value, key)`` → key of the maximal value (ties: smaller key)."""

    arity = 2

    def __init__(self) -> None:
        self._best_value: Any = None
        self._best_key: Any = None

    def step(self, value: Any, key: Any) -> None:
        if value is None:
            return
        if self._best_value is None:
            self._best_value, self._best_key = value, key
            return
        if value > self._best_value:
            self._best_value, self._best_key = value, key
        elif value == self._best_value and key < self._best_key:
            self._best_key = key

    def final(self) -> Any:
        return self._best_key


AGGREGATE_REGISTRY: dict[str, Type[Aggregate]] = {
    "count": CountAggregate,
    "sum": SumAggregate,
    "min": MinAggregate,
    "max": MaxAggregate,
    "avg": AvgAggregate,
    "argmax": ArgmaxAggregate,
}


def make_aggregate(name: str) -> Aggregate:
    """Instantiate an aggregate by (case-insensitive) name."""
    try:
        return AGGREGATE_REGISTRY[name.lower()]()
    except KeyError:
        raise KeyError(
            f"unknown aggregate {name!r}; known: {sorted(AGGREGATE_REGISTRY)}"
        ) from None


def is_aggregate(name: str) -> bool:
    return name.lower() in AGGREGATE_REGISTRY

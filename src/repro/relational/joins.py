"""Equi-join strategies, including the two §4.2.3 distributed plans.

The paper's performance discussion names three physical options for the
communities ⋈ graph join:

* a plain **hash join** (the single-node reference),
* a **replicated join** — "we replicate and index the communities table at
  each node. Then, we split the graph table, broadcast the partitions, and
  execute the join at each node",
* **chained map-side joins** — "we cluster the tables communities and
  graph on the join keys, send each partition to a node, then perform the
  join at each node".

All three produce identical results; they differ in the shuffle volumes
they account, which the join-strategy ablation bench (ABL2) reports.
Parallelism is simulated: per-partition work runs sequentially but is
accounted as if spread over ``partitions`` workers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.relational.schema import Schema
from repro.relational.table import Table


@dataclass
class JoinStats:
    """Accounting for one join execution."""

    strategy: str
    rows_left: int = 0
    rows_right: int = 0
    rows_out: int = 0
    #: bytes moved between (simulated) nodes
    shuffled_bytes: int = 0
    partitions: int = 1


def _joined_schema(left: Table, right: Table) -> Schema:
    """Concatenate schemas, auto-qualifying right-side name collisions.

    When both inputs expose an identical (qualified) column name — legal
    SQL given table aliases, ambiguous without them — the right side's
    copy is re-qualified ``r`` (then ``r2``, ``r3``, ...), mirroring what
    engines do for ``SELECT *`` over self-joins.
    """
    from repro.relational.schema import Column

    taken = {column.qualified for column in left.schema}
    columns = list(left.schema.columns)
    for column in right.schema:
        candidate = column
        suffix = 0
        while candidate.qualified in taken:
            suffix += 1
            qualifier = "r" if suffix == 1 else f"r{suffix}"
            candidate = Column(column.name, qualifier)
        taken.add(candidate.qualified)
        columns.append(candidate)
    return Schema(columns)


def _row_bytes(row: tuple) -> int:
    return sum(len(v) + 1 if isinstance(v, str) else 8 for v in row)


class HashJoin:
    """Classic build/probe in-memory equi-join (inner)."""

    name = "hash"

    def execute(
        self, left: Table, right: Table, left_key: str, right_key: str
    ) -> tuple[Table, JoinStats]:
        stats = JoinStats(
            strategy=self.name, rows_left=len(left), rows_right=len(right)
        )
        build_index = left.schema.index_of(left_key)
        probe_index = right.schema.index_of(right_key)
        buckets: dict[object, list[tuple]] = {}
        for row in left.rows:
            buckets.setdefault(row[build_index], []).append(row)
        out_rows: list[tuple] = []
        for row in right.rows:
            for match in buckets.get(row[probe_index], ()):
                out_rows.append(match + row)
        stats.rows_out = len(out_rows)
        return Table(_joined_schema(left, right), out_rows), stats


class ReplicatedJoin:
    """§4.2.3 strategy 1: broadcast the small table, partition the big one.

    The small (left) table is replicated to every node — its bytes are
    shuffled ``partitions`` times — while the big (right) table is hash
    partitioned, shuffling each row once.
    """

    name = "replicated"

    def __init__(self, partitions: int = 8) -> None:
        if partitions < 1:
            raise ValueError(f"partitions must be >= 1, got {partitions}")
        self.partitions = partitions

    def execute(
        self, left: Table, right: Table, left_key: str, right_key: str
    ) -> tuple[Table, JoinStats]:
        stats = JoinStats(
            strategy=self.name,
            rows_left=len(left),
            rows_right=len(right),
            partitions=self.partitions,
        )
        # broadcast cost: the whole left table to every node
        stats.shuffled_bytes += left.estimated_bytes() * self.partitions
        # partition cost: each right row moves once
        stats.shuffled_bytes += right.estimated_bytes()

        probe_index = right.schema.index_of(right_key)
        partitions: list[list[tuple]] = [[] for _ in range(self.partitions)]
        for row in right.rows:
            partitions[hash(row[probe_index]) % self.partitions].append(row)

        inner = HashJoin()
        out_rows: list[tuple] = []
        for chunk in partitions:
            chunk_table = Table(right.schema, chunk)
            joined, _ = inner.execute(left, chunk_table, left_key, right_key)
            out_rows.extend(joined.rows)
        stats.rows_out = len(out_rows)
        return Table(_joined_schema(left, right), out_rows), stats


class MapSideJoin:
    """§4.2.3 strategy 2: co-partition both tables on the join key.

    Both inputs are hash partitioned on their key (each row shuffles once),
    each node joins its pair of partitions.  This is the fallback when the
    small table does not fit in node memory.
    """

    name = "map_side"

    def __init__(self, partitions: int = 8) -> None:
        if partitions < 1:
            raise ValueError(f"partitions must be >= 1, got {partitions}")
        self.partitions = partitions

    def execute(
        self, left: Table, right: Table, left_key: str, right_key: str
    ) -> tuple[Table, JoinStats]:
        stats = JoinStats(
            strategy=self.name,
            rows_left=len(left),
            rows_right=len(right),
            partitions=self.partitions,
        )
        stats.shuffled_bytes += left.estimated_bytes() + right.estimated_bytes()

        left_index = left.schema.index_of(left_key)
        right_index = right.schema.index_of(right_key)
        left_parts: list[list[tuple]] = [[] for _ in range(self.partitions)]
        right_parts: list[list[tuple]] = [[] for _ in range(self.partitions)]
        for row in left.rows:
            left_parts[hash(row[left_index]) % self.partitions].append(row)
        for row in right.rows:
            right_parts[hash(row[right_index]) % self.partitions].append(row)

        inner = HashJoin()
        out_rows: list[tuple] = []
        for left_chunk, right_chunk in zip(left_parts, right_parts):
            joined, _ = inner.execute(
                Table(left.schema, left_chunk),
                Table(right.schema, right_chunk),
                left_key,
                right_key,
            )
            out_rows.extend(joined.rows)
        stats.rows_out = len(out_rows)
        return Table(_joined_schema(left, right), out_rows), stats


JOIN_STRATEGIES = {
    HashJoin.name: HashJoin,
    ReplicatedJoin.name: ReplicatedJoin,
    MapSideJoin.name: MapSideJoin,
}

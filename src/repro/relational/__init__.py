"""S4 — A small relational engine in the spirit of Hive/SCOPE.

§4.2.2 argues the community-detection algorithm "can directly be
implemented in (parallel) declarative languages such as Hive, Pig,
Microsoft's SCOPE or even SQL", and §4.2.3 discusses the physical join
strategies (replicated join vs chained map-side joins) that make it fast.
This package provides the substrate to make those claims executable:

* :mod:`repro.relational.schema` / :mod:`~repro.relational.table` — typed
  schemas and immutable row tables with byte accounting,
* :mod:`repro.relational.expressions` — a small expression AST with scalar
  UDF support (``ModulGain`` from Figure 4 is registered as one),
* :mod:`repro.relational.aggregates` — COUNT/SUM/MIN/MAX and the paper's
  ``argmax(value, key)`` aggregate,
* :mod:`repro.relational.joins` — hash join plus the two §4.2.3
  distributed strategies, with shuffle accounting,
* :mod:`repro.relational.operators` — select/project/group-by/union,
* :mod:`repro.relational.engine` — catalog, statistics, partitioned
  execution,
* :mod:`repro.relational.sql` — lexer, parser, planner and executor for
  the SQL subset used by Figure 4.
"""

from repro.relational.schema import Column, Schema
from repro.relational.table import Table
from repro.relational.expressions import (
    BinaryOp,
    ColumnRef,
    Comparison,
    Expression,
    FunctionCall,
    Literal,
    LogicalOp,
)
from repro.relational.aggregates import (
    AGGREGATE_REGISTRY,
    ArgmaxAggregate,
    CountAggregate,
    MaxAggregate,
    MinAggregate,
    SumAggregate,
)
from repro.relational.joins import (
    HashJoin,
    JoinStats,
    MapSideJoin,
    ReplicatedJoin,
)
from repro.relational.operators import (
    distinct,
    group_by,
    project,
    rename_columns,
    select_rows,
    union_all,
)
from repro.relational.engine import Catalog, Engine, EngineStats
from repro.relational.sql import SqlError, SqlSession

__all__ = [
    "AGGREGATE_REGISTRY",
    "ArgmaxAggregate",
    "BinaryOp",
    "Catalog",
    "Column",
    "ColumnRef",
    "Comparison",
    "CountAggregate",
    "Engine",
    "EngineStats",
    "Expression",
    "FunctionCall",
    "HashJoin",
    "JoinStats",
    "Literal",
    "LogicalOp",
    "MapSideJoin",
    "MaxAggregate",
    "MinAggregate",
    "ReplicatedJoin",
    "Schema",
    "SqlError",
    "SqlSession",
    "SumAggregate",
    "Table",
    "distinct",
    "group_by",
    "project",
    "rename_columns",
    "select_rows",
    "union_all",
]

"""Schemas: ordered, optionally qualified column descriptors."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator


@dataclass(frozen=True)
class Column:
    """A column: plain name plus an optional table qualifier.

    ``Column("query", "c1")`` renders as ``c1.query`` and matches lookups
    for both ``"query"`` (if unambiguous) and ``"c1.query"``.
    """

    name: str
    qualifier: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("column name cannot be empty")
        if "." in self.name:
            raise ValueError(
                f"column name may not contain '.', got {self.name!r}; "
                "use the qualifier field"
            )

    @property
    def qualified(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name

    def matches(self, reference: str) -> bool:
        """Does ``reference`` (``name`` or ``alias.name``) denote this column?"""
        if "." in reference:
            qualifier, name = reference.split(".", 1)
            return self.name == name and self.qualifier == qualifier
        return self.name == reference

    def __str__(self) -> str:
        return self.qualified


class SchemaError(KeyError):
    """Raised for unknown or ambiguous column references."""


class Schema:
    """An ordered collection of :class:`Column` with reference resolution."""

    def __init__(self, columns: Iterable[Column | str]) -> None:
        self.columns: tuple[Column, ...] = tuple(
            col if isinstance(col, Column) else Column(col) for col in columns
        )
        seen: set[str] = set()
        for column in self.columns:
            if column.qualified in seen:
                raise ValueError(f"duplicate column {column.qualified!r} in schema")
            seen.add(column.qualified)

    @classmethod
    def of(cls, *names: str) -> "Schema":
        """Shorthand: ``Schema.of("a", "c1.b")`` parses qualifiers from dots."""
        columns = []
        for name in names:
            if "." in name:
                qualifier, plain = name.split(".", 1)
                columns.append(Column(plain, qualifier))
            else:
                columns.append(Column(name))
        return cls(columns)

    def index_of(self, reference: str) -> int:
        """Resolve a column reference to its position.

        Raises :class:`SchemaError` when the reference is unknown, or when a
        bare name is ambiguous between qualifiers (as SQL would).
        """
        matches = [
            index
            for index, column in enumerate(self.columns)
            if column.matches(reference)
        ]
        if not matches:
            raise SchemaError(
                f"unknown column {reference!r}; schema has "
                f"{[c.qualified for c in self.columns]}"
            )
        if len(matches) > 1:
            raise SchemaError(
                f"ambiguous column {reference!r}; candidates: "
                f"{[self.columns[i].qualified for i in matches]}"
            )
        return matches[0]

    def has(self, reference: str) -> bool:
        try:
            self.index_of(reference)
            return True
        except SchemaError:
            return False

    def names(self) -> list[str]:
        return [column.name for column in self.columns]

    def qualified_names(self) -> list[str]:
        return [column.qualified for column in self.columns]

    def requalify(self, alias: str) -> "Schema":
        """Return a copy with every column re-qualified by ``alias``."""
        return Schema(Column(column.name, alias) for column in self.columns)

    def unqualified(self) -> "Schema":
        """Return a copy with qualifiers stripped (post-projection schema)."""
        return Schema(Column(column.name) for column in self.columns)

    def concat(self, other: "Schema") -> "Schema":
        return Schema(list(self.columns) + list(other.columns))

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self.columns == other.columns

    def __repr__(self) -> str:
        return f"Schema({', '.join(c.qualified for c in self.columns)})"

"""Catalog + engine: named tables, UDF registry, execution statistics.

The engine is deliberately small: the SQL layer plans queries into calls
against the operators and join strategies, and the engine's job is to hold
state (catalog, functions) and account I/O so the offline pipeline can
report Table 9 numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.relational.joins import JOIN_STRATEGIES, JoinStats
from repro.relational.table import Table


class CatalogError(KeyError):
    """Raised for unknown table names."""


class Catalog:
    """Named tables."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}

    def register(self, name: str, table: Table) -> None:
        self._tables[name.lower()] = table

    def get(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(
                f"unknown table {name!r}; registered: {sorted(self._tables)}"
            ) from None

    def drop(self, name: str) -> None:
        self._tables.pop(name.lower(), None)

    def names(self) -> list[str]:
        return sorted(self._tables)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._tables


@dataclass
class EngineStats:
    """Cumulative execution statistics."""

    rows_read: int = 0
    rows_written: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    shuffled_bytes: int = 0
    joins: list[JoinStats] = field(default_factory=list)
    max_partitions: int = 1

    def record_scan(self, table: Table) -> None:
        self.rows_read += len(table)
        self.bytes_read += table.estimated_bytes()

    def record_output(self, table: Table) -> None:
        self.rows_written += len(table)
        self.bytes_written += table.estimated_bytes()

    def record_join(self, stats: JoinStats) -> None:
        self.joins.append(stats)
        self.shuffled_bytes += stats.shuffled_bytes
        self.max_partitions = max(self.max_partitions, stats.partitions)

    def reset(self) -> None:
        self.rows_read = 0
        self.rows_written = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.shuffled_bytes = 0
        self.joins.clear()
        self.max_partitions = 1


class Engine:
    """Execution context: catalog + scalar UDFs + join strategy + stats."""

    def __init__(
        self,
        join_strategy: str = "hash",
        partitions: int = 8,
    ) -> None:
        if join_strategy not in JOIN_STRATEGIES:
            raise ValueError(
                f"unknown join strategy {join_strategy!r}; "
                f"known: {sorted(JOIN_STRATEGIES)}"
            )
        self.catalog = Catalog()
        self.functions: dict[str, Callable[..., Any]] = {}
        self.stats = EngineStats()
        self.join_strategy = join_strategy
        self.partitions = partitions

    def register_function(self, name: str, function: Callable[..., Any]) -> None:
        """Register a scalar UDF (e.g. Figure 4's ``ModulGain``)."""
        self.functions[name] = function

    def make_join(self):
        """Instantiate the configured join strategy."""
        strategy = JOIN_STRATEGIES[self.join_strategy]
        if self.join_strategy == "hash":
            return strategy()
        return strategy(partitions=self.partitions)

    def join(self, left: Table, right: Table, left_key: str, right_key: str) -> Table:
        """Join with the configured strategy, recording statistics."""
        joined, stats = self.make_join().execute(left, right, left_key, right_key)
        self.stats.record_join(stats)
        return joined

    def scan(self, name: str) -> Table:
        table = self.catalog.get(name)
        self.stats.record_scan(table)
        return table

    def materialize(self, name: str, table: Table) -> None:
        """CREATE TABLE AS ... — register output and account its bytes."""
        self.stats.record_output(table)
        self.catalog.register(name, table)

"""Table persistence: TSV with a one-line typed header.

The paper's pipeline materialises its intermediates between map-reduce
stages and stores the final collection in SQL Server; this module gives
the reproduction an equivalent hand-off format.  TSV keeps the files
greppable; the header row carries ``name:type`` pairs so round-trips
restore int/float/bool/str columns faithfully.
"""

from __future__ import annotations

import pathlib
from typing import Any, Callable

from repro.relational.schema import Column, Schema
from repro.relational.table import Table

_WRITERS: dict[type, str] = {int: "int", float: "float", bool: "bool", str: "str"}
_PARSERS: dict[str, Callable[[str], Any]] = {
    "int": int,
    "float": float,
    "bool": lambda text: text == "True",
    "str": lambda text: text,
}
_NULL = "\\N"


class TableIOError(ValueError):
    """Raised for malformed files or unencodable values."""


def _column_type(table: Table, index: int) -> str:
    for row in table.rows:
        value = row[index]
        if value is not None:
            try:
                return _WRITERS[type(value)]
            except KeyError:
                raise TableIOError(
                    f"column {table.schema.columns[index].qualified!r} holds "
                    f"unserialisable type {type(value).__name__}"
                ) from None
    return "str"


def _encode(value: Any) -> str:
    if value is None:
        return _NULL
    text = str(value)
    if "\t" in text or "\n" in text:
        raise TableIOError(f"value {text!r} contains a TSV delimiter")
    return text


def save_table(table: Table, path: str | pathlib.Path) -> int:
    """Write ``table`` as TSV; returns the number of bytes written."""
    target = pathlib.Path(path)
    types = [_column_type(table, i) for i in range(len(table.schema))]
    header = "\t".join(
        f"{column.qualified}:{ctype}"
        for column, ctype in zip(table.schema.columns, types)
    )
    lines = [header]
    for row in table.rows:
        lines.append("\t".join(_encode(value) for value in row))
    payload = "\n".join(lines) + "\n"
    target.write_text(payload, encoding="utf-8")
    return len(payload.encode("utf-8"))


def load_table(path: str | pathlib.Path) -> Table:
    """Read a TSV written by :func:`save_table`."""
    source = pathlib.Path(path)
    lines = source.read_text(encoding="utf-8").splitlines()
    if not lines:
        raise TableIOError(f"{source} is empty")
    columns: list[Column] = []
    parsers: list[Callable[[str], Any]] = []
    for cell in lines[0].split("\t"):
        name, _, ctype = cell.rpartition(":")
        if not name or ctype not in _PARSERS:
            raise TableIOError(f"malformed header cell {cell!r} in {source}")
        if "." in name:
            qualifier, plain = name.split(".", 1)
            columns.append(Column(plain, qualifier))
        else:
            columns.append(Column(name))
        parsers.append(_PARSERS[ctype])
    schema = Schema(columns)
    rows: list[tuple] = []
    for line_number, line in enumerate(lines[1:], start=2):
        cells = line.split("\t")
        if len(cells) != len(columns):
            raise TableIOError(
                f"{source}:{line_number}: expected {len(columns)} cells, "
                f"got {len(cells)}"
            )
        rows.append(
            tuple(
                None if cell == _NULL else parser(cell)
                for parser, cell in zip(parsers, cells)
            )
        )
    return Table(schema, rows)

"""Row-at-a-time relational operators: select, project, group-by, union.

These are the map-reduce-friendly operators §4.2.3 appeals to: selection
and projection are pure map work; grouping is one shuffle + reduce.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.relational.aggregates import make_aggregate
from repro.relational.expressions import Expression, FunctionRegistry
from repro.relational.schema import Column, Schema
from repro.relational.table import Table


def select_rows(
    table: Table,
    predicate: Expression,
    functions: FunctionRegistry | None = None,
) -> Table:
    """WHERE: keep rows for which ``predicate`` is truthy."""
    rows = [
        row
        for row in table.rows
        if predicate.evaluate(row, table.schema, functions)
    ]
    return Table(table.schema, rows)


def project(
    table: Table,
    expressions: Sequence[tuple[Expression, str]],
    functions: FunctionRegistry | None = None,
) -> Table:
    """SELECT list: evaluate ``(expression, output_name)`` pairs per row."""
    schema = Schema([Column(name) for _, name in expressions])
    rows = [
        tuple(
            expression.evaluate(row, table.schema, functions)
            for expression, _ in expressions
        )
        for row in table.rows
    ]
    return Table(schema, rows)


def rename_columns(table: Table, mapping: dict[str, str]) -> Table:
    """Rename columns by reference; unlisted columns keep their name."""
    new_columns = []
    for column in table.schema:
        renamed = None
        for reference, new_name in mapping.items():
            if column.matches(reference):
                renamed = new_name
                break
        new_columns.append(Column(renamed) if renamed else column)
    return Table(Schema(new_columns), table.rows)


def group_by(
    table: Table,
    keys: Sequence[Expression],
    key_names: Sequence[str],
    aggregations: Sequence[tuple[str, Sequence[Expression], str]],
    functions: FunctionRegistry | None = None,
) -> Table:
    """GROUP BY: ``aggregations`` are ``(agg_name, arg_expressions, out_name)``.

    Groups are emitted in first-seen order of their key, making results
    deterministic for deterministic input order.
    """
    if len(keys) != len(key_names):
        raise ValueError("keys and key_names must align")
    groups: dict[tuple, list[Any]] = {}
    order: list[tuple] = []
    for row in table.rows:
        key = tuple(k.evaluate(row, table.schema, functions) for k in keys)
        if key not in groups:
            groups[key] = [make_aggregate(name) for name, _, _ in aggregations]
            order.append(key)
        for aggregate, (_, args, _) in zip(groups[key], aggregations):
            values = [a.evaluate(row, table.schema, functions) for a in args]
            aggregate.step(*values)

    out_schema = Schema.of(*key_names, *(out for _, _, out in aggregations))
    out_rows = [
        key + tuple(aggregate.final() for aggregate in groups[key])
        for key in order
    ]
    return Table(out_schema, out_rows)


def distinct(table: Table) -> Table:
    """DISTINCT: unique rows, first occurrence order."""
    seen: set[tuple] = set()
    rows: list[tuple] = []
    for row in table.rows:
        if row not in seen:
            seen.add(row)
            rows.append(row)
    return Table(table.schema, rows)


def union_all(first: Table, second: Table) -> Table:
    """UNION ALL: positional, as in standard SQL; widths must match.

    The output keeps the first input's column names.
    """
    if len(first.schema) != len(second.schema):
        raise ValueError(
            f"UNION ALL width mismatch: {len(first.schema)} vs "
            f"{len(second.schema)} columns"
        )
    return Table(first.schema, list(first.rows) + list(second.rows))

"""SQL front-end for the relational engine.

Supports the subset Figure 4 needs, in SCOPE-flavoured form:

* ``SELECT`` lists with expressions, scalar UDFs and ``AS`` aliases,
* ``FROM t [AS] alias`` plus any number of ``INNER JOIN ... ON a.x = b.y``,
* ``WHERE`` with comparisons, arithmetic, AND/OR/NOT and UDF calls,
* ``GROUP BY`` with COUNT/SUM/MIN/MAX/AVG and the paper's ``argmax``,
* ``UNION ALL``, ``DISTINCT``,
* SCOPE-style assignment: ``name = SELECT ...;`` materialises the result
  into the catalog (the form the paper's Figure 4 uses).
"""

from repro.relational.sql.errors import SqlError
from repro.relational.sql.session import SqlSession

__all__ = ["SqlError", "SqlSession"]

"""AST node types produced by the parser."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.relational.expressions import Expression


@dataclass(frozen=True)
class SelectItem:
    """One entry of the SELECT list."""

    expression: Expression
    alias: str | None = None

    def output_name(self) -> str:
        """The column name this item produces."""
        if self.alias:
            return self.alias
        text = str(self.expression)
        # a bare column reference keeps its (unqualified) name
        if text.replace(".", "").replace("_", "").isalnum() and "." in text:
            return text.split(".")[-1]
        return text


@dataclass(frozen=True)
class TableRef:
    """``FROM name [AS] alias``."""

    name: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class JoinClause:
    """``INNER JOIN table ON left = right`` (equi-join only)."""

    table: TableRef
    left_column: str
    right_column: str


@dataclass(frozen=True)
class OrderItem:
    """One ``ORDER BY`` key; ``descending`` for ``DESC``."""

    expression: Expression
    descending: bool = False


@dataclass(frozen=True)
class SelectStatement:
    items: tuple[SelectItem, ...]
    source: TableRef
    joins: tuple[JoinClause, ...] = ()
    where: Expression | None = None
    group_by: tuple[Expression, ...] = ()
    distinct: bool = False
    union_with: "SelectStatement | None" = None
    #: ORDER BY / LIMIT bind to the nearest SELECT (a documented
    #: simplification of this subset — no cross-union ordering)
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None


@dataclass(frozen=True)
class Assignment:
    """SCOPE-style ``name = SELECT ...;`` — materialise into the catalog."""

    target: str
    statement: SelectStatement

"""Tokenizer for the SQL subset."""

from __future__ import annotations

from dataclasses import dataclass

from repro.relational.sql.errors import SqlError

KEYWORDS = frozenset(
    {
        "select", "from", "inner", "join", "on", "where", "group", "by",
        "as", "and", "or", "not", "distinct", "union", "all",
        "order", "limit", "asc", "desc",
    }
)

_SYMBOLS = ("<>", "<=", ">=", "!=", "=", "<", ">", "+", "-", "*", "/",
            "(", ")", ",", ".", ";")


@dataclass(frozen=True)
class Token:
    kind: str  # "keyword" | "ident" | "number" | "string" | "symbol" | "eof"
    text: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == "keyword" and self.text == word

    def is_symbol(self, symbol: str) -> bool:
        return self.kind == "symbol" and self.text == symbol


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql``; raises :class:`SqlError` on unexpected characters."""
    tokens: list[Token] = []
    index = 0
    length = len(sql)
    while index < length:
        char = sql[index]
        if char.isspace():
            index += 1
            continue
        if sql.startswith("--", index):  # line comment
            newline = sql.find("\n", index)
            index = length if newline == -1 else newline + 1
            continue
        if char.isalpha() or char == "_":
            start = index
            while index < length and (sql[index].isalnum() or sql[index] == "_"):
                index += 1
            word = sql[start:index]
            kind = "keyword" if word.lower() in KEYWORDS else "ident"
            text = word.lower() if kind == "keyword" else word
            tokens.append(Token(kind, text, start))
            continue
        if char.isdigit():
            start = index
            while index < length and (sql[index].isdigit() or sql[index] == "."):
                index += 1
            tokens.append(Token("number", sql[start:index], start))
            continue
        if char == "'":
            start = index
            index += 1
            while index < length and sql[index] != "'":
                index += 1
            if index >= length:
                raise SqlError(f"unterminated string literal at offset {start}")
            tokens.append(Token("string", sql[start + 1 : index], start))
            index += 1
            continue
        for symbol in _SYMBOLS:
            if sql.startswith(symbol, index):
                tokens.append(Token("symbol", symbol, index))
                index += len(symbol)
                break
        else:
            raise SqlError(f"unexpected character {char!r} at offset {index}")
    tokens.append(Token("eof", "", length))
    return tokens

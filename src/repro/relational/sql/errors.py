"""SQL front-end error type."""


class SqlError(ValueError):
    """Raised for lexing, parsing or planning failures, with position info."""

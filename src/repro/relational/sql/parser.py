"""Recursive-descent parser for the SQL subset.

Grammar (roughly)::

    script     := statement (";" statement)* [";"]
    statement  := [ident "="] select
    select     := SELECT [DISTINCT] items FROM table_ref join* [WHERE expr]
                  [GROUP BY expr ("," expr)*] [UNION ALL select]
    items      := item ("," item)*        item := expr [AS ident]
    table_ref  := ident [[AS] ident]
    join       := INNER JOIN table_ref ON column "=" column
    expr       := or_expr  (standard precedence: or < and < not <
                  comparison < additive < multiplicative < unary < primary)
    primary    := number | string | ident["." ident] | func "(" args ")" |
                  "(" expr ")" | "*"
"""

from __future__ import annotations

from repro.relational.expressions import (
    BinaryOp,
    ColumnRef,
    Comparison,
    Expression,
    FunctionCall,
    Literal,
    LogicalOp,
)
from repro.relational.sql.ast_nodes import (
    Assignment,
    JoinClause,
    OrderItem,
    SelectItem,
    SelectStatement,
    TableRef,
)
from repro.relational.sql.errors import SqlError
from repro.relational.sql.lexer import Token, tokenize


class Parser:
    def __init__(self, sql: str) -> None:
        self.sql = sql
        self.tokens = tokenize(sql)
        self.position = 0

    # -- token plumbing ------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.peek()
        if token.kind != "eof":
            self.position += 1
        return token

    def expect_keyword(self, word: str) -> Token:
        token = self.peek()
        if not token.is_keyword(word):
            raise SqlError(
                f"expected {word.upper()!r} at offset {token.position}, "
                f"got {token.text!r}"
            )
        return self.advance()

    def expect_symbol(self, symbol: str) -> Token:
        token = self.peek()
        if not token.is_symbol(symbol):
            raise SqlError(
                f"expected {symbol!r} at offset {token.position}, got {token.text!r}"
            )
        return self.advance()

    def expect_ident(self) -> Token:
        token = self.peek()
        if token.kind != "ident":
            raise SqlError(
                f"expected identifier at offset {token.position}, got {token.text!r}"
            )
        return self.advance()

    def accept_keyword(self, word: str) -> bool:
        if self.peek().is_keyword(word):
            self.advance()
            return True
        return False

    def accept_symbol(self, symbol: str) -> bool:
        if self.peek().is_symbol(symbol):
            self.advance()
            return True
        return False

    # -- statements ----------------------------------------------------------

    def parse_script(self) -> list[Assignment | SelectStatement]:
        statements: list[Assignment | SelectStatement] = []
        while not self.peek().is_symbol(";") and self.peek().kind != "eof":
            statements.append(self.parse_statement())
            while self.accept_symbol(";"):
                pass
        return statements

    def parse_statement(self) -> Assignment | SelectStatement:
        if self.peek().kind == "ident" and self.peek(1).is_symbol("="):
            target = self.advance().text
            self.expect_symbol("=")
            return Assignment(target=target, statement=self.parse_select())
        return self.parse_select()

    def parse_select(self) -> SelectStatement:
        self.expect_keyword("select")
        is_distinct = self.accept_keyword("distinct")
        items = [self.parse_select_item()]
        while self.accept_symbol(","):
            items.append(self.parse_select_item())
        self.expect_keyword("from")
        source = self.parse_table_ref()
        joins: list[JoinClause] = []
        while self.peek().is_keyword("inner") or self.peek().is_keyword("join"):
            joins.append(self.parse_join())
        where = None
        if self.accept_keyword("where"):
            where = self.parse_expression()
        group_by: list[Expression] = []
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            group_by.append(self.parse_expression())
            while self.accept_symbol(","):
                group_by.append(self.parse_expression())
        union_with = None
        if self.accept_keyword("union"):
            self.expect_keyword("all")
            union_with = self.parse_select()
        order_by: list[OrderItem] = []
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            order_by.append(self.parse_order_item())
            while self.accept_symbol(","):
                order_by.append(self.parse_order_item())
        limit = None
        if self.accept_keyword("limit"):
            token = self.peek()
            if token.kind != "number" or "." in token.text:
                raise SqlError(
                    f"LIMIT expects an integer at offset {token.position}"
                )
            self.advance()
            limit = int(token.text)
        return SelectStatement(
            items=tuple(items),
            source=source,
            joins=tuple(joins),
            where=where,
            group_by=tuple(group_by),
            distinct=is_distinct,
            union_with=union_with,
            order_by=tuple(order_by),
            limit=limit,
        )

    def parse_order_item(self) -> OrderItem:
        expression = self.parse_expression()
        descending = False
        if self.accept_keyword("desc"):
            descending = True
        else:
            self.accept_keyword("asc")
        return OrderItem(expression=expression, descending=descending)

    def parse_select_item(self) -> SelectItem:
        expression = self.parse_expression()
        alias = None
        if self.accept_keyword("as"):
            alias = self.expect_ident().text
        elif self.peek().kind == "ident" and not self.peek(0).is_keyword("from"):
            # implicit alias: `SELECT expr name` — only when next token is a
            # bare identifier followed by , FROM or EOF-ish context
            if self.peek(1).is_symbol(",") or self.peek(1).is_keyword("from"):
                alias = self.advance().text
        return SelectItem(expression=expression, alias=alias)

    def parse_table_ref(self) -> TableRef:
        name = self.expect_ident().text
        alias = None
        if self.accept_keyword("as"):
            alias = self.expect_ident().text
        elif self.peek().kind == "ident":
            alias = self.advance().text
        return TableRef(name=name, alias=alias)

    def parse_join(self) -> JoinClause:
        self.accept_keyword("inner")
        self.expect_keyword("join")
        table = self.parse_table_ref()
        self.expect_keyword("on")
        left = self.parse_column_name()
        self.expect_symbol("=")
        right = self.parse_column_name()
        return JoinClause(table=table, left_column=left, right_column=right)

    def parse_column_name(self) -> str:
        first = self.expect_ident().text
        if self.accept_symbol("."):
            second = self.expect_ident().text
            return f"{first}.{second}"
        return first

    # -- expressions -----------------------------------------------------------

    def parse_expression(self) -> Expression:
        return self.parse_or()

    def parse_or(self) -> Expression:
        left = self.parse_and()
        operands = [left]
        while self.accept_keyword("or"):
            operands.append(self.parse_and())
        if len(operands) == 1:
            return left
        return LogicalOp("or", tuple(operands))

    def parse_and(self) -> Expression:
        left = self.parse_not()
        operands = [left]
        while self.accept_keyword("and"):
            operands.append(self.parse_not())
        if len(operands) == 1:
            return left
        return LogicalOp("and", tuple(operands))

    def parse_not(self) -> Expression:
        if self.accept_keyword("not"):
            return LogicalOp("not", (self.parse_not(),))
        return self.parse_comparison()

    def parse_comparison(self) -> Expression:
        left = self.parse_additive()
        token = self.peek()
        if token.kind == "symbol" and token.text in ("=", "<>", "!=", "<", "<=", ">", ">="):
            self.advance()
            right = self.parse_additive()
            return Comparison(token.text, left, right)
        return left

    def parse_additive(self) -> Expression:
        left = self.parse_multiplicative()
        while True:
            token = self.peek()
            if token.kind == "symbol" and token.text in ("+", "-"):
                self.advance()
                left = BinaryOp(token.text, left, self.parse_multiplicative())
            else:
                return left

    def parse_multiplicative(self) -> Expression:
        left = self.parse_unary()
        while True:
            token = self.peek()
            if token.kind == "symbol" and token.text in ("*", "/"):
                self.advance()
                left = BinaryOp(token.text, left, self.parse_unary())
            else:
                return left

    def parse_unary(self) -> Expression:
        if self.accept_symbol("-"):
            return BinaryOp("-", Literal(0), self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> Expression:
        token = self.peek()
        if token.kind == "number":
            self.advance()
            value = float(token.text) if "." in token.text else int(token.text)
            return Literal(value)
        if token.kind == "string":
            self.advance()
            return Literal(token.text)
        if token.is_symbol("("):
            self.advance()
            inner = self.parse_expression()
            self.expect_symbol(")")
            return inner
        if token.is_symbol("*"):
            # COUNT(*) — planner treats Literal(1) as "any row"
            self.advance()
            return Literal(1)
        if token.kind == "ident":
            name = self.advance().text
            if self.peek().is_symbol("("):
                self.advance()
                arguments: list[Expression] = []
                if not self.peek().is_symbol(")"):
                    arguments.append(self.parse_expression())
                    while self.accept_symbol(","):
                        arguments.append(self.parse_expression())
                self.expect_symbol(")")
                return FunctionCall(name, tuple(arguments))
            if self.accept_symbol("."):
                second = self.expect_ident().text
                return ColumnRef(f"{name}.{second}")
            return ColumnRef(name)
        raise SqlError(
            f"unexpected token {token.text!r} at offset {token.position}"
        )


def parse_script(sql: str) -> list[Assignment | SelectStatement]:
    """Parse a semicolon-separated script."""
    return Parser(sql).parse_script()


def parse_statement(sql: str) -> Assignment | SelectStatement:
    """Parse a single statement, rejecting trailing garbage."""
    parser = Parser(sql)
    statement = parser.parse_statement()
    while parser.accept_symbol(";"):
        pass
    trailing = parser.peek()
    if trailing.kind != "eof":
        raise SqlError(
            f"unexpected trailing input at offset {trailing.position}: "
            f"{trailing.text!r}"
        )
    return statement

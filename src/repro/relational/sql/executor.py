"""Plan and execute parsed statements against an Engine.

Planning is straightforward (no cost-based optimisation): scans bind table
aliases, joins apply in writing order using the engine's configured
physical strategy, then WHERE, then GROUP BY / projection, then DISTINCT
and UNION ALL.  Aggregate calls are recognised anywhere in the SELECT list
when a GROUP BY is present (or when every item is an aggregate — implicit
single-group aggregation).
"""

from __future__ import annotations

from repro.relational.aggregates import is_aggregate
from repro.relational.engine import Engine
from repro.relational.expressions import Expression, FunctionCall
from repro.relational.operators import (
    distinct,
    group_by,
    project,
    select_rows,
    union_all,
)
from repro.relational.sql.ast_nodes import (
    Assignment,
    SelectItem,
    SelectStatement,
    TableRef,
)
from repro.relational.sql.errors import SqlError
from repro.relational.table import Table


def execute_statement(
    engine: Engine, statement: Assignment | SelectStatement
) -> Table:
    """Execute one parsed statement; assignments also materialise."""
    if isinstance(statement, Assignment):
        result = _execute_select(engine, statement.statement)
        engine.materialize(statement.target, result)
        return result
    return _execute_select(engine, statement)


def _bind(engine: Engine, ref: TableRef) -> Table:
    table = engine.scan(ref.name)
    return table.with_alias(ref.binding)


def _execute_select(engine: Engine, select: SelectStatement) -> Table:
    current = _bind(engine, select.source)

    for join in select.joins:
        right = _bind(engine, join.table)
        left_key, right_key = join.left_column, join.right_column
        # the ON clause may name the columns in either order
        if not current.schema.has(left_key) and right.schema.has(left_key):
            left_key, right_key = right_key, left_key
        if not current.schema.has(left_key):
            raise SqlError(
                f"join column {join.left_column!r} not found in either input"
            )
        if not right.schema.has(right_key):
            raise SqlError(
                f"join column {right_key!r} not found in joined table "
                f"{join.table.name!r}"
            )
        current = engine.join(current, right, left_key, right_key)

    if select.where is not None:
        current = select_rows(current, select.where, engine.functions)

    # ORDER BY may reference columns the SELECT list drops (standard SQL);
    # in that case sort the pre-projection rows — projection is
    # order-preserving.  Keys naming output columns sort the output.
    sort_before_projection = False
    if select.order_by:
        output_names = {item.output_name() for item in select.items}
        for order_item in select.order_by:
            refs = order_item.expression.referenced_columns()
            if not all(ref in output_names for ref in refs):
                sort_before_projection = True
    if sort_before_projection:
        current = _sorted_table(engine, current, select.order_by)

    current = _project_or_aggregate(engine, current, select)

    if select.distinct:
        current = distinct(current)

    if select.union_with is not None:
        other = _execute_select(engine, select.union_with)
        current = union_all(current, other)

    if select.order_by and not sort_before_projection:
        current = _sorted_table(engine, current, select.order_by)

    if select.limit is not None:
        current = Table(current.schema, current.rows[: select.limit])

    return current


def _sorted_table(engine: Engine, table: Table, order_by) -> Table:
    """Stable multi-key sort, least-significant key first."""
    rows = list(table.rows)
    for item in reversed(order_by):
        rows.sort(
            key=lambda row, expr=item.expression: expr.evaluate(
                row, table.schema, engine.functions
            ),
            reverse=item.descending,
        )
    return Table(table.schema, rows)


def _is_aggregate_call(expression: Expression) -> bool:
    return isinstance(expression, FunctionCall) and is_aggregate(expression.name)


def _project_or_aggregate(
    engine: Engine, table: Table, select: SelectStatement
) -> Table:
    has_aggregates = any(_is_aggregate_call(item.expression) for item in select.items)
    if not select.group_by and not has_aggregates:
        expressions = [
            (item.expression, item.output_name()) for item in select.items
        ]
        return project(table, expressions, engine.functions)

    # aggregation path
    keys: list[Expression] = list(select.group_by)
    key_names: list[str] = []
    aggregations: list[tuple[str, list[Expression], str]] = []
    key_items: list[tuple[int, int]] = []  # (item position, key position)
    agg_items: list[tuple[int, int]] = []  # (item position, agg position)

    for position, item in enumerate(select.items):
        if _is_aggregate_call(item.expression):
            call = item.expression
            assert isinstance(call, FunctionCall)
            aggregations.append(
                (call.name, list(call.arguments), item.output_name())
            )
            agg_items.append((position, len(aggregations) - 1))
        else:
            key_position = _match_group_key(item, keys)
            key_items.append((position, key_position))

    if not keys and key_items:
        raise SqlError(
            "non-aggregate SELECT items require a GROUP BY clause"
        )
    key_names = [_key_name(select.items, keys, index) for index in range(len(keys))]

    grouped = group_by(
        table,
        keys,
        key_names,
        [(name, args, out) for name, args, out in aggregations],
        engine.functions,
    )

    # reorder output columns to match the SELECT list
    ordered_refs: list[str] = []
    for position in range(len(select.items)):
        for item_position, key_position in key_items:
            if item_position == position:
                ordered_refs.append(key_names[key_position])
        for item_position, agg_position in agg_items:
            if item_position == position:
                ordered_refs.append(aggregations[agg_position][2])
    from repro.relational.expressions import ColumnRef

    expressions = [(ColumnRef(ref), ref) for ref in ordered_refs]
    return project(grouped, expressions, engine.functions)


def _match_group_key(item: SelectItem, keys: list[Expression]) -> int:
    """Find the GROUP BY key this select item corresponds to."""
    for index, key in enumerate(keys):
        if str(key) == str(item.expression):
            return index
    raise SqlError(
        f"SELECT item {item.expression} is neither an aggregate nor a "
        "GROUP BY key"
    )


def _key_name(
    items: tuple[SelectItem, ...], keys: list[Expression], key_index: int
) -> str:
    """Output name of a group key: the alias of the matching select item."""
    for item in items:
        if not _is_aggregate_call(item.expression) and str(item.expression) == str(
            keys[key_index]
        ):
            return item.output_name()
    text = str(keys[key_index])
    return text.split(".")[-1] if "." in text else text

"""SqlSession — the user-facing entry point of the SQL layer."""

from __future__ import annotations

from typing import Any, Callable

from repro.relational.engine import Engine
from repro.relational.sql.executor import execute_statement
from repro.relational.sql.parser import parse_script
from repro.relational.table import Table


class SqlSession:
    """Parse-and-run convenience wrapper around an :class:`Engine`.

    >>> session = SqlSession()
    >>> session.register("t", Table.from_dicts(["a", "b"],
    ...     [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]))
    >>> session.run("SELECT a FROM t WHERE a > 1").rows
    [(2,)]
    """

    def __init__(self, engine: Engine | None = None) -> None:
        self.engine = engine or Engine()

    def register(self, name: str, table: Table) -> None:
        self.engine.catalog.register(name, table)

    def register_function(self, name: str, function: Callable[..., Any]) -> None:
        self.engine.register_function(name, function)

    def run(self, sql: str) -> Table:
        """Execute a script; returns the result of the *last* statement."""
        statements = parse_script(sql)
        if not statements:
            raise ValueError("empty SQL script")
        result: Table | None = None
        for statement in statements:
            result = execute_statement(self.engine, statement)
        assert result is not None
        return result

    def table(self, name: str) -> Table:
        return self.engine.catalog.get(name)

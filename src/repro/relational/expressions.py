"""Scalar expression AST for WHERE/SELECT clauses.

Expressions evaluate against a row + schema pair.  Scalar UDFs (the paper's
``ModulGain``) are looked up in a function registry supplied at evaluation
time, which is how the SQL layer injects algorithm state without the engine
knowing anything about modularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.relational.schema import Schema

FunctionRegistry = Mapping[str, Callable[..., Any]]


class ExpressionError(ValueError):
    """Raised for evaluation failures (unknown function, bad operand...)."""


class Expression:
    """Base class; subclasses implement :meth:`evaluate`."""

    def evaluate(
        self, row: tuple, schema: Schema, functions: FunctionRegistry | None = None
    ) -> Any:
        raise NotImplementedError

    def referenced_columns(self) -> set[str]:
        """Column references appearing in this expression tree."""
        return set()


@dataclass(frozen=True)
class Literal(Expression):
    value: Any

    def evaluate(self, row, schema, functions=None):
        return self.value

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class ColumnRef(Expression):
    reference: str

    def evaluate(self, row, schema, functions=None):
        return row[schema.index_of(self.reference)]

    def referenced_columns(self) -> set[str]:
        return {self.reference}

    def __str__(self) -> str:
        return self.reference


_COMPARISONS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Comparison(Expression):
    operator: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.operator not in _COMPARISONS:
            raise ExpressionError(f"unknown comparison operator {self.operator!r}")

    def evaluate(self, row, schema, functions=None):
        left = self.left.evaluate(row, schema, functions)
        right = self.right.evaluate(row, schema, functions)
        return _COMPARISONS[self.operator](left, right)

    def referenced_columns(self) -> set[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def __str__(self) -> str:
        return f"({self.left} {self.operator} {self.right})"


_ARITHMETIC: dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


@dataclass(frozen=True)
class BinaryOp(Expression):
    operator: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.operator not in _ARITHMETIC:
            raise ExpressionError(f"unknown arithmetic operator {self.operator!r}")

    def evaluate(self, row, schema, functions=None):
        left = self.left.evaluate(row, schema, functions)
        right = self.right.evaluate(row, schema, functions)
        try:
            return _ARITHMETIC[self.operator](left, right)
        except ZeroDivisionError:
            raise ExpressionError(f"division by zero in {self}") from None

    def referenced_columns(self) -> set[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def __str__(self) -> str:
        return f"({self.left} {self.operator} {self.right})"


@dataclass(frozen=True)
class LogicalOp(Expression):
    operator: str  # "and" | "or" | "not"
    operands: tuple[Expression, ...]

    def __post_init__(self) -> None:
        if self.operator not in ("and", "or", "not"):
            raise ExpressionError(f"unknown logical operator {self.operator!r}")
        if self.operator == "not" and len(self.operands) != 1:
            raise ExpressionError("NOT takes exactly one operand")

    def evaluate(self, row, schema, functions=None):
        if self.operator == "not":
            return not self.operands[0].evaluate(row, schema, functions)
        if self.operator == "and":
            return all(op.evaluate(row, schema, functions) for op in self.operands)
        return any(op.evaluate(row, schema, functions) for op in self.operands)

    def referenced_columns(self) -> set[str]:
        refs: set[str] = set()
        for operand in self.operands:
            refs |= operand.referenced_columns()
        return refs

    def __str__(self) -> str:
        if self.operator == "not":
            return f"(not {self.operands[0]})"
        joiner = f" {self.operator} "
        return "(" + joiner.join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A scalar UDF call, e.g. ``ModulGain(query1, query2)``."""

    name: str
    arguments: tuple[Expression, ...]

    def evaluate(self, row, schema, functions=None):
        if not functions or self.name not in functions:
            raise ExpressionError(
                f"unknown function {self.name!r}; registered: "
                f"{sorted(functions) if functions else []}"
            )
        values = [arg.evaluate(row, schema, functions) for arg in self.arguments]
        return functions[self.name](*values)

    def referenced_columns(self) -> set[str]:
        refs: set[str] = set()
        for argument in self.arguments:
            refs |= argument.referenced_columns()
        return refs

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.arguments)
        return f"{self.name}({args})"

"""In-memory tables: a schema plus a list of row tuples."""

from __future__ import annotations

import sys
from typing import Any, Iterable, Iterator

from repro.relational.schema import Column, Schema


class Table:
    """An immutable-by-convention relation.

    Rows are plain tuples in schema order.  Tables know how to estimate
    their serialised size, which the engine's I/O accounting (and through
    it the Table 9 reproduction) relies on.
    """

    def __init__(self, schema: Schema, rows: Iterable[tuple] = ()) -> None:
        self.schema = schema
        self.rows: list[tuple] = []
        width = len(schema)
        for row in rows:
            if len(row) != width:
                raise ValueError(
                    f"row {row!r} has {len(row)} values, schema has {width}"
                )
            self.rows.append(tuple(row))

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_dicts(cls, names: list[str], records: Iterable[dict]) -> "Table":
        """Build from dict records; ``names`` fixes the column order."""
        schema = Schema.of(*names)
        rows = [tuple(record[name] for name in names) for record in records]
        return cls(schema, rows)

    def with_alias(self, alias: str) -> "Table":
        """The same rows under a requalified schema (``FROM t AS alias``)."""
        return Table(self.schema.requalify(alias), self.rows)

    # -- access ----------------------------------------------------------------

    def column_values(self, reference: str) -> list[Any]:
        index = self.schema.index_of(reference)
        return [row[index] for row in self.rows]

    def to_dicts(self) -> list[dict[str, Any]]:
        names = self.schema.qualified_names()
        return [dict(zip(names, row)) for row in self.rows]

    def sorted_by(self, *references: str) -> "Table":
        """Rows ordered by the given columns (stable)."""
        indexes = [self.schema.index_of(ref) for ref in references]
        ordered = sorted(self.rows, key=lambda row: tuple(row[i] for i in indexes))
        return Table(self.schema, ordered)

    # -- statistics --------------------------------------------------------------

    @property
    def row_count(self) -> int:
        return len(self.rows)

    def estimated_bytes(self) -> int:
        """Rough serialised size: strings by length, numbers at 8 bytes."""
        total = 0
        for row in self.rows:
            for value in row:
                if isinstance(value, str):
                    total += len(value) + 1
                elif value is None:
                    total += 1
                else:
                    total += 8
        return total

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Table)
            and self.schema == other.schema
            and sorted(map(repr, self.rows)) == sorted(map(repr, other.rows))
        )

    def __repr__(self) -> str:
        return f"Table({self.schema!r}, rows={len(self.rows)})"

    def pretty(self, limit: int = 20) -> str:
        """ASCII rendering for examples and debugging."""
        names = self.schema.qualified_names()
        shown = self.rows[:limit]
        widths = [
            max(len(name), *(len(str(row[i])) for row in shown), 1)
            if shown
            else len(name)
            for i, name in enumerate(names)
        ]
        header = " | ".join(name.ljust(w) for name, w in zip(names, widths))
        separator = "-+-".join("-" * w for w in widths)
        body = [
            " | ".join(str(value).ljust(w) for value, w in zip(row, widths))
            for row in shown
        ]
        footer = [] if len(self.rows) <= limit else [f"... ({len(self.rows)} rows)"]
        return "\n".join([header, separator, *body, *footer])

"""Sizing knobs for the Q&A simulator."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class QAConfig:
    """Parameters of :class:`repro.qa.QAGenerator`."""

    seed: int = 2016
    #: total posts (questions + answers + shares)
    posts: int = 60_000
    #: askers (casual users posing questions)
    askers: int = 500
    #: writers per topic scale (the platform's "top writers")
    writers_per_topic: float = 2.0
    #: probability that a question receives an expert answer
    answer_rate: float = 0.6
    #: probability that a question explicitly asks a named expert (A2A)
    ask_to_answer_rate: float = 0.2
    #: probability that a post is a share of a previous answer
    share_rate: float = 0.15
    #: Q&A posts are long-form relative to tweets
    max_chars: int = 500

    def __post_init__(self) -> None:
        if self.posts < 0:
            raise ValueError("posts must be non-negative")
        for name in ("answer_rate", "ask_to_answer_rate", "share_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0,1], got {value}")
        if self.max_chars < 100:
            raise ValueError("max_chars must be at least 100")

"""Long-form Q&A text composition."""

from __future__ import annotations

import random

from repro.utils.text import truncate_to_chars

QUESTION_TEMPLATES: tuple[str, ...] = (
    "what is the best way to get started with {kw}?",
    "how do experienced people keep up with {kw}?",
    "what should everyone know about {kw} before diving in?",
    "which sources do you trust for {kw} news and analysis?",
    "is {kw} worth following closely this year and why?",
    "what are the most common misconceptions about {kw}?",
)

A2A_TEMPLATES: tuple[str, ...] = (
    "@{name} you seem to know {kw} well, could you weigh in?",
    "asking @{name} directly since they cover {kw}: thoughts?",
    "@{name} what is your honest take on {kw} these days?",
)

ANSWER_OPENERS: tuple[str, ...] = (
    "short answer: it depends, but for {kw} the fundamentals matter most.",
    "i have followed {kw} for years and the pattern is always the same.",
    "most takes on {kw} miss the context, so let me lay it out properly.",
    "good question. the {kw} landscape changed a lot recently.",
)

ANSWER_BODY: tuple[str, ...] = (
    "start with the primary sources, then cross-check against the community "
    "consensus before forming an opinion.",
    "the signal to noise ratio is poor, so curate a short list of voices "
    "and ignore the rest.",
    "watch the fundamentals, not the headlines; the headlines lag by weeks.",
    "the biggest mistake newcomers make is extrapolating from one season "
    "of data.",
)

SHARE_PREFIX = "sharing this excellent answer by @{name}: "


def compose_question(
    keyword: str, rng: random.Random, max_chars: int = 500
) -> str:
    return truncate_to_chars(
        rng.choice(QUESTION_TEMPLATES).format(kw=keyword), max_chars
    )


def compose_a2a(
    keyword: str, screen_name: str, rng: random.Random, max_chars: int = 500
) -> str:
    return truncate_to_chars(
        rng.choice(A2A_TEMPLATES).format(kw=keyword, name=screen_name),
        max_chars,
    )


def compose_answer(
    keyword: str, rng: random.Random, max_chars: int = 500
) -> str:
    text = (
        rng.choice(ANSWER_OPENERS).format(kw=keyword)
        + " "
        + rng.choice(ANSWER_BODY)
    )
    return truncate_to_chars(text, max_chars)


def compose_share(
    screen_name: str, answer_text: str, max_chars: int = 500
) -> str:
    return truncate_to_chars(
        SHARE_PREFIX.format(name=screen_name) + answer_text, max_chars
    )

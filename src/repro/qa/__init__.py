"""S12 (extension) — a Quora-style Q&A platform substrate.

§8 names "expanding into other social networks such as Quora and
Facebook" as future work, and §7 argues e# "can work with any Expertise
Retrieval system".  This package demonstrates both: a Q&A platform whose
record types map onto the same statistical skeleton the detector
consumes —

* an **answer** plays the role of a tweet (authored topical content),
* an **ask-to-answer** request plays the role of a mention (the
  community routing attention at a presumed expert),
* a **share** of an answer plays the role of a retweet (endorsement of
  authored content),

so :class:`repro.detector.PalCountsDetector` and the whole e# online
path run on it *unchanged*, expansion collection included.  Post length
runs to 500 characters and volumes are lower per author, so the corpus
statistics genuinely differ from the microblog's — which is the point of
the exercise.
"""

from repro.qa.config import QAConfig
from repro.qa.platform import QAPlatform
from repro.qa.generator import QAGenerator, generate_qa_platform

__all__ = ["QAConfig", "QAGenerator", "QAPlatform", "generate_qa_platform"]

"""Q&A traffic generation.

The conversation unit is the question: an asker poses it about a topic
(phrased with one of the topic's surface forms — the same recall wedge as
on the microblog), optionally asking a named writer directly (A2A →
mention).  Answered questions get an expert answer whose text names the
asker's keyword; later posts may share an answer (→ retweet).
"""

from __future__ import annotations

import bisect
import itertools
import math
import random

from repro.microblog.generator import TWEET_KIND_WEIGHTS
from repro.microblog.textgen import make_description, make_screen_name
from repro.microblog.tweets import Tweet
from repro.microblog.users import UserProfile
from repro.qa.config import QAConfig
from repro.qa.platform import QAPlatform
from repro.qa.textgen import (
    compose_a2a,
    compose_answer,
    compose_question,
    compose_share,
)
from repro.utils.rng import SeedSequenceFactory
from repro.worldmodel.model import Topic, WorldModel
from repro.worldmodel.vocab import person_name


class QAGenerator:
    """Builds a :class:`QAPlatform` from a :class:`WorldModel`."""

    def __init__(self, world: WorldModel, config: QAConfig | None = None) -> None:
        self.world = world
        self.config = config or QAConfig()
        self._rng = SeedSequenceFactory(self.config.seed).stream("qa")
        self._next_user_id = itertools.count(1)
        self._next_post_id = itertools.count(1)
        self._taken: set[str] = set()

    # -- population ----------------------------------------------------------

    def create_users(self) -> tuple[list[UserProfile], list[UserProfile]]:
        """Returns (writers, askers)."""
        rng = self._rng
        writers: list[UserProfile] = []
        max_pop = max(t.popularity for t in self.world.topics)
        for topic in self.world.topics:
            if topic.microblog_affinity < 0.5:
                continue  # search-only interests have no writers either
            count = max(
                1,
                round(
                    self.config.writers_per_topic
                    * math.sqrt(topic.popularity / max_pop)
                    * 2
                ),
            )
            for _ in range(count):
                writers.append(self._make_user("focused_expert", (topic,)))
        askers = [
            self._make_user("casual", ()) for _ in range(self.config.askers)
        ]
        return writers, askers

    def _make_user(self, persona: str, topics: tuple[Topic, ...]) -> UserProfile:
        rng = self._rng
        anchor = topics[0].name if topics else "life"
        stem = (
            person_name(rng).replace(" ", "_")
            if (persona == "casual" or rng.random() < 0.5)
            else anchor
        )
        preferred = {}
        for topic in topics:
            weights = [
                kw.weight * TWEET_KIND_WEIGHTS.get(kw.kind, 1.0)
                for kw in topic.keywords
            ]
            total = sum(weights)
            point = rng.random() * total
            acc = 0.0
            chosen = topic.keywords[-1].text
            for keyword, weight in zip(topic.keywords, weights):
                acc += weight
                if point <= acc:
                    chosen = keyword.text
                    break
            preferred[topic.topic_id] = (chosen,)
        return UserProfile(
            user_id=next(self._next_user_id),
            screen_name=make_screen_name(stem, rng, self._taken),
            description=make_description(persona, anchor, rng),
            persona=persona,
            expert_topics=tuple(t.topic_id for t in topics),
            preferred_keywords=preferred,
            followers=int(rng.lognormvariate(math.log(80), 1.0)),
            verified=persona != "casual" and rng.random() < 0.1,
        )

    # -- traffic -----------------------------------------------------------------

    def build(self) -> QAPlatform:
        platform = QAPlatform()
        writers, askers = self.create_users()
        for user in writers + askers:
            platform.add_user(user)
        rng = self._rng
        config = self.config

        writers_by_topic: dict[int, list[UserProfile]] = {}
        for writer in writers:
            for topic_id in writer.expert_topics:
                writers_by_topic.setdefault(topic_id, []).append(writer)

        topics = [t for t in self.world.topics if t.topic_id in writers_by_topic]
        cumulative = list(itertools.accumulate(t.popularity for t in topics))
        total = cumulative[-1]
        recent_answers: list[int] = []
        posts = 0

        while posts < config.posts:
            # occasionally share an earlier answer
            if recent_answers and rng.random() < config.share_rate:
                answer = platform.tweet(rng.choice(recent_answers))
                sharer = rng.choice(askers)
                if sharer.user_id != answer.author_id:
                    author = platform.user(answer.author_id)
                    platform.add_post(
                        Tweet(
                            tweet_id=next(self._next_post_id),
                            author_id=sharer.user_id,
                            text=compose_share(
                                author.screen_name, answer.text,
                                config.max_chars,
                            ),
                            mentions=(answer.author_id,),
                            retweet_of=answer.tweet_id,
                            topic_id=answer.topic_id,
                        ),
                        kind="share",
                    )
                    posts += 1
                    continue

            topic = topics[bisect.bisect_left(cumulative, rng.random() * total)]
            keyword = self._question_keyword(topic)
            asker = rng.choice(askers)
            topic_writers = writers_by_topic[topic.topic_id]

            if rng.random() < config.ask_to_answer_rate:
                target = rng.choice(topic_writers)
                question = Tweet(
                    tweet_id=next(self._next_post_id),
                    author_id=asker.user_id,
                    text=compose_a2a(
                        keyword, target.screen_name, rng, config.max_chars
                    ),
                    mentions=(target.user_id,),
                    topic_id=topic.topic_id,
                )
            else:
                question = Tweet(
                    tweet_id=next(self._next_post_id),
                    author_id=asker.user_id,
                    text=compose_question(keyword, rng, config.max_chars),
                    topic_id=topic.topic_id,
                )
            platform.add_post(question, kind="question")
            posts += 1
            if posts >= config.posts:
                break

            if rng.random() < config.answer_rate:
                writer = rng.choice(topic_writers)
                answer_keyword = writer.preferred_keywords.get(
                    topic.topic_id, (keyword,)
                )[0]
                answer = Tweet(
                    tweet_id=next(self._next_post_id),
                    author_id=writer.user_id,
                    text=compose_answer(answer_keyword, rng, config.max_chars),
                    topic_id=topic.topic_id,
                )
                platform.add_post(
                    answer, kind="answer", answers=question.tweet_id
                )
                posts += 1
                recent_answers.append(answer.tweet_id)
                if len(recent_answers) > 200:
                    del recent_answers[:100]
        return platform

    def _question_keyword(self, topic: Topic) -> str:
        """Askers use the full surface-form distribution (search-like)."""
        rng = self._rng
        total = sum(kw.weight for kw in topic.keywords)
        point = rng.random() * total
        acc = 0.0
        for keyword in topic.keywords:
            acc += keyword.weight
            if point <= acc:
                return keyword.text
        return topic.keywords[-1].text


def generate_qa_platform(
    world: WorldModel, config: QAConfig | None = None
) -> QAPlatform:
    """One-call convenience."""
    return QAGenerator(world, config).build()

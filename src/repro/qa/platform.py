"""Q&A platform storage.

Extends :class:`repro.microblog.MicroblogPlatform` (so every detector
code path works verbatim) with post-kind bookkeeping: each stored post is
a question, an answer, or a share.
"""

from __future__ import annotations

from repro.microblog.platform import MicroblogPlatform
from repro.microblog.tweets import Tweet

POST_KINDS = ("question", "answer", "share")


class QAPlatform(MicroblogPlatform):
    """A MicroblogPlatform whose posts carry Q&A semantics."""

    def __init__(self) -> None:
        super().__init__()
        self._kinds: dict[int, str] = {}
        self._answers_to: dict[int, int] = {}  # answer id → question id

    def add_post(
        self, post: Tweet, kind: str, answers: int | None = None
    ) -> None:
        """Store a post with its Q&A role.

        ``answers`` links an answer to its question.  Shares must carry
        ``retweet_of`` (the answer being shared), mirroring the microblog
        invariant the detector's RI feature relies on.
        """
        if kind not in POST_KINDS:
            raise ValueError(f"unknown post kind {kind!r}")
        if kind == "share" and post.retweet_of is None:
            raise ValueError("a share must reference the answer it shares")
        if kind == "answer" and answers is None:
            raise ValueError("an answer must reference its question")
        self.add_tweet(post)
        self._kinds[post.tweet_id] = kind
        if answers is not None:
            self._answers_to[post.tweet_id] = answers

    def kind_of(self, post_id: int) -> str:
        try:
            return self._kinds[post_id]
        except KeyError:
            raise KeyError(f"unknown post {post_id}") from None

    def question_of(self, answer_id: int) -> int:
        try:
            return self._answers_to[answer_id]
        except KeyError:
            raise KeyError(f"post {answer_id} is not an answer") from None

    def count_kind(self, kind: str) -> int:
        if kind not in POST_KINDS:
            raise ValueError(f"unknown post kind {kind!r}")
        return sum(1 for k in self._kinds.values() if k == kind)

    def __repr__(self) -> str:
        return (
            f"QAPlatform(users={self.user_count}, "
            f"questions={self.count_kind('question')}, "
            f"answers={self.count_kind('answer')}, "
            f"shares={self.count_kind('share')})"
        )

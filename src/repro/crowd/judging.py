"""Individual judgments and majority aggregation.

The task is framed as the paper's: *spot the non-experts* — flag accounts
offering no objective information about the topic.  A worker who does not
know the domain uses the ignore option; engaged workers judge correctly
with their reliability.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

from repro.crowd.workers import CrowdWorker


class Vote(enum.Enum):
    EXPERT = "expert"
    NON_EXPERT = "non_expert"
    SKIP = "skip"


@dataclass(frozen=True)
class Judgment:
    """One worker's vote on one (query, account) pair."""

    worker_id: int
    query: str
    user_id: int
    vote: Vote


def cast_vote(
    worker: CrowdWorker,
    domain: str,
    truly_relevant: bool,
    rng: random.Random,
) -> Vote:
    """Simulate one judgment given the ground-truth relevance."""
    if worker.is_spammer:
        return Vote.EXPERT if rng.random() < 0.5 else Vote.NON_EXPERT
    if not worker.knows(domain, rng):
        return Vote.SKIP
    correct = rng.random() < worker.reliability
    if truly_relevant:
        return Vote.EXPERT if correct else Vote.NON_EXPERT
    return Vote.NON_EXPERT if correct else Vote.EXPERT


def majority_vote(votes: list[Vote]) -> Vote:
    """Aggregate with majority voting; skips abstain.

    Ties (including all-skip) give the account the benefit of the doubt —
    the study *excludes* flagged non-experts rather than validating
    experts, so an unflagged account stays in.
    """
    non_expert = sum(1 for vote in votes if vote is Vote.NON_EXPERT)
    expert = sum(1 for vote in votes if vote is Vote.EXPERT)
    if non_expert > expert:
        return Vote.NON_EXPERT
    return Vote.EXPERT

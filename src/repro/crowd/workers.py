"""Crowd workers: reliability, background knowledge, spammers.

The paper notes the two difficulties of judging expertise: workers need
*some* topic knowledge to recognise experts, and the task is subjective.
Workers here have a per-domain knowledge probability and a reliability
(probability of judging correctly when they do engage); spammers answer
at random, which the gold-question screen is designed to catch.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.utils.rng import SeedSequenceFactory


@dataclass
class CrowdWorker:
    """One judge."""

    worker_id: int
    #: probability of a correct judgment when engaging with the question
    reliability: float
    #: probability of knowing enough about a given domain to engage;
    #: otherwise the worker uses the paper's "ignore the question" option
    knowledge: dict[str, float]
    is_spammer: bool = False
    #: filled by the gold-question screen
    passed_screen: bool = True

    def knows(self, domain: str, rng: random.Random) -> bool:
        return rng.random() < self.knowledge.get(domain, 0.5)

    def __post_init__(self) -> None:
        if not 0.0 <= self.reliability <= 1.0:
            raise ValueError(f"reliability must be in [0,1], got {self.reliability}")


@dataclass
class WorkerPool:
    """The 64-worker pool of §6.2.1."""

    workers: list[CrowdWorker] = field(default_factory=list)

    @classmethod
    def build(
        cls,
        domains: tuple[str, ...],
        seed: int = 2016,
        size: int = 64,
        spammer_fraction: float = 0.1,
    ) -> "WorkerPool":
        """Mint a deterministic pool: mostly diligent, a few spammers."""
        if size < 1:
            raise ValueError("pool size must be >= 1")
        if not 0.0 <= spammer_fraction < 1.0:
            raise ValueError("spammer_fraction must be in [0,1)")
        rng = SeedSequenceFactory(seed).stream("crowd/pool")
        workers: list[CrowdWorker] = []
        spammers = int(size * spammer_fraction)
        for worker_id in range(size):
            is_spammer = worker_id < spammers
            reliability = (
                rng.uniform(0.45, 0.55)
                if is_spammer
                else rng.uniform(0.8, 0.97)
            )
            knowledge = {
                domain: rng.uniform(0.35, 0.95) for domain in domains
            }
            workers.append(
                CrowdWorker(
                    worker_id=worker_id,
                    reliability=reliability,
                    knowledge=knowledge,
                    is_spammer=is_spammer,
                )
            )
        return cls(workers=workers)

    def screened(self) -> list[CrowdWorker]:
        """Workers that passed the gold-question screen."""
        return [w for w in self.workers if w.passed_screen]

    def run_gold_screen(
        self, seed: int = 2016, questions: int = 5, pass_threshold: float = 0.8
    ) -> None:
        """§6.2.1: 'We filtered spammers with trivial preliminary questions.'

        Gold questions are trivial (every diligent worker knows the answer)
        so a worker's pass probability is their reliability per question;
        spammers coin-flip and almost always fail a 4-of-5 bar.
        """
        rng = SeedSequenceFactory(seed).stream("crowd/gold")
        needed = int(questions * pass_threshold + 0.9999)
        for worker in self.workers:
            p_correct = 0.5 if worker.is_spammer else max(worker.reliability, 0.9)
            correct = sum(1 for _ in range(questions) if rng.random() < p_correct)
            worker.passed_screen = correct >= needed

    def __len__(self) -> int:
        return len(self.workers)

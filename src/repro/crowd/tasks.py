"""Task construction: interleaving, chunking, position randomisation.

§6.2.1: *"For each query, we generated up to 15 experts per algorithm and
interleaved the results. To avoid worker fatigue, we chunked the resulting
sets into smaller sets of at most 6 experts. We also randomized the order
to prevent the position bias."*
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.detector.ranking import RankedExpert


@dataclass(frozen=True)
class JudgingChunk:
    """One unit of crowd work: ≤6 experts for one query."""

    query: str
    expert_ids: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.expert_ids:
            raise ValueError("a judging chunk cannot be empty")


def interleave(
    first: list[RankedExpert], second: list[RankedExpert]
) -> list[RankedExpert]:
    """Alternate two ranked lists, deduplicating by user (first-seen wins).

    >>> interleave([], [])
    []
    """
    merged: list[RankedExpert] = []
    seen: set[int] = set()
    for index in range(max(len(first), len(second))):
        for source in (first, second):
            if index < len(source):
                expert = source[index]
                if expert.user_id not in seen:
                    seen.add(expert.user_id)
                    merged.append(expert)
    return merged


def build_chunks(
    query: str,
    experts: list[RankedExpert],
    rng: random.Random,
    chunk_size: int = 6,
) -> list[JudgingChunk]:
    """Randomise order, then slice into chunks of at most ``chunk_size``."""
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    ids = [expert.user_id for expert in experts]
    rng.shuffle(ids)
    return [
        JudgingChunk(query=query, expert_ids=tuple(ids[i : i + chunk_size]))
        for i in range(0, len(ids), chunk_size)
    ]

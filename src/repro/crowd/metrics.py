"""Crowd-derived quality metrics.

Figure 10's y-axis: *"The impurity is the proportion of results marked as
non relevant by the judges."*
"""

from __future__ import annotations

from typing import Iterable

from repro.crowd.study import StudyOutcome
from repro.detector.ranking import RankedExpert


def impurity(
    query: str, experts: Iterable[RankedExpert], outcome: StudyOutcome
) -> float:
    """Fraction of ``experts`` the majority flagged as non-experts.

    Experts without a judgment (possible when a sweep keeps a candidate
    the original study never saw) count as relevant — the conservative
    choice matching the exclude-non-experts protocol.  Returns 0.0 for an
    empty list.
    """
    experts = list(experts)
    if not experts:
        return 0.0
    flagged = sum(
        1 for expert in experts if outcome.is_non_expert(query, expert.user_id)
    )
    return flagged / len(experts)


def true_impurity(
    query: str,
    experts: Iterable[RankedExpert],
    relevance: dict[tuple[str, int], bool],
) -> float:
    """Ground-truth impurity (no crowd noise) — used to validate the crowd."""
    experts = list(experts)
    if not experts:
        return 0.0
    wrong = sum(
        1
        for expert in experts
        if not relevance.get((query, expert.user_id), False)
    )
    return wrong / len(experts)

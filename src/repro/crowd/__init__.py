"""S10 — Crowdsourcing study simulator (§6.2.1).

Reproduces the paper's quality-assessment machinery: 64 third-party
workers of varying reliability and background knowledge, spam screening
with trivial gold questions, result interleaving, chunks of at most 6
experts, randomised order, the *spot-the-non-expert* task framing, 3
judgments per expert, and majority voting.

Judgments are noisy functions of the world model's ground truth, so the
impurity statistics of Figure 10 are measurable — and can additionally be
validated against exact labels, which the paper could not do.
"""

from repro.crowd.workers import CrowdWorker, WorkerPool
from repro.crowd.tasks import JudgingChunk, build_chunks, interleave
from repro.crowd.judging import Judgment, Vote, majority_vote
from repro.crowd.study import CrowdStudy, StudyConfig
from repro.crowd.metrics import impurity

__all__ = [
    "CrowdStudy",
    "CrowdWorker",
    "Judgment",
    "JudgingChunk",
    "StudyConfig",
    "Vote",
    "WorkerPool",
    "build_chunks",
    "impurity",
    "interleave",
    "majority_vote",
]

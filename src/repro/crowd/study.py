"""The full crowd study: screen → chunk → 3-way judge → majority.

Ground-truth relevance of an account for a query: the account's user is a
genuine expert on the query's primary topic, or a broad expert whose beat
(domain) covers it.  This is the judgment an informed human would make
from the account's timeline, which is what the paper's workers were asked
to approximate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crowd.judging import Judgment, Vote, cast_vote, majority_vote
from repro.crowd.tasks import build_chunks, interleave
from repro.crowd.workers import WorkerPool
from repro.detector.ranking import RankedExpert
from repro.microblog.platform import MicroblogPlatform
from repro.utils.rng import SeedSequenceFactory
from repro.worldmodel.model import WorldModel


@dataclass(frozen=True)
class StudyConfig:
    seed: int = 2016
    judges_per_expert: int = 3
    chunk_size: int = 6
    pool_size: int = 64
    spammer_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.judges_per_expert < 1:
            raise ValueError("judges_per_expert must be >= 1")


@dataclass
class StudyOutcome:
    """Majority labels for every judged (query, user) pair."""

    labels: dict[tuple[str, int], Vote] = field(default_factory=dict)
    judgments: list[Judgment] = field(default_factory=list)

    def is_non_expert(self, query: str, user_id: int) -> bool:
        return self.labels.get((query, user_id)) is Vote.NON_EXPERT

    def judged_count(self) -> int:
        return len(self.labels)


class CrowdStudy:
    """Simulates the §6.2.1 protocol over a set of result lists."""

    def __init__(
        self,
        world: WorldModel,
        platform: MicroblogPlatform,
        config: StudyConfig | None = None,
    ) -> None:
        self.world = world
        self.platform = platform
        self.config = config or StudyConfig()
        self._factory = SeedSequenceFactory(self.config.seed)
        self.pool = WorkerPool.build(
            domains=world.domains,
            seed=self.config.seed,
            size=self.config.pool_size,
            spammer_fraction=self.config.spammer_fraction,
        )
        self.pool.run_gold_screen(seed=self.config.seed)

    # -- ground truth -----------------------------------------------------------

    def truly_relevant(self, query: str, user_id: int) -> bool:
        """Would an informed judge find this account useful for the query?"""
        topic = self.world.primary_topic_for(query)
        user = self.platform.user(user_id)
        if topic is None:
            return False
        if user.is_expert_on(topic.topic_id):
            return True
        if user.persona == "broad_expert" and user.expert_topics:
            domains = {
                self.world.topic(t).domain for t in user.expert_topics
            }
            return topic.domain in domains
        return False

    # -- the study --------------------------------------------------------------

    def judge_results(
        self,
        query: str,
        baseline_experts: list[RankedExpert],
        esharp_experts: list[RankedExpert],
    ) -> StudyOutcome:
        """Interleave, chunk and judge both algorithms' lists for a query."""
        rng = self._factory.stream(f"study/{query}")
        merged = interleave(baseline_experts, esharp_experts)
        outcome = StudyOutcome()
        if not merged:
            return outcome
        chunks = build_chunks(query, merged, rng, self.config.chunk_size)
        judges = self.pool.screened()
        if not judges:
            raise RuntimeError("every worker failed the gold screen")
        topic = self.world.primary_topic_for(query)
        domain = topic.domain if topic is not None else "misc"

        for chunk in chunks:
            for user_id in chunk.expert_ids:
                relevant = self.truly_relevant(query, user_id)
                votes: list[Vote] = []
                pick = rng.sample(
                    judges, k=min(self.config.judges_per_expert, len(judges))
                )
                for worker in pick:
                    vote = cast_vote(worker, domain, relevant, rng)
                    votes.append(vote)
                    outcome.judgments.append(
                        Judgment(
                            worker_id=worker.worker_id,
                            query=query,
                            user_id=user_id,
                            vote=vote,
                        )
                    )
                outcome.labels[(query, user_id)] = majority_vote(votes)
        return outcome

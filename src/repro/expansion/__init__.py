"""S8 — Domains of expertise: storage, exact-match lookup, expansion (§5).

The offline pipeline's product is a collection of keyword communities.
Online, an incoming query is matched against the collection by exact
lower-cased phrase match and replaced by every keyword of its community;
the detector runs once per keyword and the results are unioned.
"""

from repro.expansion.domainstore import DomainStore, ExpertiseDomain
from repro.expansion.expander import ExpansionResult, QueryExpander
from repro.expansion.policies import (
    POLICIES,
    ExpansionPolicy,
    FullCommunityPolicy,
    SharedTokenPolicy,
    TopKSimilarPolicy,
)

__all__ = [
    "DomainStore",
    "ExpansionPolicy",
    "ExpansionResult",
    "ExpertiseDomain",
    "FullCommunityPolicy",
    "POLICIES",
    "QueryExpander",
    "SharedTokenPolicy",
    "TopKSimilarPolicy",
]

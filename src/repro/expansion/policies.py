"""Expansion policies — how much of a matched community to search.

§6.2.3 names the failure mode of full-community expansion: *"errors in
the expansion (e.g., disambiguation problems)"*.  Searching *every*
community keyword (the paper's choice) maximises recall but lets an
ambiguous shared keyword ("san francisco") drag in neighbouring topics.
These policies trade that off; ABL5 measures them.

All policies receive the matched domain's keywords plus (optionally) the
similarity graph, and return the ordered terms to search.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.expansion.domainstore import ExpertiseDomain
from repro.simgraph.graph import WeightedGraph
from repro.utils.text import phrase_key, tokenize


class ExpansionPolicy:
    """Base policy: subclasses order/trim the expansion terms."""

    name = "base"

    def terms(
        self,
        query: str,
        domain: ExpertiseDomain,
        graph: WeightedGraph | None = None,
    ) -> list[str]:
        raise NotImplementedError


@dataclass(frozen=True)
class FullCommunityPolicy(ExpansionPolicy):
    """The paper's §5 behaviour: search every community keyword."""

    name = "full"

    def terms(self, query, domain, graph=None) -> list[str]:
        key = phrase_key(query)
        others = [kw for kw in domain.keywords if phrase_key(kw) != key]
        return [key] + others


@dataclass(frozen=True)
class TopKSimilarPolicy(ExpansionPolicy):
    """Only the ``k`` community keywords closest to the query in the
    similarity graph — a precision-leaning variant."""

    k: int = 5
    name = "top-k"

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be >= 1")

    def terms(self, query, domain, graph=None) -> list[str]:
        key = phrase_key(query)
        others = [kw for kw in domain.keywords if phrase_key(kw) != key]
        if graph is not None and graph.has_vertex(key):
            others.sort(
                key=lambda kw: (-graph.weight(key, phrase_key(kw)), kw)
            )
        return [key] + others[: self.k]


@dataclass(frozen=True)
class SharedTokenPolicy(ExpansionPolicy):
    """Only community keywords sharing a token with the query — the most
    conservative variant (pure surface-form bridging: variants,
    hashtags, compounds of the same head)."""

    name = "shared-token"

    def terms(self, query, domain, graph=None) -> list[str]:
        key = phrase_key(query)
        query_tokens = set(tokenize(query))
        # hashtag/concatenated forms also count as shared surface
        fused = {token.lstrip("#@") for token in query_tokens}
        others = []
        for keyword in domain.keywords:
            if phrase_key(keyword) == key:
                continue
            tokens = set(tokenize(keyword))
            plain = {token.lstrip("#@") for token in tokens}
            joined = "".join(sorted(fused))
            if (
                tokens & query_tokens
                or plain & fused
                or any(p and p in joined for p in plain)
            ):
                others.append(keyword)
        return [key] + others


POLICIES: dict[str, ExpansionPolicy] = {
    "full": FullCommunityPolicy(),
    "top-k": TopKSimilarPolicy(),
    "shared-token": SharedTokenPolicy(),
}

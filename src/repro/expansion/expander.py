"""Query expansion execution (§5).

*"Once we identified the relevant community, we run the expert search for
all the related terms separately. We then union the results and rank the
experts."*  Union semantics for a user found under several terms: keep the
highest score (documented choice — the paper does not specify; max is the
natural reading of re-ranking a union).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.detector.palcounts import PalCountsDetector
from repro.detector.ranking import RankedExpert
from repro.expansion.domainstore import DomainStore


@dataclass
class ExpansionResult:
    """Everything the online path produces for one query."""

    query: str
    #: terms actually searched (query first)
    terms: list[str]
    #: final ranked experts after union + threshold + cap
    experts: list[RankedExpert]
    #: scored pool before threshold (for sweeps), deduplicated by user
    scored_pool: list[RankedExpert] = field(default_factory=list)
    matched_domain: str | None = None


class QueryExpander:
    """e#'s online stage: match → expand → detect per term → union → rank.

    ``policy`` selects how much of the matched community to search
    (default: the paper's full-community expansion); ``graph`` lets
    similarity-aware policies rank the community's terms.
    """

    def __init__(
        self,
        store: DomainStore,
        detector: PalCountsDetector,
        policy=None,
        graph=None,
    ) -> None:
        from repro.expansion.policies import FullCommunityPolicy

        self.store = store
        self.detector = detector
        self.policy = policy or FullCommunityPolicy()
        self.graph = graph

    def expand_terms(self, query: str) -> tuple[list[str], str | None]:
        """Expansion terms and the matched domain id (None when unmatched)."""
        domain = self.store.lookup(query)
        if domain is None:
            return [query], None
        return self.policy.terms(query, domain, self.graph), domain.domain_id

    def score(self, query: str) -> ExpansionResult:
        """Scored union pool with no threshold applied (sweep-friendly)."""
        terms, domain_id = self.expand_terms(query)
        return self.score_terms(query, terms, domain_id)

    def score_terms(
        self,
        query: str,
        terms: list[str],
        domain_id: str | None,
        term_scorer=None,
    ) -> ExpansionResult:
        """Union already-expanded ``terms`` into one scored pool.

        ``term_scorer`` maps the term list to one scored pool per term;
        the default scores sequentially on the expander's own detector.
        The serving tier passes a pool-sharded scorer here so each
        community term scores on its own worker thread.
        """
        if term_scorer is None:
            pools = [self.detector.score(term) for term in terms]
        else:
            pools = term_scorer(terms)
        best: dict[int, RankedExpert] = {}
        for pool in pools:
            for expert in pool:
                incumbent = best.get(expert.user_id)
                if incumbent is None or expert.score > incumbent.score:
                    best[expert.user_id] = expert
        pool = sorted(best.values(), key=lambda e: (-e.score, e.user_id))
        return ExpansionResult(
            query=query,
            terms=terms,
            experts=[],
            scored_pool=pool,
            matched_domain=domain_id,
        )

    def detect(self, query: str, min_zscore: float | None = None) -> ExpansionResult:
        """The full online path: threshold + cap applied to the union."""
        config = self.detector.ranking
        threshold = config.min_zscore if min_zscore is None else min_zscore
        result = self.score(query)
        kept = [e for e in result.scored_pool if e.score >= threshold]
        result.experts = kept[: config.max_results]
        return result

"""The collection of expertise domains and its exact-match index.

The paper stores its ~100 MB collection in SQL Server 2014 and queries it
"in a few milliseconds"; here the store keeps an in-memory hash index (and
can export itself as a relational table for the SQL engine, which is how
the offline pipeline accounts its output size for Table 9).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.community.partition import Partition
from repro.relational.schema import Schema
from repro.relational.table import Table
from repro.utils.text import phrase_key


@dataclass(frozen=True)
class ExpertiseDomain:
    """One community of related keywords."""

    domain_id: str
    keywords: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.keywords:
            raise ValueError(f"domain {self.domain_id!r} has no keywords")

    def __len__(self) -> int:
        return len(self.keywords)


class DomainStore:
    """Exact-match lookup from a query phrase to its domain (§5).

    *"We find the community which contains the query terms exactly and in
    order, after lower-casing."*  Keys are therefore normalised phrases;
    one keyword belongs to exactly one domain (the clustering emits a hard
    partition).
    """

    def __init__(self, domains: list[ExpertiseDomain]) -> None:
        self._domains: dict[str, ExpertiseDomain] = {}
        self._index: dict[str, str] = {}
        for domain in domains:
            if domain.domain_id in self._domains:
                raise ValueError(f"duplicate domain id {domain.domain_id!r}")
            self._domains[domain.domain_id] = domain
            for keyword in domain.keywords:
                key = phrase_key(keyword)
                # a later domain never steals an earlier domain's keyword
                self._index.setdefault(key, domain.domain_id)

    @classmethod
    def from_partition(cls, partition: Partition) -> "DomainStore":
        """Build the store straight from a clustering result.

        Domain ids are **canonical**: each domain is named after its
        smallest member keyword, not the clustering's internal community
        label.  Pointer-style iterations can hand the same member set a
        different label from run to run (label swaps at convergence),
        and the incremental refresh path re-derives labels locally;
        canonical ids make the store a pure function of the partition
        *structure*, so a full rebuild and a delta refresh that agree on
        membership produce identical stores — and a domain whose members
        did not change keeps its id across refreshes.
        """
        return cls.rebuilt(partition, cls([]))

    @classmethod
    def rebuilt(
        cls, partition: Partition, previous: "DomainStore"
    ) -> "DomainStore":
        """Rebuild from a partition, reusing every unchanged domain.

        The delta-refresh path re-clusters only a dirty region, so most
        domains survive a refresh with identical membership; those reuse
        the previous :class:`ExpertiseDomain` instances (no re-sort, and
        identity-comparable in tests), while only the affected domains
        are constructed anew.
        """
        domains = []
        for community in partition.communities():
            members = partition.members(community)
            candidate = previous._domains.get(min(members))
            if (
                candidate is not None
                and len(candidate.keywords) == len(members)
                and set(candidate.keywords) == members
            ):
                domains.append(candidate)
            else:
                keywords = tuple(sorted(members))
                domains.append(
                    ExpertiseDomain(domain_id=keywords[0], keywords=keywords)
                )
        domains.sort(key=lambda domain: domain.domain_id)
        return cls(domains)

    # -- lookup (§5 exact match) ---------------------------------------------

    def lookup(self, query: str) -> ExpertiseDomain | None:
        """The domain containing ``query`` exactly, or ``None``."""
        domain_id = self._index.get(phrase_key(query))
        return self._domains[domain_id] if domain_id is not None else None

    def expand(self, query: str) -> list[str]:
        """Expansion terms for ``query`` (the query itself when unmatched)."""
        domain = self.lookup(query)
        if domain is None:
            return [phrase_key(query)]
        key = phrase_key(query)
        others = [kw for kw in domain.keywords if phrase_key(kw) != key]
        return [key] + others

    # -- introspection ----------------------------------------------------------

    def domains(self) -> list[ExpertiseDomain]:
        return [self._domains[did] for did in sorted(self._domains)]

    @property
    def domain_count(self) -> int:
        return len(self._domains)

    @property
    def keyword_count(self) -> int:
        return len(self._index)

    def known_keywords(self) -> list[str]:
        """Every normalised phrase the exact-match index can resolve."""
        return list(self._index)

    def to_table(self) -> Table:
        """Relational export: ``domains(domain_id, keyword)``."""
        rows = [
            (domain_id, keyword)
            for domain_id in sorted(self._domains)
            for keyword in self._domains[domain_id].keywords
        ]
        return Table(Schema.of("domain_id", "keyword"), rows)

    def storage_bytes(self) -> int:
        """Approximate serialised size — 'about 100 MB' in the paper."""
        return self.to_table().estimated_bytes()

    # -- persistence (the paper stores the collection in SQL Server) --------

    def save(self, path) -> int:
        """Persist the collection as a typed TSV; returns bytes written."""
        from repro.relational.io import save_table

        return save_table(self.to_table(), path)

    @classmethod
    def load(cls, path) -> "DomainStore":
        """Load a collection previously written by :meth:`save`.

        Loaded domains are **validated and canonicalised**: every
        pipeline-built store names each domain after its smallest member
        keyword (see :meth:`from_partition`), and :meth:`rebuilt`'s
        instance-reuse looks domains up by that canonical id — so a
        hand-edited or legacy TSV whose ids drifted (``c42``-style
        clustering labels, renamed domains) must not bypass the
        invariant.  Duplicate keywords within a domain are collapsed; a
        keyword claimed by two different domains is a hard error (the
        clustering emits a hard partition, so such a file is corrupt,
        and silently letting one domain steal the keyword would make
        load order semantically load-bearing).
        """
        from repro.relational.io import load_table

        table = load_table(path)
        members: dict[str, list[str]] = {}
        for domain_id, keyword in table.rows:
            members.setdefault(domain_id, []).append(keyword)
        claimed: dict[str, str] = {}
        domains: list[ExpertiseDomain] = []
        for legacy_id, keywords in sorted(members.items()):
            ordered = tuple(sorted(set(keywords)))
            for keyword in ordered:
                key = phrase_key(keyword)
                other = claimed.setdefault(key, legacy_id)
                if other != legacy_id:
                    raise ValueError(
                        f"keyword {keyword!r} appears in two domains "
                        f"({other!r} and {legacy_id!r}); a domain "
                        "collection is a hard partition"
                    )
            domains.append(
                ExpertiseDomain(domain_id=ordered[0], keywords=ordered)
            )
        domains.sort(key=lambda domain: domain.domain_id)
        return cls(domains)

    def __repr__(self) -> str:
        return (
            f"DomainStore(domains={self.domain_count}, "
            f"keywords={self.keyword_count})"
        )

"""Bounded LRU + TTL cache with observable counters.

A dependency-free building block used by both the detector layer (the
per-term score memo) and the serving tier (the result cache): bounds
memory (LRU eviction), bounds staleness (optional TTL), and counts every
hit/miss/eviction/expiration so benches and the ops surface can reason
about it (``cache_info()``).  Thread-safe.

The clock is injectable so TTL behaviour is deterministically testable.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Generic, Hashable, Iterator, Optional, Tuple, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

#: sentinel distinguishing "not cached" from a cached ``None``
_MISSING = object()


@dataclass(frozen=True)
class CacheInfo:
    """Point-in-time counters, modelled on ``functools.lru_cache``'s."""

    hits: int
    misses: int
    evictions: int
    expirations: int
    size: int
    capacity: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never used)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def __str__(self) -> str:
        return (
            f"hits={self.hits} misses={self.misses} "
            f"evictions={self.evictions} expirations={self.expirations} "
            f"size={self.size}/{self.capacity} "
            f"hit_rate={self.hit_rate:.1%}"
        )


class LRUCache(Generic[K, V]):
    """Thread-safe bounded mapping with LRU eviction and optional TTL.

    ``capacity=0`` disables caching entirely (every lookup misses, every
    store is dropped) — callers can keep one code path and switch caching
    off by configuration.  ``ttl_seconds=None`` means entries never
    expire; otherwise an entry older than the TTL is treated as a miss
    and counted as an expiration.
    """

    def __init__(
        self,
        capacity: int,
        ttl_seconds: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError(f"ttl_seconds must be positive, got {ttl_seconds}")
        self.capacity = capacity
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._lock = threading.Lock()
        #: key -> (value, stored_at)
        self._entries: "OrderedDict[K, Tuple[V, float]]" = OrderedDict()  # guarded-by: _lock
        self._hits = 0  # guarded-by: _lock
        self._misses = 0  # guarded-by: _lock
        self._evictions = 0  # guarded-by: _lock
        self._expirations = 0  # guarded-by: _lock

    # -- core mapping protocol -------------------------------------------------

    def get(self, key: K, default: Optional[V] = None) -> Optional[V]:
        """Return the live value for ``key`` or ``default``; counts the lookup."""
        with self._lock:
            entry = self._entries.get(key, _MISSING)
            if entry is _MISSING:
                self._misses += 1
                return default
            value, stored_at = entry
            if self._expired(stored_at):
                del self._entries[key]
                self._expirations += 1
                self._misses += 1
                return default
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: K, value: V) -> None:
        """Store ``key`` → ``value``, evicting the LRU entry when full."""
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (value, self._clock())
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def __contains__(self, key: K) -> bool:
        """Membership *without* touching recency or counters."""
        with self._lock:
            entry = self._entries.get(key, _MISSING)
            if entry is _MISSING:
                return False
            return not self._expired(entry[1])

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> Iterator[K]:
        with self._lock:
            return iter(list(self._entries.keys()))

    # -- maintenance -----------------------------------------------------------

    def clear(self) -> int:
        """Drop every entry; returns how many were dropped."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            return dropped

    def purge_expired(self) -> int:
        """Proactively drop expired entries (TTL caches only)."""
        if self.ttl_seconds is None:
            return 0
        with self._lock:
            dead = [k for k, (_, at) in self._entries.items() if self._expired(at)]
            for key in dead:
                del self._entries[key]
            self._expirations += len(dead)
            return len(dead)

    def cache_info(self) -> CacheInfo:
        with self._lock:
            return CacheInfo(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                expirations=self._expirations,
                size=len(self._entries),
                capacity=self.capacity,
            )

    # -- internals -------------------------------------------------------------

    def _expired(self, stored_at: float) -> bool:
        return (
            self.ttl_seconds is not None
            and self._clock() - stored_at >= self.ttl_seconds
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LRUCache({self.cache_info()})"

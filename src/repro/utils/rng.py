"""Deterministic randomness plumbing.

The reproduction is seeded end-to-end: a single root seed deterministically
derives an independent stream for every named component (query-log generator,
microblog generator, crowd workers, ...).  Derivation is by stable hashing of
the component name, so adding a new consumer never perturbs the streams of
existing ones — a property the tests rely on.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator


_MASK_64 = (1 << 64) - 1


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a component name.

    The derivation uses SHA-256 rather than Python's salted ``hash`` so the
    mapping is stable across processes and interpreter versions.

    >>> derive_seed(7, "querylog") == derive_seed(7, "querylog")
    True
    >>> derive_seed(7, "querylog") != derive_seed(7, "microblog")
    True
    """
    payload = f"{root_seed}:{name}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") & _MASK_64


class SeedSequenceFactory:
    """Factory of independent, named :class:`random.Random` streams.

    >>> factory = SeedSequenceFactory(42)
    >>> a = factory.stream("tweets")
    >>> b = factory.stream("tweets")
    >>> a.random() == b.random()
    True
    """

    def __init__(self, root_seed: int) -> None:
        if not isinstance(root_seed, int):
            raise TypeError(f"root_seed must be an int, got {type(root_seed).__name__}")
        self.root_seed = root_seed

    def seed_for(self, name: str) -> int:
        """Return the deterministic child seed for ``name``."""
        return derive_seed(self.root_seed, name)

    def stream(self, name: str) -> random.Random:
        """Return a fresh ``random.Random`` seeded for ``name``."""
        return random.Random(self.seed_for(name))

    def substreams(self, name: str, count: int) -> Iterator[random.Random]:
        """Yield ``count`` independent streams derived under ``name``."""
        for index in range(count):
            yield self.stream(f"{name}/{index}")

    def spawn(self, name: str) -> "SeedSequenceFactory":
        """Return a child factory rooted at the seed derived for ``name``."""
        return SeedSequenceFactory(self.seed_for(name))

    def __repr__(self) -> str:
        return f"SeedSequenceFactory(root_seed={self.root_seed})"

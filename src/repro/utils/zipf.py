"""Zipfian sampling for heavy-tailed popularity distributions.

Web-search query frequencies and tweet-topic popularity are famously
heavy-tailed.  Both simulators (``repro.querylog`` and ``repro.microblog``)
sample from the discrete Zipf distribution implemented here, which keeps the
synthetic corpora structurally faithful to the statistics the paper's
pipeline was designed around (a small head of huge topics, a long noisy
tail, and the 50-occurrences/month support cut-off of §4.1 biting hard).
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import Sequence, TypeVar

T = TypeVar("T")


def zipf_weights(count: int, exponent: float = 1.0) -> list[float]:
    """Return unnormalised Zipf weights ``1/rank**exponent`` for ``count`` ranks.

    >>> zipf_weights(3)
    [1.0, 0.5, 0.3333333333333333]
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if exponent < 0:
        raise ValueError(f"exponent must be non-negative, got {exponent}")
    return [1.0 / (rank**exponent) for rank in range(1, count + 1)]


class ZipfSampler:
    """Sample indices ``0..count-1`` with probability proportional to Zipf weights.

    Sampling uses a precomputed cumulative table and binary search, so a draw
    is O(log n); building the sampler is O(n).

    >>> sampler = ZipfSampler(10, exponent=1.2, rng=random.Random(0))
    >>> 0 <= sampler.sample() < 10
    True
    """

    def __init__(
        self,
        count: int,
        exponent: float = 1.0,
        rng: random.Random | None = None,
    ) -> None:
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        self.count = count
        self.exponent = exponent
        self._rng = rng if rng is not None else random.Random()
        weights = zipf_weights(count, exponent)
        self._cumulative = list(itertools.accumulate(weights))
        self._total = self._cumulative[-1]

    def probability(self, index: int) -> float:
        """Return the probability of drawing ``index``."""
        if not 0 <= index < self.count:
            raise IndexError(f"index {index} out of range for count {self.count}")
        previous = self._cumulative[index - 1] if index > 0 else 0.0
        return (self._cumulative[index] - previous) / self._total

    def sample(self) -> int:
        """Draw one index."""
        point = self._rng.random() * self._total
        return bisect.bisect_left(self._cumulative, point)

    def sample_many(self, draws: int) -> list[int]:
        """Draw ``draws`` indices."""
        if draws < 0:
            raise ValueError(f"draws must be non-negative, got {draws}")
        return [self.sample() for _ in range(draws)]

    def sample_item(self, items: Sequence[T]) -> T:
        """Draw one element of ``items`` (which must have length ``count``)."""
        if len(items) != self.count:
            raise ValueError(
                f"items has length {len(items)}, expected {self.count}"
            )
        return items[self.sample()]

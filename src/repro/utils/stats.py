"""Statistics helpers used by the ranking layer (§3 of the paper).

The detector normalises its features with z-scores, after a log transform
because *"in practice, the features appear to be log-normally distributed"*.
These helpers implement exactly that maths, with explicit handling of the
degenerate cases (empty pools, constant features, zero-valued features)
that real candidate pools produce constantly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input.

    >>> mean([1.0, 2.0, 3.0])
    2.0
    """
    if not values:
        raise ValueError("mean of empty sequence is undefined")
    return sum(values) / len(values)


def stddev(values: Sequence[float]) -> float:
    """Population standard deviation; raises on empty input.

    >>> stddev([2.0, 2.0])
    0.0
    """
    if not values:
        raise ValueError("stddev of empty sequence is undefined")
    centre = mean(values)
    # list comprehension rather than a generator: same left-to-right sum,
    # measurably faster in the detector's per-term inner loop.  The square
    # is spelled as a product, not ``** 2``: CPython routes ``**`` through
    # libm pow(), which disagrees with multiplication in the last ulp on
    # some inputs (and raises OverflowError near the float max, where the
    # product overflows cleanly to inf) — the product is what numpy's
    # elementwise multiply computes, keeping the vectorized scoring tail
    # bit-identical to this function
    deviations = [(v - centre) for v in values]
    return math.sqrt(sum([d * d for d in deviations]) / len(values))


def zscores(values: Sequence[float]) -> list[float]:
    """Return the z-score of every value against the pool's own mean/stddev.

    A constant pool has no scale, so every z-score is 0 — the natural limit
    and the behaviour the ranking layer wants (no candidate is distinguished
    by a feature on which all candidates agree).  The constancy check is
    *relative*: a pool like ``[0.2, 0.2, 0.2]`` has a stddev of ~1e-17 from
    float rounding, and dividing by it would manufacture spurious ±1 scores.

    >>> zscores([1.0, 3.0])
    [-1.0, 1.0]
    >>> zscores([5.0, 5.0, 5.0])
    [0.0, 0.0, 0.0]
    >>> zscores([0.2, 0.2, 0.2])
    [0.0, 0.0, 0.0]
    """
    if not values:
        return []
    centre = mean(values)
    spread = stddev(values)
    if spread <= 1e-12 * max(1.0, abs(centre)):
        return [0.0] * len(values)
    return [(v - centre) / spread for v in values]


def log_transform(values: Sequence[float], epsilon: float = 1e-9) -> list[float]:
    """Apply ``log(max(v, epsilon))`` elementwise.

    The paper takes logarithms to turn log-normally distributed features into
    Gaussian ones before the z-score.  Features can legitimately be 0 (a user
    whose tweets were never retweeted), hence the epsilon floor.

    >>> log_transform([1.0, math.e])
    [0.0, 1.0]
    """
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    return [math.log(max(v, epsilon)) for v in values]


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary used by reports and benches."""

    count: int
    minimum: float
    maximum: float
    mean: float
    stddev: float

    def __str__(self) -> str:
        return (
            f"n={self.count} min={self.minimum:.4g} max={self.maximum:.4g} "
            f"mean={self.mean:.4g} sd={self.stddev:.4g}"
        )


def summarize(values: Iterable[float]) -> Summary:
    """Build a :class:`Summary` of ``values``; raises on empty input."""
    collected = list(values)
    if not collected:
        raise ValueError("cannot summarize an empty sequence")
    return Summary(
        count=len(collected),
        minimum=min(collected),
        maximum=max(collected),
        mean=mean(collected),
        stddev=stddev(collected),
    )


def percentile(values: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile, ``fraction`` in [0, 1].

    >>> percentile([1.0, 2.0, 3.0, 4.0], 0.5)
    2.5
    """
    if not values:
        raise ValueError("percentile of empty sequence is undefined")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high:
        return ordered[low]
    weight = position - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight

"""Zero-copy packed containers over buffer-backed columns.

These are the in-memory shapes an mmap-loaded artifact hands to the
platform and the detection engine: string tables and offset-indexed
maps that *look like* the owned ``list``/``dict`` structures a fresh
build produces, but materialise nothing until asked.  Every container
here is read-only; a consumer that needs to mutate first converts to
owned structures (see ``MicroblogPlatform._seal_columns``).

Buffer lifetime: a :class:`memoryview` pins its exporting object (the
``mmap``), so holding any of these containers — or any slice handed out
by one — keeps the mapping alive without explicit bookkeeping.
"""

from __future__ import annotations

from array import array
from typing import Iterator, Sequence


def owned_array(typecode: str, column) -> array:
    """``column`` as an owned :class:`array.array` (no-op when it is one)."""
    if isinstance(column, array):
        return column
    out = array(typecode)
    out.frombytes(
        column.tobytes() if isinstance(column, memoryview) else bytes(column)
    )
    return out


# -- string tables -----------------------------------------------------------


def pack_strings(strings: Sequence[str]) -> tuple[array, array, bytes]:
    """Pack strings into ``(byte_offsets, char_offsets, utf8_blob)``.

    Byte offsets index the blob (for lazy per-item decode); char offsets
    index the decoded text (for the eager bulk path, where one whole-blob
    decode plus C-level ``str`` slicing beats per-item decodes).
    """
    byte_offsets = array("q", [0])
    char_offsets = array("q", [0])
    chunks: list[bytes] = []
    total_bytes = 0
    total_chars = 0
    for text in strings:
        raw = text.encode("utf-8")
        chunks.append(raw)
        total_bytes += len(raw)
        total_chars += len(text)
        byte_offsets.append(total_bytes)
        char_offsets.append(total_chars)
    return byte_offsets, char_offsets, b"".join(chunks)


def unpack_strings(char_offsets, blob) -> list[str]:
    """Eagerly materialise a packed string table (token lists).

    One decode of the whole blob, then one C-level slice per string —
    the fast path for small-vocabulary tables that are needed as dict
    keys immediately anyway.
    """
    if isinstance(blob, memoryview):
        blob = blob.tobytes()
    text = blob.decode("utf-8")
    return [
        text[char_offsets[i] : char_offsets[i + 1]]
        for i in range(len(char_offsets) - 1)
    ]


class LazyStrings(Sequence):
    """A string table decoded item-at-a-time from a shared byte blob.

    Backs the platform's deferred tweet texts on an mmap load: holding
    the table touches no pages; indexing decodes exactly one string.
    """

    __slots__ = ("_byte_offsets", "_blob")

    def __init__(self, byte_offsets, blob) -> None:
        self._byte_offsets = byte_offsets
        self._blob = blob

    def __len__(self) -> int:
        return len(self._byte_offsets) - 1

    def __getitem__(self, index: int) -> str:
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        start = self._byte_offsets[index]
        stop = self._byte_offsets[index + 1]
        return bytes(self._blob[start:stop]).decode("utf-8")

    def __iter__(self) -> Iterator[str]:
        blob = self._blob
        offsets = self._byte_offsets
        start = offsets[0]
        for i in range(len(offsets) - 1):
            stop = offsets[i + 1]
            yield bytes(blob[start:stop]).decode("utf-8")
            start = stop

    def estimated_text_bytes(self) -> int:
        """Total UTF-8 bytes, straight off the offsets (no decode)."""
        return self._byte_offsets[len(self._byte_offsets) - 1]

    def materialize(self) -> list[str]:
        return list(self)


# -- offset-indexed maps -----------------------------------------------------


class PackedSliceMap:
    """Read-only ``key → contiguous column slice`` over flat buffers.

    ``keys`` must be unique and in offsets order.  Values are handed out
    as slices of the flat ``rows`` buffer — zero-copy when ``rows`` is a
    memoryview, cheap array slices otherwise.  Implements just enough of
    the ``dict`` surface for the platform's read paths (``get``, ``in``,
    iteration, ``keys``/``values``/``items``); writers must
    :meth:`materialize` first.
    """

    __slots__ = ("_position", "_offsets", "_rows")

    def __init__(self, keys: Sequence, offsets, rows) -> None:
        if len(offsets) != len(keys) + 1:
            raise ValueError("offsets disagree with the key list")
        self._position = dict(zip(keys, range(len(keys))))
        if len(self._position) != len(keys):
            raise ValueError("duplicate keys in packed map")
        self._offsets = offsets
        self._rows = rows

    def __len__(self) -> int:
        return len(self._position)

    def __contains__(self, key) -> bool:
        return key in self._position

    def __iter__(self):
        return iter(self._position)

    def __getitem__(self, key):
        index = self._position[key]
        return self._rows[self._offsets[index] : self._offsets[index + 1]]

    def get(self, key, default=None):
        index = self._position.get(key)
        if index is None:
            return default
        return self._rows[self._offsets[index] : self._offsets[index + 1]]

    def keys(self):
        return self._position.keys()

    def values(self):
        offsets = self._offsets
        rows = self._rows
        for index in self._position.values():
            yield rows[offsets[index] : offsets[index + 1]]

    def items(self):
        offsets = self._offsets
        rows = self._rows
        for key, index in self._position.items():
            yield key, rows[offsets[index] : offsets[index + 1]]

    def slice_bounds(self, key) -> tuple[int, int] | None:
        """``(start, stop)`` of one key's slice in the flat buffer."""
        index = self._position.get(key)
        if index is None:
            return None
        return self._offsets[index], self._offsets[index + 1]

    def flat_rows(self) -> int:
        return self._offsets[len(self._offsets) - 1]

    def packed_parts(self) -> tuple[list, object, object]:
        """``(keys, offsets, flat_rows)`` — the re-encode fast path.

        Re-saving an mmap-loaded artifact streams the flat buffers
        straight into the next sidecar instead of re-flattening slices.
        """
        return list(self._position), self._offsets, self._rows

    def materialize_arrays(self, typecode: str) -> dict:
        """Owned ``dict[key, array]`` (the postings seal path)."""
        flat = owned_array(typecode, self._rows)
        offsets = self._offsets
        return {
            key: flat[offsets[index] : offsets[index + 1]]
            for key, index in self._position.items()
        }

    def materialize_lists(self) -> dict:
        """Owned ``dict[key, list]`` (the by-author seal path)."""
        offsets = self._offsets
        rows = self._rows
        return {
            key: list(rows[offsets[index] : offsets[index + 1]])
            for key, index in self._position.items()
        }

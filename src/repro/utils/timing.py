"""Stage timing and I/O accounting for the Table 9 reproduction.

Table 9 of the paper reports, per pipeline stage, the number of VMs, the
wall-clock runtime and the bytes read/written.  :class:`StageClock` collects
the same four columns for our pipeline: the relational engine reports bytes
moved, the offline pipeline reports its partition count (our stand-in for
VMs), and the clock measures wall time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class StageReport:
    """Resource record for one pipeline stage (one row of Table 9)."""

    name: str
    workers: int = 1
    seconds: float = 0.0
    bytes_read: int = 0
    bytes_written: int = 0

    def merge(self, other: "StageReport") -> None:
        """Fold another report for the same stage into this one."""
        if other.name != self.name:
            raise ValueError(
                f"cannot merge stage {other.name!r} into stage {self.name!r}"
            )
        self.workers = max(self.workers, other.workers)
        self.seconds += other.seconds
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written

    def as_row(self) -> tuple[str, int, str, str, str]:
        """Render the Table 9 row (stage, workers, runtime, read, written)."""
        return (
            self.name,
            self.workers,
            format_seconds(self.seconds),
            format_bytes(self.bytes_read),
            format_bytes(self.bytes_written),
        )


class StageClock:
    """Accumulates :class:`StageReport` rows across a pipeline run.

    Usage::

        clock = StageClock()
        with clock.stage("extraction", workers=8) as report:
            ...
            report.bytes_read += store.bytes_scanned
    """

    def __init__(self) -> None:
        self._reports: dict[str, StageReport] = {}
        self._order: list[str] = []

    def stage(self, name: str, workers: int = 1) -> "_StageContext":
        """Open a timed context for stage ``name``."""
        return _StageContext(self, name, workers)

    def record(self, report: StageReport) -> None:
        """Add (or merge) a finished report."""
        if report.name in self._reports:
            self._reports[report.name].merge(report)
        else:
            self._reports[report.name] = report
            self._order.append(report.name)

    @property
    def reports(self) -> list[StageReport]:
        """Reports in first-recorded order."""
        return [self._reports[name] for name in self._order]

    def total_seconds(self) -> float:
        return sum(report.seconds for report in self.reports)


@dataclass
class _StageContext:
    clock: StageClock
    name: str
    workers: int
    report: StageReport = field(init=False)
    _started: float = field(init=False, default=0.0)

    def __enter__(self) -> StageReport:
        self.report = StageReport(name=self.name, workers=self.workers)
        self._started = time.perf_counter()
        return self.report

    def __exit__(self, exc_type, exc, tb) -> None:
        self.report.seconds = time.perf_counter() - self._started
        if exc_type is None:
            self.clock.record(self.report)


def format_bytes(count: int) -> str:
    """Human-readable byte count, GB/MB/KB like Table 9.

    >>> format_bytes(2_600_000_000)
    '2.6 GB'
    """
    if count < 0:
        raise ValueError(f"byte count must be non-negative, got {count}")
    for threshold, suffix in ((10**9, "GB"), (10**6, "MB"), (10**3, "KB")):
        if count >= threshold:
            return f"{count / threshold:.3g} {suffix}"
    return f"{count} B"


def format_seconds(seconds: float) -> str:
    """Human-readable duration, matching Table 9's mixed units.

    >>> format_seconds(0.05)
    '50 ms'
    >>> format_seconds(7200)
    '2.0 hours'
    """
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds}")
    if seconds < 1.0:
        return f"{seconds * 1000:.3g} ms"
    if seconds < 120.0:
        return f"{seconds:.3g} sec"
    if seconds < 7200.0:
        return f"{seconds / 60:.3g} min"
    return f"{seconds / 3600:.3g} hours"

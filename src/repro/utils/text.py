"""Text normalisation exactly as the paper specifies it.

Two different matching rules appear in the paper and both are implemented
here so the rest of the code can name them precisely:

* §3 (candidate selection): *"a tweet matches a query if it contains all of
  its terms after lower-casing"* — token-set containment via
  :func:`tokenize`.
* §5 (domain lookup): *"we find the community which contains the query terms
  exactly and in order, after lower-casing"* — exact phrase match via
  :func:`phrase_key`.

§4.1 is explicit that the offline pipeline applies **no stemming and no
spelling correction**, so none is offered here.
"""

from __future__ import annotations

import re

_TOKEN_PATTERN = re.compile(r"[#@]?[a-z0-9']+")
_WHITESPACE = re.compile(r"\s+")


def normalize(text: str) -> str:
    """Lower-case and collapse whitespace; the paper's only normalisation.

    >>> normalize("  San   Francisco  49ers ")
    'san francisco 49ers'
    """
    return _WHITESPACE.sub(" ", text.lower()).strip()


def tokenize(text: str) -> list[str]:
    """Split normalised text into query/tweet terms.

    Hashtags and mentions keep their sigil because on Twitter ``#49ers`` and
    ``49ers`` genuinely are distinct surface forms — the paper relies on the
    query log to bridge such variants, not on the tokenizer.

    >>> tokenize("Go #49ers! @niners rock")
    ['go', '#49ers', '@niners', 'rock']
    """
    return _TOKEN_PATTERN.findall(text.lower())


def phrase_key(text: str) -> str:
    """Canonical exact-match key: normalised tokens joined by single spaces.

    >>> phrase_key("Dow  FUTURES")
    'dow futures'
    """
    return " ".join(tokenize(text))


def ngrams(tokens: list[str], size: int) -> list[tuple[str, ...]]:
    """Return the contiguous ``size``-grams of ``tokens``.

    >>> ngrams(["a", "b", "c"], 2)
    [('a', 'b'), ('b', 'c')]
    """
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    if size > len(tokens):
        return []
    return [tuple(tokens[i : i + size]) for i in range(len(tokens) - size + 1)]


def contains_all_terms(text_tokens: set[str], query_tokens: list[str]) -> bool:
    """§3 matching rule: every query term occurs in the text.

    >>> contains_all_terms({"go", "49ers", "win"}, ["49ers"])
    True
    >>> contains_all_terms({"go", "49ers"}, ["49ers", "draft"])
    False
    """
    return all(term in text_tokens for term in query_tokens)


def truncate_to_chars(text: str, limit: int = 140) -> str:
    """Clip ``text`` to ``limit`` characters on a word boundary when possible.

    Used by the microblog simulator to honour the 140-character constraint
    that the paper identifies as the root cause of the recall problem.
    """
    if limit <= 0:
        raise ValueError(f"limit must be positive, got {limit}")
    if len(text) <= limit:
        return text
    clipped = text[:limit]
    if " " in clipped:
        clipped = clipped.rsplit(" ", 1)[0]
    return clipped

"""Shared low-level utilities: deterministic RNG, Zipf sampling, text, stats.

Every stochastic component of the reproduction draws randomness through
:class:`repro.utils.rng.SeedSequenceFactory` so that whole experiments are
bit-reproducible from a single integer seed.
"""

from repro.utils.rng import SeedSequenceFactory, derive_seed
from repro.utils.stats import (
    log_transform,
    mean,
    stddev,
    summarize,
    zscores,
)
from repro.utils.text import (
    ngrams,
    normalize,
    phrase_key,
    tokenize,
)
from repro.utils.timing import StageClock, StageReport
from repro.utils.zipf import ZipfSampler, zipf_weights

__all__ = [
    "SeedSequenceFactory",
    "StageClock",
    "StageReport",
    "ZipfSampler",
    "derive_seed",
    "log_transform",
    "mean",
    "ngrams",
    "normalize",
    "phrase_key",
    "stddev",
    "summarize",
    "tokenize",
    "zipf_weights",
    "zscores",
]

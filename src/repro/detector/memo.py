"""Shared per-term score memoisation for the detector family.

Every detector exposes ``score(query) -> tuple[RankedExpert, ...]`` over an
append-only platform, and the evaluation sweeps (and the serving tier's
expansion fan-out) re-visit the same terms across hundreds of queries —
so each detector memoises its scored pools.  The memo is bounded (LRU)
so long-running services cannot grow it without limit, and observable
(``cache_info()``) so benches can report it.

Detectors mix this in and implement ``_score_uncached``.
"""

from __future__ import annotations

from repro.detector.ranking import RankedExpert
from repro.utils.cache import CacheInfo, LRUCache

#: per-term pools are small and terms repeat heavily across sweeps, so a
#: few thousand entries cover every evaluation workload; long-running
#: services stay bounded instead of growing one entry per distinct term
DEFAULT_CACHE_CAPACITY = 8192


class ScoreMemoMixin:
    """Bounded, observable memoisation of :meth:`score` by phrase key."""

    _cache: LRUCache

    def _init_score_cache(
        self, cache_scores: bool, cache_capacity: int | None = None
    ) -> None:
        if cache_capacity is None:
            cache_capacity = DEFAULT_CACHE_CAPACITY
        self._cache = LRUCache(cache_capacity if cache_scores else 0)

    def score(self, query: str) -> tuple[RankedExpert, ...]:
        """The full scored candidate pool (threshold *not* applied).

        Returned as an immutable tuple: the memo hands every caller the
        *same* cached pool, so a mutable return value would let one
        caller's in-place edit poison the memo for every later query.
        """
        from repro.utils.text import phrase_key

        key = phrase_key(query)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        result = tuple(self._score_uncached(query))
        self._cache.put(key, result)
        return result

    def _score_uncached(self, query: str) -> list[RankedExpert]:
        raise NotImplementedError

    def configure_score_cache(
        self, cache_scores: bool = True, cache_capacity: int | None = None
    ) -> None:
        """Replace the memo with a fresh one of the given shape.

        Drops every cached pool.  Fleet workers use this to cap (or
        disable) the per-term memo after an artifact warm start — the
        detector is constructed inside :meth:`ESharp.from_artifact`
        with the default capacity, and a cold-path benchmark replica
        must be able to bound it without rebuilding the system.
        """
        self._init_score_cache(cache_scores, cache_capacity)

    def cache_info(self) -> CacheInfo:
        """Counters of the per-term memo (hits/misses/evictions/size)."""
        return self._cache.cache_info()

    def cache_clear(self) -> int:
        """Drop every memoised pool; returns how many were dropped."""
        return self._cache.clear()

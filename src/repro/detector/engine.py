"""The columnar index engine behind candidate selection.

The seed implementation re-derived every candidate pool at query time:
``set(posting)`` rebuilds, a walk over tweet objects, one dict lookup per
field.  Since per-term scoring is the inner loop of everything above it
(every expanded query fans out into N per-term ``score`` calls), the
:class:`IndexedDetectionEngine` moves that aggregation to **build time**:

* one pass over the platform's columnar ledger packs, per token, the
  complete candidate statistics into parallel arrays
  ``(user_ids, on_topic_tweets, on_topic_mentions,
  on_topic_retweets_received)`` sorted by user id — a single-token term
  answers :func:`~repro.detector.candidates.collect_candidates` as one
  dict lookup;
* multi-token terms intersect the platform's sorted posting rows
  (galloping fast path, no per-query ``set`` materialisation) and
  aggregate straight off the columnar arrays — no tweet objects touched;
* the index stamps the platform's ``mutation_count`` at build and
  rebuilds transparently when ingestion moved on, so late-registered
  users and retroactively resolved retweets are always reflected.

The engine produces statistics *identical* to the scan path, so the
downstream feature/normalise/rank pipeline — and therefore every ranked
answer — is unchanged to the byte.
"""

from __future__ import annotations

import threading
from array import array
from dataclasses import dataclass

from repro.microblog.platform import NO_AUTHOR, MicroblogPlatform
from repro.utils.text import tokenize

__all__ = ["EngineStats", "IndexedDetectionEngine", "TokenCandidates"]


@dataclass(frozen=True)
class TokenCandidates:
    """Packed per-token candidate statistics (columns sorted by user id).

    Alongside the raw counts, the ratio features TS/MI/RI are packed at
    build time — numerators *and* denominators (the platform totals) are
    build-time knowledge, so a single-token term starts its scoring
    pipeline at the normalisation step.
    """

    user_ids: array
    on_topic_tweets: array
    on_topic_mentions: array
    on_topic_retweets_received: array
    topical_signal: array
    mention_impact: array
    retweet_impact: array

    def __len__(self) -> int:
        return len(self.user_ids)

    def estimated_bytes(self) -> int:
        columns = (
            self.user_ids,
            self.on_topic_tweets,
            self.on_topic_mentions,
            self.on_topic_retweets_received,
            self.topical_signal,
            self.mention_impact,
            self.retweet_impact,
        )
        return sum(len(column) * column.itemsize for column in columns)


@dataclass(frozen=True)
class EngineStats:
    """Point-in-time counters of one engine (benches and ops read these)."""

    tokens: int
    candidate_rows: int
    builds: int
    built_at_mutation: int
    single_token_lookups: int
    multi_token_queries: int
    estimated_bytes: int


class IndexedDetectionEngine:
    """Build-time candidate aggregation over one platform.

    Thread-safe: builds serialise on a lock; reads after a build touch
    only immutable packed arrays, so the serving tier's pool-sharded
    per-term scorers can call :meth:`collect` concurrently.
    """

    def __init__(self, platform: MicroblogPlatform) -> None:
        self.platform = platform
        self._lock = threading.Lock()
        #: counters get their own lock so hot-path bumps never contend
        #: with (or wait behind) a rebuild holding the build lock
        self._counter_lock = threading.Lock()
        self._index: dict[str, TokenCandidates] = {}  # guarded-by: _lock
        self._built_at = -1  # guarded-by: _lock
        self._builds = 0  # guarded-by: _lock
        self._single_hits = 0  # guarded-by: _counter_lock
        self._multi_queries = 0  # guarded-by: _counter_lock

    # -- build -------------------------------------------------------------

    def refresh(self) -> bool:
        """(Re)build the index if the platform ingested since last build.

        Returns True when a build ran.  ``ESharp.build()`` calls this so
        the aggregation cost lands in the offline stage, not on the first
        query.
        """
        with self._lock:
            if self._built_at == self.platform.mutation_count:
                return False
            self._build_locked()
            return True

    def _ensure_current(self) -> None:
        # deliberate lock-free fast path: a stale read just falls through
        # to the double-checked rebuild below
        if self._built_at == self.platform.mutation_count:  # analysis: ignore[GUARD001]
            return
        with self._lock:
            if self._built_at != self.platform.mutation_count:
                self._build_locked()

    def _build_locked(self) -> None:  # holds: _lock
        platform = self.platform
        ledger = platform.ledger()
        authors = ledger.authors
        retweet_authors = ledger.retweet_authors
        offsets = ledger.mention_offsets
        mention_ids = ledger.mention_ids
        has_user = platform.has_user
        index: dict[str, TokenCandidates] = {}
        # token-at-a-time so only one token's accumulator dict is ever
        # live; the packed arrays are ~32 bytes per (token, candidate)
        for token in platform.posting_tokens():
            rows = platform.posting_rows(token)
            acc: dict[int, list[int]] = {}
            for row in rows:
                author = authors[row]
                entry = acc.get(author)
                if entry is None:
                    entry = acc[author] = [0, 0, 0]
                entry[0] += 1
                for mentioned in mention_ids[offsets[row] : offsets[row + 1]]:
                    if not has_user(mentioned):
                        continue
                    entry = acc.get(mentioned)
                    if entry is None:
                        entry = acc[mentioned] = [0, 0, 0]
                    entry[1] += 1
                credited = retweet_authors[row]
                if credited != NO_AUTHOR:
                    entry = acc.get(credited)
                    if entry is None:
                        entry = acc[credited] = [0, 0, 0]
                    entry[2] += 1
            ordered = sorted(acc)
            ts = array("d")
            mi = array("d")
            ri = array("d")
            totals_of = platform.totals
            for user_id in ordered:
                counts = acc[user_id]
                totals = totals_of(user_id)
                tweets = totals.tweets
                mentions = totals.mentions_received
                retweets = totals.retweets_received
                ts.append(counts[0] / tweets if tweets > 0 else 0.0)
                mi.append(counts[1] / mentions if mentions > 0 else 0.0)
                ri.append(counts[2] / retweets if retweets > 0 else 0.0)
            index[token] = TokenCandidates(
                user_ids=array("q", ordered),
                on_topic_tweets=array("l", (acc[uid][0] for uid in ordered)),
                on_topic_mentions=array("l", (acc[uid][1] for uid in ordered)),
                on_topic_retweets_received=array(
                    "l", (acc[uid][2] for uid in ordered)
                ),
                topical_signal=ts,
                mention_impact=mi,
                retweet_impact=ri,
            )
        self._index = index
        self._built_at = platform.mutation_count
        self._builds += 1

    # -- persistence (the artifact warm-start path) ------------------------

    def export_packed(self) -> tuple[dict[str, TokenCandidates], int]:
        """The packed index plus the mutation count it was built at.

        The artifact layer persists this instead of re-aggregating the
        corpus on every warm start; the arrays are shared, not copied —
        treat them as immutable (every reader already does).
        """
        with self._lock:
            return self._index, self._built_at

    def restore_packed(
        self, index: dict[str, TokenCandidates], built_at_mutation: int
    ) -> bool:
        """Install a previously exported index, skipping the rebuild.

        Returns ``False`` (and leaves the engine unbuilt) when the index
        was built at a different platform mutation count than the one
        this engine's platform is at — a defensive check; the next
        :meth:`refresh` then rebuilds from the corpus as usual.
        """
        with self._lock:
            if built_at_mutation != self.platform.mutation_count:
                return False
            self._index = index
            self._built_at = built_at_mutation
            return True

    # -- query -------------------------------------------------------------

    def token_candidates(self, token: str) -> TokenCandidates | None:
        """The packed stats of one indexed token (the fast-path lookup)."""
        self._ensure_current()
        # lock-free hot-path read: builds swap the whole dict reference
        return self._index.get(token)  # analysis: ignore[GUARD001]

    def collect(self, query: str) -> dict[int, "CandidateStats"]:
        """Candidate stats for ``query`` — the indexed ``collect_candidates``.

        Single-token queries materialise one packed column set; multi-token
        queries intersect sorted posting rows and aggregate columnar.
        """
        from repro.detector.candidates import CandidateStats

        self._ensure_current()
        terms = set(tokenize(query))
        if not terms:
            return {}
        if len(terms) == 1:
            packed = self._index.get(next(iter(terms)))  # analysis: ignore[GUARD001]
            if packed is None:
                return {}
            with self._counter_lock:
                self._single_hits += 1
            return {
                user_id: CandidateStats(user_id, tweets, mentions, retweets)
                for user_id, tweets, mentions, retweets in zip(
                    packed.user_ids,
                    packed.on_topic_tweets,
                    packed.on_topic_mentions,
                    packed.on_topic_retweets_received,
                )
            }
        with self._counter_lock:
            self._multi_queries += 1
        return self._aggregate_rows(self.platform.matching_rows(query))

    def feature_vectors(self, query: str) -> "list[FeatureVector]":
        """Raw TS/MI/RI vectors for ``query``, user-id order.

        Identical to ``compute_features(platform, collect_candidates(...))``
        — single-token terms stream straight out of the packed feature
        columns; multi-token terms aggregate the posting intersection and
        go through :func:`compute_features` itself.
        """
        from repro.detector.features import FeatureVector, compute_features

        self._ensure_current()
        terms = set(tokenize(query))
        if len(terms) == 1:
            packed = self._index.get(next(iter(terms)))  # analysis: ignore[GUARD001]
            if packed is None:
                return []
            with self._counter_lock:
                self._single_hits += 1
            return [
                FeatureVector(user_id, ts, mi, ri)
                for user_id, ts, mi, ri in zip(
                    packed.user_ids,
                    packed.topical_signal,
                    packed.mention_impact,
                    packed.retweet_impact,
                )
            ]
        stats = self.collect(query)
        if not stats:
            return []
        return compute_features(self.platform, stats)

    def _aggregate_rows(self, rows: list[int]) -> dict[int, "CandidateStats"]:
        from repro.detector.candidates import CandidateStats

        ledger = self.platform.ledger()
        authors = ledger.authors
        retweet_authors = ledger.retweet_authors
        offsets = ledger.mention_offsets
        mention_ids = ledger.mention_ids
        has_user = self.platform.has_user
        stats: dict[int, CandidateStats] = {}

        def entry(user_id: int) -> CandidateStats:
            found = stats.get(user_id)
            if found is None:
                found = stats[user_id] = CandidateStats(user_id=user_id)
            return found

        for row in rows:
            entry(authors[row]).on_topic_tweets += 1
            for mentioned in mention_ids[offsets[row] : offsets[row + 1]]:
                if has_user(mentioned):
                    entry(mentioned).on_topic_mentions += 1
            credited = retweet_authors[row]
            if credited != NO_AUTHOR:
                entry(credited).on_topic_retweets_received += 1
        return stats

    # -- observability -----------------------------------------------------

    def estimated_bytes(self) -> int:
        """Memory held by the packed per-token columns, as of the last
        build.  Pure observability: never triggers a rebuild (consistent
        with :meth:`stats`)."""
        index = self._index  # analysis: ignore[GUARD001] lock-free observability read
        return sum(packed.estimated_bytes() for packed in index.values())

    def stats(self) -> EngineStats:
        with self._lock:
            return EngineStats(
                tokens=len(self._index),
                candidate_rows=sum(
                    len(packed) for packed in self._index.values()
                ),
                builds=self._builds,
                built_at_mutation=self._built_at,
                # benign racy int reads; bumps serialise on _counter_lock
                single_token_lookups=self._single_hits,  # analysis: ignore[GUARD001]
                multi_token_queries=self._multi_queries,  # analysis: ignore[GUARD001]
                estimated_bytes=sum(
                    packed.estimated_bytes()
                    for packed in self._index.values()
                ),
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IndexedDetectionEngine(tokens={len(self._index)}, "  # analysis: ignore[GUARD001]
            f"built_at={self._built_at})"  # analysis: ignore[GUARD001]
        )

"""The columnar index engine behind candidate selection.

The seed implementation re-derived every candidate pool at query time:
``set(posting)`` rebuilds, a walk over tweet objects, one dict lookup per
field.  Since per-term scoring is the inner loop of everything above it
(every expanded query fans out into N per-term ``score`` calls), the
:class:`IndexedDetectionEngine` moves that aggregation to **build time**:

* one pass over the platform's columnar ledger packs, per token, the
  complete candidate statistics into parallel arrays
  ``(user_ids, on_topic_tweets, on_topic_mentions,
  on_topic_retweets_received)`` sorted by user id — a single-token term
  answers :func:`~repro.detector.candidates.collect_candidates` as one
  dict lookup;
* multi-token terms intersect the platform's sorted posting rows
  (galloping fast path, no per-query ``set`` materialisation) and
  aggregate straight off the columnar arrays — no tweet objects touched;
* the index stamps the platform's ``mutation_count`` at build and
  rebuilds transparently when ingestion moved on, so late-registered
  users and retroactively resolved retweets are always reflected.

The engine produces statistics *identical* to the scan path, so the
downstream feature/normalise/rank pipeline — and therefore every ranked
answer — is unchanged to the byte.
"""

from __future__ import annotations

import math
import threading
from array import array
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.microblog.platform import NO_AUTHOR, MicroblogPlatform
from repro.utils.text import tokenize

__all__ = [
    "PACKED_LOG_EPSILON",
    "EngineStats",
    "IndexedDetectionEngine",
    "PackedEngineIndex",
    "TokenCandidates",
]

#: the log-transform floor the packed/persisted log columns are built
#: with; must equal ``NormalizationConfig().epsilon`` — the vectorized
#: scoring tail only uses packed logs when the runtime config matches
PACKED_LOG_EPSILON = 1e-6
_LOG_FLOOR = math.log(PACKED_LOG_EPSILON)


@dataclass(frozen=True)
class TokenCandidates:
    """Packed per-token candidate statistics (columns sorted by user id).

    Alongside the raw counts, the ratio features TS/MI/RI are packed at
    build time — numerators *and* denominators (the platform totals) are
    build-time knowledge, so a single-token term starts its scoring
    pipeline at the normalisation step.
    """

    user_ids: array
    on_topic_tweets: array
    on_topic_mentions: array
    on_topic_retweets_received: array
    topical_signal: array
    mention_impact: array
    retweet_impact: array

    def __len__(self) -> int:
        return len(self.user_ids)

    def estimated_bytes(self) -> int:
        columns = (
            self.user_ids,
            self.on_topic_tweets,
            self.on_topic_mentions,
            self.on_topic_retweets_received,
            self.topical_signal,
            self.mention_impact,
            self.retweet_impact,
        )
        return sum(len(column) * column.itemsize for column in columns)


class PackedEngineIndex:
    """Lazy ``token → TokenCandidates`` over flat buffer-backed columns.

    The artifact layer builds one of these straight over mmap'd sidecar
    views: construction touches only the token table; a token's
    :class:`TokenCandidates` is sliced out of the flat columns on first
    lookup and memoised.  Read-only — the engine swaps it for a freshly
    built dict index the moment the platform mutates
    (``_ensure_current``), so no sealing is needed here.  Duck-compatible
    with the plain dict index everywhere the engine and the artifact
    codecs look (``get``/``in``/``len``/iteration/``keys``/``values``/
    ``items``).
    """

    __slots__ = (
        "_position",
        "_offsets",
        "_columns",
        "_logs",
        "_log_epsilon",
        "_memo",
    )

    FIELDS = (
        "user_ids",
        "on_topic_tweets",
        "on_topic_mentions",
        "on_topic_retweets_received",
        "topical_signal",
        "mention_impact",
        "retweet_impact",
    )
    LOG_FIELDS = ("log_topical_signal", "log_mention_impact", "log_retweet_impact")

    def __init__(
        self,
        tokens: Sequence[str],
        offsets,
        columns: dict,
        log_columns: dict | None = None,
        log_epsilon: float = PACKED_LOG_EPSILON,
    ) -> None:
        if len(offsets) != len(tokens) + 1:
            raise ValueError("offsets disagree with the token table")
        self._position = dict(zip(tokens, range(len(tokens))))
        if len(self._position) != len(tokens):
            raise ValueError("duplicate tokens in packed index")
        self._offsets = offsets
        self._columns = tuple(columns[name] for name in self.FIELDS)
        self._logs = (
            tuple(log_columns[name] for name in self.LOG_FIELDS)
            if log_columns
            else None
        )
        self._log_epsilon = log_epsilon
        # benign-race memo: fills are deterministic, setdefault keeps one winner
        self._memo: dict[str, TokenCandidates] = {}

    def __len__(self) -> int:
        return len(self._position)

    def __contains__(self, token: str) -> bool:
        return token in self._position

    def __iter__(self) -> Iterator[str]:
        return iter(self._position)

    def keys(self):
        return self._position.keys()

    def get(self, token: str, default=None):
        found = self._memo.get(token)
        if found is not None:
            return found
        index = self._position.get(token)
        if index is None:
            return default
        start, stop = self._offsets[index], self._offsets[index + 1]
        packed = TokenCandidates(
            *(column[start:stop] for column in self._columns)
        )
        return self._memo.setdefault(token, packed)

    def __getitem__(self, token: str) -> TokenCandidates:
        found = self.get(token)
        if found is None:
            raise KeyError(token)
        return found

    def values(self) -> Iterator[TokenCandidates]:
        for token in self._position:
            yield self.get(token)

    def items(self) -> Iterator[tuple[str, TokenCandidates]]:
        for token in self._position:
            yield token, self.get(token)

    def log_columns(self, token: str, epsilon: float):
        """Persisted log-feature slices for one token, or ``None`` when
        the sidecar carried none or was built at a different epsilon."""
        if self._logs is None or epsilon != self._log_epsilon:
            return None
        index = self._position.get(token)
        if index is None:
            return None
        start, stop = self._offsets[index], self._offsets[index + 1]
        return tuple(column[start:stop] for column in self._logs)

    def candidate_rows(self) -> int:
        """Total packed rows, straight off the offsets (no materialise)."""
        return self._offsets[len(self._offsets) - 1]

    def flat_parts(self):
        """``(tokens, offsets, columns, log_columns, epsilon)`` — the
        re-encode fast path: re-saving streams the flat buffers straight
        into the next sidecar instead of re-flattening per-token slices.
        ``columns``/``log_columns`` are keyed by :data:`FIELDS` /
        :data:`LOG_FIELDS` names; ``log_columns`` is ``None`` when the
        source sidecar carried none."""
        columns = dict(zip(self.FIELDS, self._columns))
        logs = (
            dict(zip(self.LOG_FIELDS, self._logs))
            if self._logs is not None
            else None
        )
        return list(self._position), self._offsets, columns, logs, self._log_epsilon

    def estimated_bytes(self) -> int:
        total = sum(len(column) * column.itemsize for column in self._columns)
        if self._logs is not None:
            total += sum(len(column) * column.itemsize for column in self._logs)
        return total


def _index_candidate_rows(index) -> int:
    fast = getattr(index, "candidate_rows", None)
    if fast is not None:
        return fast()
    return sum(len(packed) for packed in index.values())


def _index_estimated_bytes(index) -> int:
    fast = getattr(index, "estimated_bytes", None)
    if fast is not None:
        return fast()
    return sum(packed.estimated_bytes() for packed in index.values())


@dataclass(frozen=True)
class EngineStats:
    """Point-in-time counters of one engine (benches and ops read these)."""

    tokens: int
    candidate_rows: int
    builds: int
    built_at_mutation: int
    single_token_lookups: int
    multi_token_queries: int
    estimated_bytes: int


class IndexedDetectionEngine:
    """Build-time candidate aggregation over one platform.

    Thread-safe: builds serialise on a lock; reads after a build touch
    only immutable packed arrays, so the serving tier's pool-sharded
    per-term scorers can call :meth:`collect` concurrently.
    """

    def __init__(self, platform: MicroblogPlatform) -> None:
        self.platform = platform
        self._lock = threading.Lock()
        #: counters get their own lock so hot-path bumps never contend
        #: with (or wait behind) a rebuild holding the build lock
        self._counter_lock = threading.Lock()
        self._index: dict[str, TokenCandidates] | PackedEngineIndex = {}  # guarded-by: _lock
        self._built_at = -1  # guarded-by: _lock
        self._builds = 0  # guarded-by: _lock
        #: token → (packed, log columns) pairs; benign-race fill cache —
        #: entries are validated by packed-identity on every read, so a
        #: stale entry from a superseded index can never be served
        self._log_memo: dict[str, tuple] = {}
        self._single_hits = 0  # guarded-by: _counter_lock
        self._multi_queries = 0  # guarded-by: _counter_lock

    # -- build -------------------------------------------------------------

    def refresh(self) -> bool:
        """(Re)build the index if the platform ingested since last build.

        Returns True when a build ran.  ``ESharp.build()`` calls this so
        the aggregation cost lands in the offline stage, not on the first
        query.
        """
        with self._lock:
            if self._built_at == self.platform.mutation_count:
                return False
            self._build_locked()
            return True

    def _ensure_current(self) -> None:
        # deliberate lock-free fast path: a stale read just falls through
        # to the double-checked rebuild below
        if self._built_at == self.platform.mutation_count:  # analysis: ignore[GUARD001]
            return
        with self._lock:
            if self._built_at != self.platform.mutation_count:
                self._build_locked()

    def _build_locked(self) -> None:  # holds: _lock
        platform = self.platform
        ledger = platform.ledger()
        authors = ledger.authors
        retweet_authors = ledger.retweet_authors
        offsets = ledger.mention_offsets
        mention_ids = ledger.mention_ids
        has_user = platform.has_user
        index: dict[str, TokenCandidates] = {}
        # token-at-a-time so only one token's accumulator dict is ever
        # live; the packed arrays are ~32 bytes per (token, candidate)
        for token in platform.posting_tokens():
            rows = platform.posting_rows(token)
            acc: dict[int, list[int]] = {}
            for row in rows:
                author = authors[row]
                entry = acc.get(author)
                if entry is None:
                    entry = acc[author] = [0, 0, 0]
                entry[0] += 1
                for mentioned in mention_ids[offsets[row] : offsets[row + 1]]:
                    if not has_user(mentioned):
                        continue
                    entry = acc.get(mentioned)
                    if entry is None:
                        entry = acc[mentioned] = [0, 0, 0]
                    entry[1] += 1
                credited = retweet_authors[row]
                if credited != NO_AUTHOR:
                    entry = acc.get(credited)
                    if entry is None:
                        entry = acc[credited] = [0, 0, 0]
                    entry[2] += 1
            ordered = sorted(acc)
            ts = array("d")
            mi = array("d")
            ri = array("d")
            totals_of = platform.totals
            for user_id in ordered:
                counts = acc[user_id]
                totals = totals_of(user_id)
                tweets = totals.tweets
                mentions = totals.mentions_received
                retweets = totals.retweets_received
                ts.append(counts[0] / tweets if tweets > 0 else 0.0)
                mi.append(counts[1] / mentions if mentions > 0 else 0.0)
                ri.append(counts[2] / retweets if retweets > 0 else 0.0)
            index[token] = TokenCandidates(
                user_ids=array("q", ordered),
                on_topic_tweets=array("l", (acc[uid][0] for uid in ordered)),
                on_topic_mentions=array("l", (acc[uid][1] for uid in ordered)),
                on_topic_retweets_received=array(
                    "l", (acc[uid][2] for uid in ordered)
                ),
                topical_signal=ts,
                mention_impact=mi,
                retweet_impact=ri,
            )
        self._index = index
        self._built_at = platform.mutation_count
        self._builds += 1
        self._log_memo = {}

    # -- persistence (the artifact warm-start path) ------------------------

    def export_packed(self) -> tuple["dict[str, TokenCandidates] | PackedEngineIndex", int]:
        """The packed index plus the mutation count it was built at.

        The artifact layer persists this instead of re-aggregating the
        corpus on every warm start; the arrays are shared, not copied —
        treat them as immutable (every reader already does).  A freshly
        mmap-restored engine hands back its :class:`PackedEngineIndex`
        unchanged; the codecs consume either shape.
        """
        with self._lock:
            return self._index, self._built_at

    def restore_packed(
        self,
        index: "dict[str, TokenCandidates] | PackedEngineIndex",
        built_at_mutation: int,
    ) -> bool:
        """Install a previously exported index, skipping the rebuild.

        ``index`` may be an owned dict or a buffer-backed
        :class:`PackedEngineIndex` straight off an mmap'd sidecar.
        Returns ``False`` (and leaves the engine unbuilt) when the index
        was built at a different platform mutation count than the one
        this engine's platform is at — a defensive check; the next
        :meth:`refresh` then rebuilds from the corpus as usual.
        """
        with self._lock:
            if built_at_mutation != self.platform.mutation_count:
                return False
            self._index = index
            self._built_at = built_at_mutation
            self._log_memo = {}
            return True

    # -- query -------------------------------------------------------------

    def token_candidates(self, token: str) -> TokenCandidates | None:
        """The packed stats of one indexed token (the fast-path lookup)."""
        self._ensure_current()
        # lock-free hot-path read: builds swap the whole dict reference
        return self._index.get(token)  # analysis: ignore[GUARD001]

    def collect(self, query: str) -> dict[int, "CandidateStats"]:
        """Candidate stats for ``query`` — the indexed ``collect_candidates``.

        Single-token queries materialise one packed column set; multi-token
        queries intersect sorted posting rows and aggregate columnar.
        """
        from repro.detector.candidates import CandidateStats

        self._ensure_current()
        terms = set(tokenize(query))
        if not terms:
            return {}
        if len(terms) == 1:
            packed = self._index.get(next(iter(terms)))  # analysis: ignore[GUARD001]
            if packed is None:
                return {}
            with self._counter_lock:
                self._single_hits += 1
            return {
                user_id: CandidateStats(user_id, tweets, mentions, retweets)
                for user_id, tweets, mentions, retweets in zip(
                    packed.user_ids,
                    packed.on_topic_tweets,
                    packed.on_topic_mentions,
                    packed.on_topic_retweets_received,
                )
            }
        with self._counter_lock:
            self._multi_queries += 1
        return self._aggregate_rows(self.platform.matching_rows(query))

    def feature_vectors(self, query: str) -> "list[FeatureVector]":
        """Raw TS/MI/RI vectors for ``query``, user-id order.

        Identical to ``compute_features(platform, collect_candidates(...))``
        — single-token terms stream straight out of the packed feature
        columns; multi-token terms aggregate the posting intersection and
        go through :func:`compute_features` itself.
        """
        from repro.detector.features import FeatureVector, compute_features

        self._ensure_current()
        terms = set(tokenize(query))
        if len(terms) == 1:
            packed = self._index.get(next(iter(terms)))  # analysis: ignore[GUARD001]
            if packed is None:
                return []
            with self._counter_lock:
                self._single_hits += 1
            return [
                FeatureVector(user_id, ts, mi, ri)
                for user_id, ts, mi, ri in zip(
                    packed.user_ids,
                    packed.topical_signal,
                    packed.mention_impact,
                    packed.retweet_impact,
                )
            ]
        stats = self.collect(query)
        if not stats:
            return []
        return compute_features(self.platform, stats)

    def packed_scoring_columns(self, token: str, epsilon: float):
        """``(packed, log_columns)`` for one token, mutually consistent.

        The fast entry point of the vectorized scoring tail: returns the
        token's :class:`TokenCandidates` plus its log-transformed TS/MI/RI
        columns, or ``None`` when the token is unindexed.  ``log_columns``
        is ``None`` when ``epsilon`` differs from
        :data:`PACKED_LOG_EPSILON` and the index carries no persisted
        columns for it — callers then log-transform scalar-side.

        Exactness contract: every log value is ``math.log(max(v,
        epsilon))`` — the scalar ``log_transform`` spec — computed with
        ``math.log``, never ``numpy.log`` (the two differ in the last ulp
        on this libm).  Memo entries are keyed by token but validated by
        packed-column identity, so a rebuild can never pair stale logs
        with fresh counts.
        """
        self._ensure_current()
        index = self._index  # analysis: ignore[GUARD001] lock-free hot-path read
        packed = index.get(token)
        if packed is None:
            return None
        with self._counter_lock:
            self._single_hits += 1
        persisted = getattr(index, "log_columns", None)
        if persisted is not None:
            logs = persisted(token, epsilon)
            if logs is not None:
                return packed, logs
        if epsilon != PACKED_LOG_EPSILON:
            return packed, None
        entry = self._log_memo.get(token)
        if entry is not None and entry[0] is packed:
            return packed, entry[1]
        logs = tuple(
            array(
                "d",
                [
                    math.log(value) if value > PACKED_LOG_EPSILON else _LOG_FLOOR
                    for value in column
                ],
            )
            for column in (
                packed.topical_signal,
                packed.mention_impact,
                packed.retweet_impact,
            )
        )
        self._log_memo[token] = (packed, logs)
        return packed, logs

    def _aggregate_rows(self, rows: list[int]) -> dict[int, "CandidateStats"]:
        from repro.detector.candidates import CandidateStats

        ledger = self.platform.ledger()
        authors = ledger.authors
        retweet_authors = ledger.retweet_authors
        offsets = ledger.mention_offsets
        mention_ids = ledger.mention_ids
        has_user = self.platform.has_user
        stats: dict[int, CandidateStats] = {}

        def entry(user_id: int) -> CandidateStats:
            found = stats.get(user_id)
            if found is None:
                found = stats[user_id] = CandidateStats(user_id=user_id)
            return found

        for row in rows:
            entry(authors[row]).on_topic_tweets += 1
            for mentioned in mention_ids[offsets[row] : offsets[row + 1]]:
                if has_user(mentioned):
                    entry(mentioned).on_topic_mentions += 1
            credited = retweet_authors[row]
            if credited != NO_AUTHOR:
                entry(credited).on_topic_retweets_received += 1
        return stats

    # -- observability -----------------------------------------------------

    def estimated_bytes(self) -> int:
        """Memory held by the packed per-token columns, as of the last
        build.  Pure observability: never triggers a rebuild (consistent
        with :meth:`stats`)."""
        index = self._index  # analysis: ignore[GUARD001] lock-free observability read
        return _index_estimated_bytes(index)

    def stats(self) -> EngineStats:
        with self._lock:
            return EngineStats(
                tokens=len(self._index),
                # duck-typed: a PackedEngineIndex answers straight off its
                # offsets without materialising a single TokenCandidates
                candidate_rows=_index_candidate_rows(self._index),
                builds=self._builds,
                built_at_mutation=self._built_at,
                # benign racy int reads; bumps serialise on _counter_lock
                single_token_lookups=self._single_hits,  # analysis: ignore[GUARD001]
                multi_token_queries=self._multi_queries,  # analysis: ignore[GUARD001]
                estimated_bytes=_index_estimated_bytes(self._index),
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IndexedDetectionEngine(tokens={len(self._index)}, "  # analysis: ignore[GUARD001]
            f"built_at={self._built_at})"  # analysis: ignore[GUARD001]
        )

"""Vectorized scoring tail: normalize → score → rank as numpy columns.

# analysis: exact-path

The scalar pipeline (``normalize_features`` → ``score_candidates``) is
the spec; this module is a drop-in replacement for it that runs the
per-candidate loops as numpy column operations.  It is **bit-identical**
to the scalar tail on finite inputs — not approximately, not "within
tolerance" — which is what lets :class:`PalCountsDetector` route through
it without perturbing a single ranked answer.  The equivalence is by
construction, each scalar step mapped to an IEEE-identical column step:

* ``mean``: the scalar ``sum(list)/len`` is a left-to-right float
  accumulation; ``np.cumsum(col)[-1]`` performs the same sequential
  adds, and the final division happens in python-float space;
* ``stddev``: deviations ``col - centre`` broadcast the same subtraction
  per element; squares are ``d * d`` (the scalar path squares by
  multiplication too — see ``utils.stats.stddev``); the square sum is
  again a cumsum tail and the ``sqrt`` is ``math.sqrt`` on a scalar;
* the constancy guard compares the *identical* spread/centre floats, so
  both paths take the all-zeros branch together;
* log transform: ``numpy.log`` and ``math.log`` disagree in the last
  ulp on this libm, so log columns are **never** computed with numpy —
  they come packed from the engine (``math.log`` at build/save time) or
  from the scalar ``log_transform`` itself;
* score: ``w1*a + w2*b + w3*c`` associates left-to-right in both paths;
* ordering: ``np.lexsort((user_ids, -scores))`` is exactly the scalar
  ``sort(key=lambda e: (-e.score, e.user_id))`` — user ids are unique,
  lexsort's primary key is the last one, and ``-0.0``/``0.0`` compare
  equal under both orderings so ties fall through to user id identically.

Every float that reaches an output tuple goes through
``ndarray.tolist()``, which yields the exact IEEE doubles.  numpy is
optional: when it is missing the detector keeps the scalar tail and
nothing here is used (``exact_tail_available``).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.detector.features import FeatureVector
from repro.detector.normalize import NormalizationConfig, NormalizedFeatures
from repro.detector.ranking import RankedExpert, RankingConfig
from repro.utils.stats import log_transform
from repro.utils.text import tokenize

try:  # pragma: no cover - import guard
    import numpy as _np
except ImportError:  # pragma: no cover - scalar-only deployment
    _np = None

__all__ = [
    "exact_tail_available",
    "score_engine_query_exact",
    "score_vectors_exact",
]


def exact_tail_available() -> bool:
    """True when numpy is importable; the tail is exact by construction."""
    return _np is not None


def _zscore_column_exact(column):
    """z-scores of one float64 column, bit-identical to ``stats.zscores``.

    ``column`` must be non-empty.  Returns a float64 array.
    """
    n = column.shape[0]
    # cumsum's last element is the same left-to-right accumulation the
    # scalar sum() performs; float() drops to a python double before the
    # division, exactly like mean()
    centre = float(_np.cumsum(column)[-1]) / n
    deviations = column - centre
    squares = deviations * deviations
    spread = math.sqrt(float(_np.cumsum(squares)[-1]) / n)
    if spread <= 1e-12 * max(1.0, abs(centre)):
        return _np.zeros(n)
    return deviations / spread


def _rank_columns_exact(
    platform,
    vectors: Sequence[FeatureVector],
    z_inputs,
    ranking: RankingConfig,
) -> list[RankedExpert]:
    """The shared tail: z-score three columns, weighted score, exact sort."""
    z_ts = _zscore_column_exact(z_inputs[0])
    z_mi = _zscore_column_exact(z_inputs[1])
    z_ri = _zscore_column_exact(z_inputs[2])
    # associates (w1*a + w2*b) + w3*c, matching the scalar expression
    scores = (
        ranking.weight_topical_signal * z_ts
        + ranking.weight_mention_impact * z_mi
        + ranking.weight_retweet_impact * z_ri
    )
    user_ids = _np.array([vector[0] for vector in vectors], dtype=_np.int64)
    # lexsort's primary key is its *last* key: ascending -score, ties
    # broken by ascending user id — the scalar sort key, exactly
    order = _np.lexsort((user_ids, -scores))
    z_ts_list = z_ts.tolist()
    z_mi_list = z_mi.tolist()
    z_ri_list = z_ri.tolist()
    score_list = scores.tolist()
    user_of = platform.user
    experts: list[RankedExpert] = []
    append = experts.append
    for i in order.tolist():
        vector = vectors[i]
        user = user_of(vector.user_id)
        append(
            RankedExpert(
                user.user_id,
                user.screen_name,
                user.description,
                user.verified,
                user.followers,
                score_list[i],
                vector,
                NormalizedFeatures(
                    vector.user_id, z_ts_list[i], z_mi_list[i], z_ri_list[i]
                ),
            )
        )
    return experts


def score_vectors_exact(
    platform,
    vectors: Sequence[FeatureVector],
    normalization: NormalizationConfig,
    ranking: RankingConfig,
) -> list[RankedExpert] | None:
    """Vectorized ``normalize_features`` + ``score_candidates`` over
    prebuilt feature vectors.  Returns ``None`` when numpy is missing
    (caller falls back to the scalar tail)."""
    if _np is None:
        return None
    if not vectors:
        return []
    ts_list = [vector[1] for vector in vectors]
    mi_list = [vector[2] for vector in vectors]
    ri_list = [vector[3] for vector in vectors]
    if normalization.apply_log:
        # scalar log_transform, never numpy.log — see the module docstring
        epsilon = normalization.epsilon
        z_inputs = (
            _np.array(log_transform(ts_list, epsilon)),
            _np.array(log_transform(mi_list, epsilon)),
            _np.array(log_transform(ri_list, epsilon)),
        )
    else:
        z_inputs = (
            _np.array(ts_list, dtype=_np.float64),
            _np.array(mi_list, dtype=_np.float64),
            _np.array(ri_list, dtype=_np.float64),
        )
    return _rank_columns_exact(platform, vectors, z_inputs, ranking)


def _score_packed_exact(
    platform,
    packed,
    logs,
    normalization: NormalizationConfig,
    ranking: RankingConfig,
) -> list[RankedExpert]:
    """Score one token straight off its packed columns.

    ``logs`` is the engine's ``(log_ts, log_mi, log_ri)`` triple —
    persisted in the sidecar or memoised, always ``math.log``-derived —
    or ``None`` when the runtime epsilon has no packed columns.
    """
    if not len(packed):
        return []
    uid_list = packed.user_ids.tolist()
    ts_list = packed.topical_signal.tolist()
    mi_list = packed.mention_impact.tolist()
    ri_list = packed.retweet_impact.tolist()
    vectors = [
        FeatureVector(user_id, ts, mi, ri)
        for user_id, ts, mi, ri in zip(uid_list, ts_list, mi_list, ri_list)
    ]
    if normalization.apply_log:
        if logs is not None:
            # zero-copy over the packed/persisted log columns
            z_inputs = tuple(
                _np.frombuffer(column, dtype=_np.float64) for column in logs
            )
        else:
            epsilon = normalization.epsilon
            z_inputs = (
                _np.array(log_transform(ts_list, epsilon)),
                _np.array(log_transform(mi_list, epsilon)),
                _np.array(log_transform(ri_list, epsilon)),
            )
    else:
        z_inputs = (
            _np.frombuffer(packed.topical_signal, dtype=_np.float64),
            _np.frombuffer(packed.mention_impact, dtype=_np.float64),
            _np.frombuffer(packed.retweet_impact, dtype=_np.float64),
        )
    return _rank_columns_exact(platform, vectors, z_inputs, ranking)


def score_engine_query_exact(
    engine,
    platform,
    query: str,
    normalization: NormalizationConfig,
    ranking: RankingConfig,
) -> list[RankedExpert] | None:
    """The engine-backed entry point used by :class:`PalCountsDetector`.

    Single-token queries score straight off the packed per-token columns
    (log columns included, when the epsilon matches); multi-token queries
    aggregate through the engine as usual and vectorize only the tail.
    Returns ``None`` when numpy is missing.
    """
    if _np is None:
        return None
    terms = set(tokenize(query))
    if not terms:
        return []
    if len(terms) == 1:
        found = engine.packed_scoring_columns(
            next(iter(terms)), normalization.epsilon
        )
        if found is None:
            return []
        packed, logs = found
        return _score_packed_exact(platform, packed, logs, normalization, ranking)
    vectors = engine.feature_vectors(query)
    return score_vectors_exact(platform, vectors, normalization, ranking)

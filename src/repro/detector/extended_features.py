"""The wider Pal & Counts feature set (ABL6).

§3: *"In their paper, Pal and Counts evaluate a dozen features. We kept
those which they present as important: the topical signal (TS), the
mention impact (MI), and the retweet impact (RI)."*  This module
implements the wider set their WSDM'11 paper derives from tweet
metadata, so the production simplification can be measured instead of
assumed (bench ABL6):

* ``OT1`` — signal strength: fraction of the user's on-topic tweets that
  are original (not retweets); Pal & Counts argue originality signals
  authority.
* ``CS``  — conversation share: fraction of on-topic tweets that engage
  others (carry a mention); high values indicate discussion rather than
  broadcast.
* ``SS``  — self-similarity: how repetitive the user's on-topic tweets
  are (token-level Jaccard between consecutive tweets); bots score high.
* ``HR``  — hashtag ratio: fraction of on-topic tweets using a hashtag
  form.
* ``GI``  — graph influence: log-scaled follower count (the
  "graph characteristics" family).

All features are computed from the same one-pass candidate statistics the
core detector uses, normalised identically (log + z-score), and combined
by weighted sum.  :class:`ExtendedPalCountsDetector` exposes the standard
``score``/``detect`` interface.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.detector.candidates import collect_candidates
from repro.detector.memo import ScoreMemoMixin
from repro.detector.normalize import NormalizationConfig
from repro.detector.ranking import RankedExpert, RankingConfig
from repro.detector.features import FeatureVector
from repro.detector.normalize import NormalizedFeatures
from repro.microblog.platform import MicroblogPlatform
from repro.microblog.tweets import Tweet
from repro.utils.stats import log_transform, zscores


@dataclass(frozen=True)
class ExtendedWeights:
    """Weights over the extended feature set (defaults sum to 1)."""

    topical_signal: float = 0.30
    mention_impact: float = 0.20
    retweet_impact: float = 0.15
    originality: float = 0.10
    conversation: float = 0.05
    #: self-similarity is a *penalty* (bots repeat themselves)
    self_similarity: float = -0.10
    hashtag_ratio: float = 0.05
    graph_influence: float = 0.05

    def __post_init__(self) -> None:
        positive = (
            self.topical_signal
            + self.mention_impact
            + self.retweet_impact
            + self.originality
            + self.conversation
            + self.hashtag_ratio
            + self.graph_influence
        )
        if positive <= 0:
            raise ValueError("at least one positive weight is required")


@dataclass
class ExtendedFeatureRow:
    """All extended features of one candidate for one query."""

    user_id: int
    topical_signal: float = 0.0
    mention_impact: float = 0.0
    retweet_impact: float = 0.0
    originality: float = 0.0
    conversation: float = 0.0
    self_similarity: float = 0.0
    hashtag_ratio: float = 0.0
    graph_influence: float = 0.0


def _token_jaccard(a: frozenset[str], b: frozenset[str]) -> float:
    if not a or not b:
        return 0.0
    return len(a & b) / len(a | b)


def compute_extended_features(
    platform: MicroblogPlatform, query: str
) -> list[ExtendedFeatureRow]:
    """One pass over the matching tweets computing every feature."""
    stats = collect_candidates(platform, query)
    if not stats:
        return []
    on_topic_tweets: dict[int, list[Tweet]] = {}
    for tweet in platform.matching_tweets(query):
        on_topic_tweets.setdefault(tweet.author_id, []).append(tweet)

    rows: list[ExtendedFeatureRow] = []
    for user_id in sorted(stats):
        candidate = stats[user_id]
        totals = platform.totals(user_id)
        user = platform.user(user_id)
        row = ExtendedFeatureRow(user_id=user_id)
        if totals.tweets:
            row.topical_signal = candidate.on_topic_tweets / totals.tweets
        if totals.mentions_received:
            row.mention_impact = (
                candidate.on_topic_mentions / totals.mentions_received
            )
        if totals.retweets_received:
            row.retweet_impact = (
                candidate.on_topic_retweets_received / totals.retweets_received
            )
        authored = on_topic_tweets.get(user_id, [])
        if authored:
            originals = [t for t in authored if not t.is_retweet]
            row.originality = len(originals) / len(authored)
            row.conversation = sum(
                1 for t in authored if t.mentions and not t.is_retweet
            ) / len(authored)
            row.hashtag_ratio = sum(
                1
                for t in authored
                if any(token.startswith("#") for token in t.tokens)
            ) / len(authored)
            if len(authored) >= 2:
                pairs = list(zip(authored, authored[1:]))
                row.self_similarity = sum(
                    _token_jaccard(a.tokens, b.tokens) for a, b in pairs
                ) / len(pairs)
        row.graph_influence = math.log1p(max(user.followers, 0))
        rows.append(row)
    return rows


_FEATURE_NAMES = (
    "topical_signal",
    "mention_impact",
    "retweet_impact",
    "originality",
    "conversation",
    "self_similarity",
    "hashtag_ratio",
    "graph_influence",
)


class ExtendedPalCountsDetector(ScoreMemoMixin):
    """Pal & Counts with the full feature set — the ABL6 comparator."""

    def __init__(
        self,
        platform: MicroblogPlatform,
        ranking: RankingConfig | None = None,
        weights: ExtendedWeights | None = None,
        normalization: NormalizationConfig | None = None,
        cache_scores: bool = True,
        cache_capacity: int | None = None,
    ) -> None:
        self.platform = platform
        self.ranking = ranking or RankingConfig()
        self.weights = weights or ExtendedWeights()
        self.normalization = normalization or NormalizationConfig()
        self._init_score_cache(cache_scores, cache_capacity)

    def detect(
        self, query: str, min_zscore: float | None = None
    ) -> list[RankedExpert]:
        threshold = (
            self.ranking.min_zscore if min_zscore is None else min_zscore
        )
        kept = [e for e in self.score(query) if e.score >= threshold]
        return kept[: self.ranking.max_results]

    def candidate_count(self, query: str) -> int:
        return len(collect_candidates(self.platform, query))

    def _score_uncached(self, query: str) -> list[RankedExpert]:
        rows = compute_extended_features(self.platform, query)
        if not rows:
            return []

        def z_column(name: str) -> list[float]:
            values = [getattr(row, name) for row in rows]
            # graph influence is already log-scale; don't double-log it
            if name != "graph_influence" and self.normalization.apply_log:
                values = log_transform(values, self.normalization.epsilon)
            return zscores(values)

        z_by_name = {name: z_column(name) for name in _FEATURE_NAMES}
        weights = self.weights
        experts: list[RankedExpert] = []
        for position, row in enumerate(rows):
            score = (
                weights.topical_signal * z_by_name["topical_signal"][position]
                + weights.mention_impact * z_by_name["mention_impact"][position]
                + weights.retweet_impact * z_by_name["retweet_impact"][position]
                + weights.originality * z_by_name["originality"][position]
                + weights.conversation * z_by_name["conversation"][position]
                + weights.self_similarity
                * z_by_name["self_similarity"][position]
                + weights.hashtag_ratio * z_by_name["hashtag_ratio"][position]
                + weights.graph_influence
                * z_by_name["graph_influence"][position]
            )
            user = self.platform.user(row.user_id)
            experts.append(
                RankedExpert(
                    user_id=row.user_id,
                    screen_name=user.screen_name,
                    description=user.description,
                    verified=user.verified,
                    followers=user.followers,
                    score=score,
                    features=FeatureVector(
                        row.user_id,
                        row.topical_signal,
                        row.mention_impact,
                        row.retweet_impact,
                    ),
                    zscores=NormalizedFeatures(
                        row.user_id,
                        z_by_name["topical_signal"][position],
                        z_by_name["mention_impact"][position],
                        z_by_name["retweet_impact"][position],
                    ),
                )
            )
        experts.sort(key=lambda e: (-e.score, e.user_id))
        return experts

"""Pal & Counts' optional cluster-analysis filter (ablation ABL3).

Pal & Counts refine their ranked list by clustering candidates in feature
space with a Gaussian mixture and keeping only the cluster of highest
mean authority.  The paper drops this step: *"This step is computationally
expensive, and it is contrary to our objective of improving recall."*

We implement a 1-D two-component Gaussian mixture on the aggregated score,
fit by EM, keeping the higher-mean component — faithful to the mechanism
while staying dependency-free.  ABL3 measures exactly the trade the paper
claims: the filter tightens precision and costs recall.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.detector.ranking import RankedExpert


@dataclass(frozen=True)
class GaussianClusterFilter:
    """Keep candidates assigned to the high-mean score cluster."""

    max_em_iterations: int = 50
    tolerance: float = 1e-6
    #: pools smaller than this are passed through untouched — a mixture
    #: over a handful of points is noise
    min_pool: int = 6

    def apply(self, scored: list[RankedExpert]) -> list[RankedExpert]:
        if len(scored) < self.min_pool:
            return scored
        scores = [expert.score for expert in scored]
        assignments = self._fit_assignments(scores)
        kept = [
            expert
            for expert, in_top in zip(scored, assignments)
            if in_top
        ]
        return kept if kept else scored

    # -- EM on a two-component 1-D Gaussian mixture --------------------------

    def _fit_assignments(self, scores: list[float]) -> list[bool]:
        low = min(scores)
        high = max(scores)
        if high - low < 1e-12:
            return [True] * len(scores)
        # init: means at the extremes, shared variance, equal priors
        mu = [low, high]
        var = [_variance(scores)] * 2
        pi = [0.5, 0.5]
        responsibility = [[0.5, 0.5] for _ in scores]

        for _ in range(self.max_em_iterations):
            # E step
            moved = 0.0
            for i, x in enumerate(scores):
                weights = [
                    pi[k] * _gaussian(x, mu[k], var[k]) for k in range(2)
                ]
                total = sum(weights) or 1e-300
                new = [w / total for w in weights]
                moved += abs(new[0] - responsibility[i][0])
                responsibility[i] = new
            # M step
            for k in range(2):
                mass = sum(r[k] for r in responsibility) or 1e-12
                mu[k] = sum(r[k] * x for r, x in zip(responsibility, scores)) / mass
                var[k] = (
                    sum(
                        r[k] * (x - mu[k]) ** 2
                        for r, x in zip(responsibility, scores)
                    )
                    / mass
                )
                var[k] = max(var[k], 1e-9)
                pi[k] = mass / len(scores)
            if moved / len(scores) < self.tolerance:
                break

        top = 0 if mu[0] >= mu[1] else 1
        return [r[top] >= 0.5 for r in responsibility]


def _gaussian(x: float, mu: float, var: float) -> float:
    return math.exp(-((x - mu) ** 2) / (2 * var)) / math.sqrt(2 * math.pi * var)


def _variance(values: list[float]) -> float:
    mean = sum(values) / len(values)
    return max(
        sum((v - mean) ** 2 for v in values) / len(values), 1e-9
    )

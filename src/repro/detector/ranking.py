"""Score aggregation and thresholding (§3, Figure 9).

*"To aggregate the scores, we used a weighted sum, using the authors'
guidelines"* — Pal & Counts emphasise the topical signal above the impact
features, which the default weights encode.  *"The users must choose a
minimum z-score, under which the experts are rejected"* — the threshold is
applied to the aggregated score and swept in Figure 9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

from repro.detector.features import FeatureVector
from repro.detector.normalize import NormalizedFeatures
from repro.microblog.platform import MicroblogPlatform


@dataclass(frozen=True)
class RankingConfig:
    """Feature weights and selection knobs."""

    weight_topical_signal: float = 0.5
    weight_mention_impact: float = 0.3
    weight_retweet_impact: float = 0.2
    #: reject candidates whose aggregated z-score falls below this
    min_zscore: float = 1.0
    #: cap on returned experts ("up to 15 experts per algorithm", §6.2.1)
    max_results: int = 15

    def __post_init__(self) -> None:
        for name in (
            "weight_topical_signal",
            "weight_mention_impact",
            "weight_retweet_impact",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        total = (
            self.weight_topical_signal
            + self.weight_mention_impact
            + self.weight_retweet_impact
        )
        if total <= 0:
            raise ValueError("at least one feature weight must be positive")
        if self.max_results < 1:
            raise ValueError("max_results must be >= 1")

    def with_threshold(self, min_zscore: float) -> "RankingConfig":
        """Copy with a different threshold (used by the Figure 9 sweep)."""
        return RankingConfig(
            weight_topical_signal=self.weight_topical_signal,
            weight_mention_impact=self.weight_mention_impact,
            weight_retweet_impact=self.weight_retweet_impact,
            min_zscore=min_zscore,
            max_results=self.max_results,
        )


class RankedExpert(NamedTuple):
    """One scored candidate, carrying the fields shown in Tables 2–7.

    A NamedTuple: tens of thousands are built per evaluation sweep (one
    per candidate per scored term) and tuple construction is the cheapest
    immutable record Python offers.
    """

    user_id: int
    screen_name: str
    description: str
    verified: bool
    followers: int
    score: float
    features: FeatureVector
    zscores: NormalizedFeatures

    def __str__(self) -> str:
        flag = "True " if self.verified else "False"
        return (
            f"{self.screen_name:<24} {self.description[:44]:<46} "
            f"{flag} {self.followers:>9,}  score={self.score:+.2f}"
        )


def score_candidates(
    platform: MicroblogPlatform,
    vectors: list[FeatureVector],
    normalized: list[NormalizedFeatures],
    config: RankingConfig,
) -> list[RankedExpert]:
    """All candidates scored and sorted (no threshold, no cap).

    Thresholding is separated out so sweeps (Figure 9/10) can reuse one
    scoring pass.
    """
    user_of = platform.user
    w_ts = config.weight_topical_signal
    w_mi = config.weight_mention_impact
    w_ri = config.weight_retweet_impact
    experts: list[RankedExpert] = []
    append = experts.append
    for vector, z in zip(vectors, normalized):
        score = (
            w_ts * z.z_topical_signal
            + w_mi * z.z_mention_impact
            + w_ri * z.z_retweet_impact
        )
        user = user_of(vector.user_id)
        append(
            RankedExpert(
                user.user_id,
                user.screen_name,
                user.description,
                user.verified,
                user.followers,
                score,
                vector,
                z,
            )
        )
    experts.sort(key=lambda e: (-e.score, e.user_id))
    return experts


def rank_candidates(
    platform: MicroblogPlatform,
    vectors: list[FeatureVector],
    normalized: list[NormalizedFeatures],
    config: RankingConfig | None = None,
) -> list[RankedExpert]:
    """Scored candidates above the threshold, capped at ``max_results``."""
    config = config or RankingConfig()
    scored = score_candidates(platform, vectors, normalized, config)
    kept = [e for e in scored if e.score >= config.min_zscore]
    return kept[: config.max_results]

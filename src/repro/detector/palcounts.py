"""The assembled Pal & Counts detector — e#'s baseline.

Chains candidate selection → features → normalisation → ranking.  The
unthresholded scored pool is exposed separately (:meth:`score`) so the
evaluation sweeps of Figures 9 and 10 can reuse one scoring pass per
query instead of re-running the pipeline per threshold.
"""

from __future__ import annotations

from repro.detector.candidates import collect_candidates
from repro.detector.clusterfilter import GaussianClusterFilter
from repro.detector.engine import IndexedDetectionEngine
from repro.detector.features import compute_features
from repro.detector.normalize import NormalizationConfig, normalize_features
from repro.detector.ranking import (
    RankedExpert,
    RankingConfig,
    rank_candidates,
    score_candidates,
)
from repro.detector.memo import DEFAULT_CACHE_CAPACITY, ScoreMemoMixin
from repro.detector.vectorized import score_engine_query_exact
from repro.microblog.platform import MicroblogPlatform

__all__ = ["DEFAULT_CACHE_CAPACITY", "PalCountsDetector"]


class PalCountsDetector(ScoreMemoMixin):
    """Query → ranked experts on one platform."""

    def __init__(
        self,
        platform: MicroblogPlatform,
        ranking: RankingConfig | None = None,
        normalization: NormalizationConfig | None = None,
        cluster_filter: GaussianClusterFilter | None = None,
        cache_scores: bool = True,
        cache_capacity: int | None = None,
        engine: IndexedDetectionEngine | None = None,
        use_engine: bool = True,
    ) -> None:
        self.platform = platform
        self.ranking = ranking or RankingConfig()
        self.normalization = normalization or NormalizationConfig()
        #: the optional Pal & Counts filtering step; the paper discards it
        #: ("computationally expensive, and ... contrary to our objective of
        #: improving recall"), so it is off unless explicitly supplied
        self.cluster_filter = cluster_filter
        #: the columnar index answering candidate aggregation from
        #: build-time state; ``use_engine=False`` keeps the seed scan path
        #: (the equivalence oracle for tests and benches)
        self.engine: IndexedDetectionEngine | None = (
            engine
            if engine is not None
            else (IndexedDetectionEngine(platform) if use_engine else None)
        )
        #: memoising per-term scored pools is safe because the platform is
        #: append-only after build and the evaluation sweeps re-visit the
        #: same expansion terms across hundreds of queries
        self._init_score_cache(cache_scores, cache_capacity)

    def _score_uncached(self, query: str) -> list[RankedExpert]:
        if self.engine is not None:
            # the indexed path starts at the packed feature columns —
            # candidate aggregation (and, for single tokens, the ratio
            # computation) already happened at build time.  With numpy
            # present the whole normalize → score → rank tail runs as
            # column operations, bit-identical to the scalar pipeline
            # (detector/vectorized.py); without numpy it returns None and
            # the scalar tail below runs unchanged
            scored = score_engine_query_exact(
                self.engine,
                self.platform,
                query,
                self.normalization,
                self.ranking,
            )
            if scored is not None:
                if self.cluster_filter is not None:
                    scored = self.cluster_filter.apply(scored)
                return scored
            vectors = self.engine.feature_vectors(query)
        else:
            stats = collect_candidates(self.platform, query)
            vectors = compute_features(self.platform, stats)
        if not vectors:
            return []
        normalized = normalize_features(vectors, self.normalization)
        scored = score_candidates(self.platform, vectors, normalized, self.ranking)
        if self.cluster_filter is not None:
            scored = self.cluster_filter.apply(scored)
        return scored

    def detect(self, query: str, min_zscore: float | None = None) -> list[RankedExpert]:
        """Ranked experts above the (possibly overridden) threshold."""
        config = self.ranking
        if min_zscore is not None:
            config = config.with_threshold(min_zscore)
        scored = self.score(query)
        kept = [e for e in scored if e.score >= config.min_zscore]
        return kept[: config.max_results]

    def candidate_count(self, query: str) -> int:
        """Number of candidates before ranking (recall diagnostics)."""
        return len(collect_candidates(self.platform, query, engine=self.engine))

"""Candidate selection (§3).

*"A candidate expert is either an author of a tweet, or a person mentioned
in a tweet. In both cases, the tweet must match the query."*

One pass over the matching tweets accumulates, per candidate, the on-topic
numerators of all three features; the denominators are platform totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.microblog.platform import MicroblogPlatform


@dataclass
class CandidateStats:
    """Per-candidate on-topic counts for one query."""

    user_id: int
    on_topic_tweets: int = 0
    on_topic_mentions: int = 0
    on_topic_retweets_received: int = 0


def collect_candidates(
    platform: MicroblogPlatform, query: str
) -> dict[int, CandidateStats]:
    """Candidates and their on-topic counts for ``query``.

    Returns an empty dict when no tweet matches — the query is unanswered,
    which is exactly what Table 8 counts.
    """
    stats: dict[int, CandidateStats] = {}

    def entry(user_id: int) -> CandidateStats:
        if user_id not in stats:
            stats[user_id] = CandidateStats(user_id=user_id)
        return stats[user_id]

    for tweet in platform.matching_tweets(query):
        entry(tweet.author_id).on_topic_tweets += 1
        for mentioned in tweet.mentions:
            entry(mentioned).on_topic_mentions += 1
        if tweet.retweet_of is not None:
            try:
                original = platform.tweet(tweet.retweet_of)
            except KeyError:
                continue
            entry(original.author_id).on_topic_retweets_received += 1
    return stats

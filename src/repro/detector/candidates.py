"""Candidate selection (§3).

*"A candidate expert is either an author of a tweet, or a person mentioned
in a tweet. In both cases, the tweet must match the query."*

One pass over the matching tweets accumulates, per candidate, the on-topic
numerators of all three features; the denominators are platform totals.
When an :class:`~repro.detector.engine.IndexedDetectionEngine` is
supplied the pass is answered from its build-time index instead —
identical statistics, no tweet objects touched.

Mentions may name accounts the platform never registered (ingestion is
tolerant of them, and their totals do not exist), so unknown mentionees
are skipped here exactly as ``add_tweet`` skips crediting them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.microblog.platform import MicroblogPlatform

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.detector.engine import IndexedDetectionEngine


@dataclass
class CandidateStats:
    """Per-candidate on-topic counts for one query."""

    user_id: int
    on_topic_tweets: int = 0
    on_topic_mentions: int = 0
    on_topic_retweets_received: int = 0


def collect_candidates(
    platform: MicroblogPlatform,
    query: str,
    engine: "IndexedDetectionEngine | None" = None,
) -> dict[int, CandidateStats]:
    """Candidates and their on-topic counts for ``query``.

    Returns an empty dict when no tweet matches — the query is unanswered,
    which is exactly what Table 8 counts.  ``engine`` switches the
    aggregation to the columnar index; results are identical.
    """
    if engine is not None:
        return engine.collect(query)
    stats: dict[int, CandidateStats] = {}

    def entry(user_id: int) -> CandidateStats:
        if user_id not in stats:
            stats[user_id] = CandidateStats(user_id=user_id)
        return stats[user_id]

    for tweet in platform.matching_tweets(query):
        entry(tweet.author_id).on_topic_tweets += 1
        for mentioned in tweet.mentions:
            if platform.has_user(mentioned):
                entry(mentioned).on_topic_mentions += 1
        if tweet.retweet_of is not None:
            try:
                original = platform.tweet(tweet.retweet_of)
            except KeyError:
                continue
            entry(original.author_id).on_topic_retweets_received += 1
    return stats

"""Normalisation: log transform then z-score (§3).

*"In practice, the features appear to be log-normally distributed.
Therefore, we take their logarithm to obtain Gaussian distributions"* —
then each feature is z-scored against the candidate pool of the query
(``z = (x − µ) / σ``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

from repro.detector.features import FeatureVector
from repro.utils.stats import log_transform, zscores


@dataclass(frozen=True)
class NormalizationConfig:
    """Knobs of the normalisation step."""

    #: floor for the log transform (features are often exactly 0)
    epsilon: float = 1e-6
    #: skip the log transform (ablation switch; the paper always applies it)
    apply_log: bool = True

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {self.epsilon}")


class NormalizedFeatures(NamedTuple):
    """Per-candidate z-scores, aligned with the input order.

    A NamedTuple for the same reason as :class:`FeatureVector`: one is
    built per candidate per scored term, so construction cost is the
    detector's inner loop.
    """

    user_id: int
    z_topical_signal: float
    z_mention_impact: float
    z_retweet_impact: float


def normalize_features(
    vectors: list[FeatureVector],
    config: NormalizationConfig | None = None,
) -> list[NormalizedFeatures]:
    """Log + z-score each feature column over the candidate pool."""
    config = config or NormalizationConfig()
    if not vectors:
        return []

    epsilon = config.epsilon
    if config.apply_log:
        z_ts = zscores(log_transform([v[1] for v in vectors], epsilon))
        z_mi = zscores(log_transform([v[2] for v in vectors], epsilon))
        z_ri = zscores(log_transform([v[3] for v in vectors], epsilon))
    else:
        z_ts = zscores([v.topical_signal for v in vectors])
        z_mi = zscores([v.mention_impact for v in vectors])
        z_ri = zscores([v.retweet_impact for v in vectors])
    return [
        NormalizedFeatures(vector[0], ts, mi, ri)
        for vector, ts, mi, ri in zip(vectors, z_ts, z_mi, z_ri)
    ]

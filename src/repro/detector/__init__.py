"""S7 — The Pal & Counts expert detector (§3), e#'s baseline and engine.

The production-simplified framework the paper describes:

* **Candidate selection** — a candidate is an author of, or a user
  mentioned in, a tweet matching the query (all terms present after
  lower-casing).
* **Expertise ranking** — three features:
  ``TS`` (topical signal: fraction of the user's tweets on topic),
  ``MI`` (mention impact: fraction of the user's mentions on topic),
  ``RI`` (retweet impact: fraction of retweets of the user's tweets on
  topic); log-transformed (the features are log-normal in practice),
  z-scored over the query's candidate pool, and combined by weighted sum.
* **Threshold** — candidates below a minimum z-score are rejected; the
  threshold trades recall against precision (Figure 9).

The optional cluster-analysis filtering step of Pal & Counts — which the
paper explicitly discards for recall — is implemented in
:mod:`repro.detector.clusterfilter` for the ABL3 ablation.
"""

from repro.detector.candidates import CandidateStats, collect_candidates
from repro.detector.engine import (
    EngineStats,
    IndexedDetectionEngine,
    TokenCandidates,
)
from repro.detector.features import FeatureVector, compute_features
from repro.detector.normalize import NormalizationConfig, normalize_features
from repro.detector.ranking import RankedExpert, RankingConfig, rank_candidates
from repro.detector.palcounts import PalCountsDetector
from repro.detector.clusterfilter import GaussianClusterFilter
from repro.detector.graphrank import GraphRankConfig, GraphRankDetector
from repro.detector.extended_features import (
    ExtendedPalCountsDetector,
    ExtendedWeights,
    compute_extended_features,
)

__all__ = [
    "CandidateStats",
    "EngineStats",
    "ExtendedPalCountsDetector",
    "ExtendedWeights",
    "FeatureVector",
    "GaussianClusterFilter",
    "GraphRankConfig",
    "GraphRankDetector",
    "IndexedDetectionEngine",
    "TokenCandidates",
    "NormalizationConfig",
    "PalCountsDetector",
    "RankedExpert",
    "RankingConfig",
    "collect_candidates",
    "compute_extended_features",
    "compute_features",
    "normalize_features",
    "rank_candidates",
]

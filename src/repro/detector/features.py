"""Feature computation: TS, MI, RI (§3).

::

    TS = #tweets by user on topic           / #tweets by user
    MI = #mentions of user on topic         / #mentions of user
    RI = #retweets of user's tweets on topic / #retweets of user's tweets

A zero denominator yields a zero feature (the candidate offers no evidence
on that channel); the log transform downstream floors zeros at an epsilon.

``FeatureVector`` is a NamedTuple rather than a dataclass: one is built
per candidate per scored term — the inner loop of the whole system — and
tuple construction is several times cheaper than a frozen dataclass
``__init__`` while keeping immutability and field equality.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.detector.candidates import CandidateStats
from repro.microblog.platform import MicroblogPlatform


class FeatureVector(NamedTuple):
    """Raw (pre-normalisation) features of one candidate."""

    user_id: int
    topical_signal: float
    mention_impact: float
    retweet_impact: float

    def as_tuple(self) -> tuple[float, float, float]:
        return (self.topical_signal, self.mention_impact, self.retweet_impact)


def compute_features(
    platform: MicroblogPlatform, stats: dict[int, CandidateStats]
) -> list[FeatureVector]:
    """Raw features for every candidate, in deterministic (user id) order."""
    totals_of = platform.totals
    vectors: list[FeatureVector] = []
    append = vectors.append
    for user_id in sorted(stats):
        candidate = stats[user_id]
        totals = totals_of(user_id)
        tweets = totals.tweets
        mentions = totals.mentions_received
        retweets = totals.retweets_received
        append(
            FeatureVector(
                user_id,
                candidate.on_topic_tweets / tweets if tweets > 0 else 0.0,
                candidate.on_topic_mentions / mentions
                if mentions > 0
                else 0.0,
                candidate.on_topic_retweets_received / retweets
                if retweets > 0
                else 0.0,
            )
        )
    return vectors

"""Feature computation: TS, MI, RI (§3).

::

    TS = #tweets by user on topic           / #tweets by user
    MI = #mentions of user on topic         / #mentions of user
    RI = #retweets of user's tweets on topic / #retweets of user's tweets

A zero denominator yields a zero feature (the candidate offers no evidence
on that channel); the log transform downstream floors zeros at an epsilon.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.detector.candidates import CandidateStats
from repro.microblog.platform import MicroblogPlatform


@dataclass(frozen=True)
class FeatureVector:
    """Raw (pre-normalisation) features of one candidate."""

    user_id: int
    topical_signal: float
    mention_impact: float
    retweet_impact: float

    def as_tuple(self) -> tuple[float, float, float]:
        return (self.topical_signal, self.mention_impact, self.retweet_impact)


def _ratio(numerator: int, denominator: int) -> float:
    return numerator / denominator if denominator > 0 else 0.0


def compute_features(
    platform: MicroblogPlatform, stats: dict[int, CandidateStats]
) -> list[FeatureVector]:
    """Raw features for every candidate, in deterministic (user id) order."""
    vectors: list[FeatureVector] = []
    for user_id in sorted(stats):
        candidate = stats[user_id]
        totals = platform.totals(user_id)
        vectors.append(
            FeatureVector(
                user_id=user_id,
                topical_signal=_ratio(candidate.on_topic_tweets, totals.tweets),
                mention_impact=_ratio(
                    candidate.on_topic_mentions, totals.mentions_received
                ),
                retweet_impact=_ratio(
                    candidate.on_topic_retweets_received,
                    totals.retweets_received,
                ),
            )
        )
    return vectors

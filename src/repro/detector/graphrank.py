"""A graph-based expert detector in the spirit of TwitterRank (§7.1).

The paper's related work describes Weng et al.'s approach: *"their system
is based on a graph describing the topical similarity between the users.
To detect authorities, they run a variant of PageRank on this graph for
each topic"* — and argues e# is detector-agnostic: *"our system can work
with any Expertise Retrieval system."*  This module makes that claim
executable: a drop-in alternative to :class:`PalCountsDetector` with the
same ``score``/``detect`` interface, so the §5 expansion layer composes
with it unchanged (bench ABL4 quantifies the 2×2 comparison).

Per query:

1. candidates = authors/mentioned users of matching tweets (§3's rule,
   unchanged — candidate selection is shared across detectors);
2. an *influence graph* over the candidates: a retweet or mention inside
   the matching set adds an edge from the acting user to the credited
   user (authority flows to the retweeted/mentioned account);
3. personalised PageRank with the teleport vector proportional to each
   candidate's on-topic tweet count (the topical prior);
4. scores are z-scored over the pool so the z-threshold semantics of §3
   and Figure 9 carry over.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.detector.candidates import CandidateStats, collect_candidates
from repro.detector.features import FeatureVector, compute_features
from repro.detector.normalize import NormalizedFeatures
from repro.detector.memo import ScoreMemoMixin
from repro.detector.ranking import RankedExpert, RankingConfig
from repro.microblog.platform import MicroblogPlatform
from repro.utils.stats import zscores


@dataclass(frozen=True)
class GraphRankConfig:
    """PageRank parameters."""

    damping: float = 0.85
    max_iterations: int = 50
    tolerance: float = 1e-9

    def __post_init__(self) -> None:
        if not 0.0 < self.damping < 1.0:
            raise ValueError(f"damping must be in (0,1), got {self.damping}")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")


class GraphRankDetector(ScoreMemoMixin):
    """Topic-sensitive PageRank over the per-query influence graph."""

    def __init__(
        self,
        platform: MicroblogPlatform,
        ranking: RankingConfig | None = None,
        config: GraphRankConfig | None = None,
        cache_scores: bool = True,
        cache_capacity: int | None = None,
    ) -> None:
        self.platform = platform
        self.ranking = ranking or RankingConfig()
        self.config = config or GraphRankConfig()
        self._init_score_cache(cache_scores, cache_capacity)

    # -- the PalCountsDetector-compatible interface ---------------------------

    def detect(self, query: str, min_zscore: float | None = None) -> list[RankedExpert]:
        threshold = (
            self.ranking.min_zscore if min_zscore is None else min_zscore
        )
        kept = [e for e in self.score(query) if e.score >= threshold]
        return kept[: self.ranking.max_results]

    def candidate_count(self, query: str) -> int:
        return len(collect_candidates(self.platform, query))

    # -- internals -----------------------------------------------------------

    def _score_uncached(self, query: str) -> list[RankedExpert]:
        stats = collect_candidates(self.platform, query)
        if not stats:
            return []
        candidates = sorted(stats)
        index = {user_id: i for i, user_id in enumerate(candidates)}

        out_edges = self._influence_edges(query, index)
        teleport = self._teleport_vector(stats, candidates)
        rank = self._pagerank(len(candidates), out_edges, teleport)

        z_rank = zscores(rank)
        vectors = compute_features(self.platform, stats)
        experts: list[RankedExpert] = []
        for position, user_id in enumerate(candidates):
            user = self.platform.user(user_id)
            vector = vectors[position]
            experts.append(
                RankedExpert(
                    user_id=user_id,
                    screen_name=user.screen_name,
                    description=user.description,
                    verified=user.verified,
                    followers=user.followers,
                    score=z_rank[position],
                    features=vector,
                    zscores=NormalizedFeatures(
                        user_id, z_rank[position], 0.0, 0.0
                    ),
                )
            )
        experts.sort(key=lambda e: (-e.score, e.user_id))
        return experts

    def _influence_edges(
        self, query: str, index: dict[int, int]
    ) -> dict[int, dict[int, float]]:
        """source position → {target position: weight} (authority flow)."""
        edges: dict[int, dict[int, float]] = {}

        def add(source_user: int, target_user: int, weight: float) -> None:
            source = index.get(source_user)
            target = index.get(target_user)
            if source is None or target is None or source == target:
                return
            edges.setdefault(source, {})
            edges[source][target] = edges[source].get(target, 0.0) + weight

        for tweet in self.platform.matching_tweets(query):
            for mentioned in tweet.mentions:
                add(tweet.author_id, mentioned, 1.0)
            if tweet.retweet_of is not None:
                try:
                    original = self.platform.tweet(tweet.retweet_of)
                except KeyError:
                    continue
                add(tweet.author_id, original.author_id, 2.0)
        return edges

    def _teleport_vector(
        self, stats: dict[int, CandidateStats], candidates: list[int]
    ) -> list[float]:
        mass = [
            float(stats[user_id].on_topic_tweets) + 0.1
            for user_id in candidates
        ]
        total = sum(mass)
        return [m / total for m in mass]

    def _pagerank(
        self,
        size: int,
        out_edges: dict[int, dict[int, float]],
        teleport: list[float],
    ) -> list[float]:
        damping = self.config.damping
        rank = list(teleport)
        out_totals = {
            source: sum(targets.values())
            for source, targets in out_edges.items()
        }
        for _ in range(self.config.max_iterations):
            incoming = [0.0] * size
            dangling = 0.0
            for position in range(size):
                targets = out_edges.get(position)
                if not targets:
                    dangling += rank[position]
                    continue
                total = out_totals[position]
                for target, weight in targets.items():
                    incoming[target] += rank[position] * weight / total
            moved = 0.0
            for position in range(size):
                updated = (1.0 - damping) * teleport[position] + damping * (
                    incoming[position] + dangling * teleport[position]
                )
                moved += abs(updated - rank[position])
                rank[position] = updated
            if moved < self.config.tolerance:
                break
        return rank

"""The injector: fault plans meeting the production code's chaos sites.

Production code calls :func:`fire` at named sites (and routes wire
frames through :func:`filter_frame`); both are near-free no-ops unless a
plan is installed.  Install one with :func:`install` /
:func:`installed`, or export ``REPRO_CHAOS_PLAN`` (JSON) so a subprocess
worker installs it at startup via :func:`install_from_env`.

Decision and execution are split: :meth:`FaultInjector.decide` runs
under the injector lock (counters, RNG draws) and returns the spec to
perform; :meth:`FaultInjector.perform` sleeps / raises / exits *outside*
the lock, so a latency fault never serialises other sites behind it.
"""

from __future__ import annotations

import os
import random
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.chaos.errors import ChaosCrashError, FaultPlanError
from repro.chaos.plan import FRAME_KINDS, FaultPlan, FaultSpec

#: environment variable a subprocess worker reads its plan from
ENV_PLAN = "REPRO_CHAOS_PLAN"

#: marker spliced into the middle of a corrupted wire frame
CORRUPTION = "\x00!CHAOS!\x00"


def _error_registry() -> Dict[str, type]:
    """Typed errors an ``error`` fault can raise on production's behalf.

    Lazy so importing :mod:`repro.chaos` never drags in the artifact or
    fleet packages.
    """
    from repro.artifact.errors import ArtifactCorruptError
    from repro.fleet.errors import WorkerProtocolError
    from repro.serving.errors import ServiceOverloadedError

    return {
        "artifact-corrupt": ArtifactCorruptError,
        "worker-protocol": WorkerProtocolError,
        "service-overloaded": ServiceOverloadedError,
        "os-error": OSError,
    }


class FaultInjector:
    """One installed plan's runtime state: call counters and RNGs."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._calls: Dict[str, int] = {}  # guarded-by: _lock
        self._matched: Dict[int, int] = {}  # guarded-by: _lock
        self._fired: Dict[int, int] = {}  # guarded-by: _lock
        self._events: List[Tuple[str, str]] = []  # guarded-by: _lock
        # one RNG per spec, seeded from the plan seed and the spec's
        # position — a plan replays the same decisions every run
        self._rngs = [
            random.Random(plan.seed ^ (0x9E3779B9 * (index + 1)))
            for index in range(len(plan.faults))
        ]

    def decide(self, site: str, context: dict) -> Optional[FaultSpec]:
        """Pick the spec (if any) that fires for this call.

        Pure bookkeeping under the lock; the caller performs the fault
        afterwards so blocking faults never run locked.
        """
        with self._lock:
            self._calls[site] = self._calls.get(site, 0) + 1
            for index, spec in enumerate(self.plan.faults):
                if spec.site != site or not spec.matches(context):
                    continue
                seen = self._matched.get(index, 0)
                self._matched[index] = seen + 1
                if seen < spec.after_calls:
                    continue
                fired = self._fired.get(index, 0)
                if spec.times and fired >= spec.times:
                    continue
                if (
                    spec.probability < 1.0
                    and self._rngs[index].random() >= spec.probability
                ):
                    continue
                self._fired[index] = fired + 1
                self._events.append((site, spec.kind))
                return spec
        return None

    def perform(self, spec: FaultSpec, site: str) -> Optional[FaultSpec]:
        """Execute a decided fault (outside the injector lock).

        Frame-mangling kinds return the spec for the wire layer to
        apply; everything else sleeps, raises, or exits right here.
        """
        if spec.kind in FRAME_KINDS:
            return spec
        if spec.kind == "latency":
            time.sleep(spec.seconds)
            return None
        if spec.kind == "crash":
            raise ChaosCrashError(f"injected crash at {site}")
        if spec.kind == "exit":
            os._exit(spec.exit_code)
        if spec.kind == "error":
            factory = _error_registry().get(spec.error)
            if factory is None:
                raise FaultPlanError(
                    f"error fault names unknown key {spec.error!r}"
                )
            raise factory(f"injected {spec.error} at {site}")
        raise FaultPlanError(
            f"unperformable fault kind {spec.kind!r}"
        )  # pragma: no cover - plan validation rejects these

    def events(self) -> List[Tuple[str, str]]:
        """Every ``(site, kind)`` injection performed so far, in order."""
        with self._lock:
            return list(self._events)

    def call_count(self, site: str) -> int:
        with self._lock:
            return self._calls.get(site, 0)


# the single process-wide injector; swapped atomically by install/uninstall
_injector: Optional[FaultInjector] = None


def install(plan: FaultPlan) -> FaultInjector:
    """Install ``plan`` process-wide; replaces any previous plan."""
    global _injector
    injector = FaultInjector(plan)
    _injector = injector
    return injector


def uninstall() -> None:
    global _injector
    _injector = None


def active() -> Optional[FaultInjector]:
    return _injector


def install_from_env(environ=None) -> Optional[FaultInjector]:
    """Install the plan in ``REPRO_CHAOS_PLAN``, if any (workers call this)."""
    raw = (environ if environ is not None else os.environ).get(ENV_PLAN)
    if not raw:
        return None
    return install(FaultPlan.from_json(raw))


class installed:
    """``with installed(plan):`` — scoped install for tests."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.injector: Optional[FaultInjector] = None

    def __enter__(self) -> FaultInjector:
        self.injector = install(self.plan)
        return self.injector

    def __exit__(self, exc_type, exc, tb) -> None:
        uninstall()


def fire(site: str, **context) -> None:
    """The chaos site hook: no-op unless an installed spec fires here.

    Raises / sleeps / exits according to the plan.  Frame faults decided
    here are ignored — only :func:`filter_frame` sites can mangle frames.
    """
    injector = _injector
    if injector is None:
        return
    spec = injector.decide(site, context)
    if spec is not None:
        injector.perform(spec, site)


def filter_frame(site: str, line: str, **context) -> Optional[str]:
    """Route one outgoing wire frame through the plan.

    Returns the (possibly mangled) frame, or ``None`` when a
    ``drop_frame`` fault swallows it.  Non-frame faults decided at a
    frame site (latency, crash, ...) are performed as usual first.
    """
    injector = _injector
    if injector is None:
        return line
    spec = injector.decide(site, context)
    if spec is None:
        return line
    spec = injector.perform(spec, site)
    if spec is None:
        return line
    if spec.kind == "drop_frame":
        return None
    if spec.kind == "truncate_frame":
        return line[: max(1, len(line) // 2)]
    # corrupt_frame: splice garbage into the middle of the payload
    middle = max(1, len(line) // 2)
    return line[:middle] + CORRUPTION + line[middle:]

"""Typed failure modes of the chaos tier.

:class:`ChaosCrashError` is the *injected* fault — production code never
raises it on its own, so a test that sees one knows the injection fired
(and resilience machinery that survives one survived a genuine crash
path, not a benign no-op).
"""

from __future__ import annotations


class ChaosError(RuntimeError):
    """Base class for every chaos-framework failure."""


class FaultPlanError(ChaosError):
    """A fault plan is malformed (unknown kind, bad field, bad JSON)."""


class ChaosCrashError(ChaosError):
    """An injected crash: the fault a ``crash`` spec raises at its site."""

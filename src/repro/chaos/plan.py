"""Fault plans: the declarative, seeded schedule of what breaks when.

A :class:`FaultPlan` is a list of :class:`FaultSpec` entries plus a
seed.  Each spec names an injection *site* (a string the production code
passes to :func:`repro.chaos.inject.fire` — ``"wire.worker.write"``,
``"artifact.read"``, ...), a fault *kind*, and a trigger schedule:

* ``after_calls`` — skip this many matching calls first;
* ``times`` — fire at most this many times (``0`` = unlimited);
* ``probability`` — fire with this probability per eligible call, from
  a per-spec RNG seeded by ``plan.seed`` (so a probabilistic plan is
  reproducible run-to-run up to thread interleaving, and a
  ``probability=1.0`` plan is fully deterministic);
* ``match`` — ``(key, value)`` context filters, e.g. only frames whose
  ``op`` is ``"query"``, only the worker named ``"replica-2"``, or only
  calls for one ``tenant`` (replica calls, worker dispatch, and request
  frames all carry the tenant in their context, so a fault plan can
  break exactly one corpus's traffic).  A call whose context does
  *not* match never consumes the spec's ``after_calls``/``times``
  budget — the schedule counts matching calls only.

Plans round-trip through JSON so a parent process can hand one to a
subprocess worker in the ``REPRO_CHAOS_PLAN`` environment variable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Tuple

from repro.chaos.errors import FaultPlanError

#: every fault kind a spec may request
FAULT_KINDS = frozenset(
    {
        "crash",  # raise ChaosCrashError at the site
        "exit",  # os._exit(exit_code) — a hard worker kill
        "latency",  # sleep `seconds` before the site proceeds
        "drop_frame",  # swallow one wire frame entirely
        "truncate_frame",  # send only the first half of a frame
        "corrupt_frame",  # flip bytes in the middle of a frame
        "error",  # raise a registry-named typed error
    }
)

#: kinds that mangle a wire frame instead of raising/sleeping
FRAME_KINDS = frozenset({"drop_frame", "truncate_frame", "corrupt_frame"})


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled injection at one site."""

    site: str
    kind: str
    #: matching calls to let through before the spec becomes eligible
    after_calls: int = 0
    #: firings allowed (0 = unlimited)
    times: int = 1
    #: chance each eligible call fires, from the spec's seeded RNG
    probability: float = 1.0
    #: sleep length for ``latency`` faults
    seconds: float = 0.0
    #: registry key for ``error`` faults (see inject._error_registry)
    error: str = ""
    #: exit status for ``exit`` faults
    exit_code: int = 70
    #: context filters: every (key, value) must equal str(context[key])
    match: Tuple[Tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if not self.site:
            raise FaultPlanError("fault spec needs a non-empty site")
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {sorted(FAULT_KINDS)}"
            )
        if self.after_calls < 0:
            raise FaultPlanError("after_calls must be >= 0")
        if self.times < 0:
            raise FaultPlanError("times must be >= 0 (0 = unlimited)")
        if not 0.0 <= self.probability <= 1.0:
            raise FaultPlanError("probability must be in [0, 1]")
        if self.seconds < 0:
            raise FaultPlanError("seconds must be >= 0")
        if self.kind == "latency" and self.seconds == 0:
            raise FaultPlanError("latency faults need seconds > 0")
        if self.kind == "error" and not self.error:
            raise FaultPlanError("error faults need an error registry key")

    def matches(self, context: dict) -> bool:
        """Do this call's context values satisfy every ``match`` filter?"""
        for key, value in self.match:
            if key not in context or str(context[key]) != value:
                return False
        return True

    def to_jsonable(self) -> dict:
        return {
            "site": self.site,
            "kind": self.kind,
            "after_calls": self.after_calls,
            "times": self.times,
            "probability": self.probability,
            "seconds": self.seconds,
            "error": self.error,
            "exit_code": self.exit_code,
            "match": [[key, value] for key, value in self.match],
        }

    @classmethod
    def from_jsonable(cls, raw: object) -> "FaultSpec":
        if not isinstance(raw, dict):
            raise FaultPlanError(
                f"fault spec must be an object, got {type(raw).__name__}"
            )
        try:
            return cls(
                site=str(raw["site"]),
                kind=str(raw["kind"]),
                after_calls=int(raw.get("after_calls", 0)),
                times=int(raw.get("times", 1)),
                probability=float(raw.get("probability", 1.0)),
                seconds=float(raw.get("seconds", 0.0)),
                error=str(raw.get("error", "")),
                exit_code=int(raw.get("exit_code", 70)),
                match=tuple(
                    (str(key), str(value))
                    for key, value in raw.get("match", [])
                ),
            )
        except FaultPlanError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise FaultPlanError(f"malformed fault spec {raw!r}") from exc


@dataclass(frozen=True)
class FaultPlan:
    """A seeded schedule of fault injections."""

    seed: int = 2016
    faults: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "faults": [spec.to_jsonable() for spec in self.faults],
            },
            separators=(",", ":"),
        )

    @classmethod
    def from_jsonable(cls, raw: object) -> "FaultPlan":
        if not isinstance(raw, dict):
            raise FaultPlanError(
                f"fault plan must be an object, got {type(raw).__name__}"
            )
        try:
            seed = int(raw.get("seed", 2016))
        except (TypeError, ValueError) as exc:
            raise FaultPlanError(f"bad plan seed {raw.get('seed')!r}") from exc
        faults = raw.get("faults", [])
        if not isinstance(faults, list):
            raise FaultPlanError("plan 'faults' must be a list")
        return cls(
            seed=seed,
            faults=tuple(FaultSpec.from_jsonable(spec) for spec in faults),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            raw = json.loads(text)
        except ValueError as exc:
            raise FaultPlanError(
                f"fault plan is not valid JSON: {text[:120]!r}"
            ) from exc
        return cls.from_jsonable(raw)

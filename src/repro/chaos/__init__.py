"""repro.chaos — deterministic, seeded fault injection.

The resilience counterpart of :mod:`repro.analysis`: where the linter
proves invariants statically, chaos proves them under fire.  A
:class:`FaultPlan` schedules worker crashes, latency spikes, mangled
wire frames, and artifact read errors at named *sites* the production
code exposes through :func:`~repro.chaos.inject.fire` /
:func:`~repro.chaos.inject.filter_frame` — near-free no-ops unless a
plan is installed (in-process or via the ``REPRO_CHAOS_PLAN``
environment variable for subprocess workers).

See ``README.md`` ("Resilience & chaos testing") for the plan format
and the self-healing machinery it validates.
"""

from repro.chaos.errors import ChaosCrashError, ChaosError, FaultPlanError
from repro.chaos.inject import (
    ENV_PLAN,
    FaultInjector,
    active,
    filter_frame,
    fire,
    install,
    install_from_env,
    installed,
    uninstall,
)
from repro.chaos.plan import FAULT_KINDS, FRAME_KINDS, FaultPlan, FaultSpec

__all__ = [
    "ChaosCrashError",
    "ChaosError",
    "ENV_PLAN",
    "FAULT_KINDS",
    "FRAME_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "active",
    "filter_frame",
    "fire",
    "install",
    "install_from_env",
    "installed",
    "uninstall",
]

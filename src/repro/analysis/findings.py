"""The finding record and its stable JSON schema.

``python -m repro analyze --json PATH`` writes::

    {
      "schema_version": 1,
      "root": "<analyzed root, absolute>",
      "counts": {"new": N, "baselined": N, "suppressed": N},
      "rules": [{"id", "category", "severity", "description"}, ...],
      "findings":  [<finding>, ...],   # unbaselined -> exit code 1
      "baselined": [<finding>, ...]    # matched the checked-in baseline
    }

where each ``<finding>`` is::

    {
      "rule": "LOCK002",          # stable rule id
      "severity": "error"|"warning",
      "path": "serving/service.py",   # POSIX, relative to root
      "line": 123, "column": 8,       # 1-based line, 0-based column
      "symbol": "ExpertService.query",
      "message": "human-readable description",
      "fingerprint": "f3a9..."        # see below
    }

The **fingerprint** is ``sha1(rule|path|symbol|subject)[:16]`` where
``subject`` is the rule-specific stable token (the attribute for
``GUARD001``, the exception name for ``RAISE001``, the callee for
``LOCK002``, ...).  Line numbers are deliberately excluded so baselines
survive unrelated edits to the same file; CI annotations and future
tooling key on the fingerprint, never on positions.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

SCHEMA_VERSION = 1

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"


def fingerprint_of(rule: str, path: str, symbol: str, subject: str) -> str:
    """The line-number-free identity a baseline entry matches on."""
    raw = "|".join((rule, path, symbol, subject))
    return hashlib.sha1(raw.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one site (see the module docstring schema)."""

    rule: str
    severity: str
    path: str
    line: int
    column: int
    symbol: str
    message: str
    #: rule-specific stable token folded into the fingerprint
    subject: str = field(default="", repr=False)

    @property
    def fingerprint(self) -> str:
        return fingerprint_of(self.rule, self.path, self.symbol, self.subject)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "symbol": self.symbol,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}: {self.rule} [{self.severity}] "
            f"({self.symbol}) {self.message}"
        )

"""Typed failure modes of the analysis tier.

Mirrors the serving/fleet/artifact convention (and is itself checked by
rule ``RAISE001``): everything this package raises derives from
:class:`AnalysisError`, so callers — the CLI gate, the pytest fixtures —
can catch one type and still tell a malformed baseline apart from a
runtime lock-order violation.
"""

from __future__ import annotations


class AnalysisError(RuntimeError):
    """Base class for every analysis-tier failure."""


class AnalysisUsageError(AnalysisError):
    """The analyzer was invoked on paths/options it cannot work with."""


class BaselineFormatError(AnalysisError):
    """The baseline/suppression file is malformed or wrong-versioned."""


class LockOrderError(AnalysisError):
    """The runtime sanitizer observed a lock-order violation.

    Raised immediately when a thread blocking-acquires a non-reentrant
    lock it already holds (a guaranteed self-deadlock the wrapper can
    refuse instead of hanging the suite), and by
    :meth:`~repro.analysis.lockwatch.LockWatch.check` when the recorded
    acquisition graph contains an ordering cycle.
    """


class LockHoldError(AnalysisError):
    """A watched lock was held longer than the configured budget."""


class LockProtocolError(AnalysisError):
    """A watched lock was misused (e.g. released by a non-owner).

    Subclasses :class:`RuntimeError` via :class:`AnalysisError`, so code
    written against the stdlib's ``RuntimeError`` on bad release keeps
    working under the sanitizer.
    """

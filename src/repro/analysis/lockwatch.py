"""Runtime lock-order sanitizer: instrumented Lock/RLock wrappers.

The static rules see the acquisition graph the *source* admits; this
module records the graph the *tests actually execute*.  Opt in with
``REPRO_LOCKWATCH=1`` (the pytest hooks in ``tests/conftest.py`` install
it for the whole session) or programmatically::

    watch = LockWatch()
    lock_a = watch.make_lock("a")
    lock_b = watch.make_lock("b")
    ...
    watch.check()   # raises LockOrderError on an ordering cycle

What it catches:

* **Ordering cycles** — every acquisition records ``held-site ->
  new-site`` edges keyed by the locks' creation sites; a cycle means two
  threads can deadlock under the observed interleavings even if no run
  deadlocked yet.
* **Self-deadlock** — a *blocking* acquire of a non-reentrant lock the
  thread already holds raises :class:`LockOrderError` immediately
  instead of hanging the suite.  Non-blocking probes keep returning
  ``False`` (``Condition`` uses one to test ownership).
* **Over-long holds** — holding a watched lock longer than
  ``REPRO_LOCKWATCH_MAX_HOLD_MS`` (default 1000) records a violation,
  drained per-test by the fixture.  Build/rebuild locks are held for
  seconds by design, so creation sites matching
  ``REPRO_LOCKWATCH_EXEMPT`` (default: the build-path modules) skip the
  hold budget but still feed the ordering graph.

``install()`` monkeypatches ``threading.Lock``/``threading.RLock`` so
project code is instrumented without edits; locks created outside the
``repro`` package get the real primitives (pytest, logging, and stdlib
internals stay untouched).  ``threading.Condition()`` built after
install picks up the patched ``RLock``, and the wrappers implement the
``_release_save``/``_acquire_restore``/``_is_owned`` protocol with full
bookkeeping so ``Condition.wait`` cannot bypass the watch.
"""

from __future__ import annotations

import _thread
import os
import sys
import threading
import time
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.errors import LockOrderError, LockProtocolError

ENV_ENABLE = "REPRO_LOCKWATCH"
ENV_MAX_HOLD_MS = "REPRO_LOCKWATCH_MAX_HOLD_MS"
ENV_EXEMPT = "REPRO_LOCKWATCH_EXEMPT"

DEFAULT_MAX_HOLD_MS = 1000.0
#: creation-site filenames whose locks are exempt from the hold budget
#: (build/refresh paths hold their serialisation locks for seconds)
DEFAULT_EXEMPT = ("esharp.py", "service.py", "engine.py", "platform.py", "offline.py")


class HoldViolation:
    """One over-budget hold, recorded at release time."""

    __slots__ = ("label", "held_ms", "budget_ms", "thread_name")

    def __init__(self, label, held_ms, budget_ms, thread_name):
        self.label = label
        self.held_ms = held_ms
        self.budget_ms = budget_ms
        self.thread_name = thread_name

    def __repr__(self):
        return (
            f"HoldViolation({self.label}: {self.held_ms:.1f}ms > "
            f"{self.budget_ms:.0f}ms in {self.thread_name})"
        )


class LockWatch:
    """Shared state for a set of watched locks."""

    def __init__(
        self,
        max_hold_ms: float = DEFAULT_MAX_HOLD_MS,
        exempt: Tuple[str, ...] = DEFAULT_EXEMPT,
    ) -> None:
        # raw lock, never itself watched: guards every mutable field
        self._mutex = _thread.allocate_lock()
        self.max_hold_ms = float(max_hold_ms)
        self.exempt = tuple(exempt)
        #: edge -> example (thread name, held label, new label)
        self.edges: Dict[Tuple[str, str], str] = {}
        self.hold_violations: List[HoldViolation] = []
        self._held: Dict[int, List["_WatchedBase"]] = {}
        self._reported: Set[frozenset] = set()
        self.acquisitions = 0

    # -- factories -------------------------------------------------------------

    def make_lock(self, label: Optional[str] = None) -> "WatchedLock":
        return WatchedLock(self, label or _caller_site())

    def make_rlock(self, label: Optional[str] = None) -> "WatchedRLock":
        return WatchedRLock(self, label or _caller_site())

    # -- bookkeeping (called by the wrappers) ----------------------------------

    def _thread_held(self) -> List["_WatchedBase"]:
        ident = _thread.get_ident()
        held = self._held.get(ident)
        if held is None:
            held = self._held[ident] = []
        return held

    def note_acquired(self, lock: "_WatchedBase") -> None:
        held = self._thread_held()
        with self._mutex:
            self.acquisitions += 1
            for prior in held:
                if prior.label != lock.label:
                    self.edges.setdefault(
                        (prior.label, lock.label),
                        threading.current_thread().name,
                    )
        held.append(lock)

    def note_released(self, lock: "_WatchedBase", held_ms: float) -> None:
        held = self._thread_held()
        for at in range(len(held) - 1, -1, -1):
            if held[at] is lock:
                del held[at]
                break
        if held_ms > self.max_hold_ms and not self._is_exempt(lock.label):
            violation = HoldViolation(
                label=lock.label,
                held_ms=held_ms,
                budget_ms=self.max_hold_ms,
                thread_name=threading.current_thread().name,
            )
            with self._mutex:
                self.hold_violations.append(violation)

    def owns_nonreentrant(self, lock: "_WatchedBase") -> bool:
        return any(entry is lock for entry in self._thread_held())

    def _is_exempt(self, label: str) -> bool:
        filename = label.rsplit(":", 1)[0]
        base = os.path.basename(filename)
        return any(pattern in base or pattern in label for pattern in self.exempt)

    # -- reporting -------------------------------------------------------------

    def snapshot_edges(self) -> Dict[Tuple[str, str], str]:
        with self._mutex:
            return dict(self.edges)

    def cycles(self) -> List[List[str]]:
        """Every ordering cycle in the recorded graph, reported or not."""
        graph: Dict[str, Set[str]] = {}
        for (src, dst) in self.snapshot_edges():
            graph.setdefault(src, set()).add(dst)
            graph.setdefault(dst, set())
        out = []
        for component in _sccs(graph):
            if len(component) > 1:
                out.append(sorted(component))
        return out

    def new_cycles(self) -> List[List[str]]:
        """Cycles not returned by a previous call (per-test draining)."""
        fresh = []
        for cycle in self.cycles():
            key = frozenset(cycle)
            if key not in self._reported:
                self._reported.add(key)
                fresh.append(cycle)
        return fresh

    def drain_hold_violations(self) -> List[HoldViolation]:
        with self._mutex:
            drained, self.hold_violations = self.hold_violations, []
        return drained

    def check(self) -> None:
        """Raise :class:`LockOrderError` if the graph has any new cycle."""
        fresh = self.new_cycles()
        if fresh:
            rendered = "; ".join(" <-> ".join(cycle) for cycle in fresh)
            raise LockOrderError(
                f"runtime lock-order cycle observed: {rendered}"
            )


class _WatchedBase:
    """Common acquire/release bookkeeping over a real primitive."""

    def __init__(self, watch: LockWatch, label: str) -> None:
        self._watch = watch
        self.label = label
        self._acquired_at = 0.0

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc):
        self.release()
        return False

    def __repr__(self):
        return f"<{type(self).__name__} {self.label}>"


class WatchedLock(_WatchedBase):
    """Instrumented non-reentrant lock."""

    def __init__(self, watch: LockWatch, label: str) -> None:
        super().__init__(watch, label)
        self._inner = _thread.allocate_lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        if blocking and self._watch.owns_nonreentrant(self):
            raise LockOrderError(
                f"self-deadlock: blocking re-acquire of non-reentrant "
                f"lock {self.label} by {threading.current_thread().name}"
            )
        if blocking and timeout != -1:
            got = self._inner.acquire(True, timeout)
        elif blocking:
            got = self._inner.acquire()
        else:
            got = self._inner.acquire(False)
        if got:
            self._acquired_at = time.monotonic()
            self._watch.note_acquired(self)
        return got

    def release(self) -> None:
        held_ms = (time.monotonic() - self._acquired_at) * 1000.0
        self._inner.release()
        self._watch.note_released(self, held_ms)

    def locked(self) -> bool:
        return self._inner.locked()


class WatchedRLock(_WatchedBase):
    """Instrumented reentrant lock, Condition-compatible.

    The ``_release_save``/``_acquire_restore``/``_is_owned`` protocol is
    implemented *with bookkeeping* — there is deliberately no
    ``__getattr__`` delegation to the inner lock, which would let
    ``Condition.wait`` release the mutex behind the watch's back.
    """

    def __init__(self, watch: LockWatch, label: str) -> None:
        super().__init__(watch, label)
        self._inner = _thread.allocate_lock()
        self._owner: Optional[int] = None
        self._depth = 0

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        ident = _thread.get_ident()
        if self._owner == ident:
            self._depth += 1
            return True
        if blocking and timeout != -1:
            got = self._inner.acquire(True, timeout)
        elif blocking:
            got = self._inner.acquire()
        else:
            got = self._inner.acquire(False)
        if got:
            self._owner = ident
            self._depth = 1
            self._acquired_at = time.monotonic()
            self._watch.note_acquired(self)
        return got

    def release(self) -> None:
        if self._owner != _thread.get_ident():
            raise LockProtocolError("cannot release un-acquired lock")
        self._depth -= 1
        if self._depth:
            return
        held_ms = (time.monotonic() - self._acquired_at) * 1000.0
        self._owner = None
        self._inner.release()
        self._watch.note_released(self, held_ms)

    # Condition protocol ------------------------------------------------------

    def _release_save(self):
        if self._owner != _thread.get_ident():
            raise LockProtocolError("cannot release un-acquired lock")
        depth = self._depth
        held_ms = (time.monotonic() - self._acquired_at) * 1000.0
        self._depth = 0
        self._owner = None
        self._inner.release()
        self._watch.note_released(self, held_ms)
        return depth

    def _acquire_restore(self, depth) -> None:
        self._inner.acquire()
        self._owner = _thread.get_ident()
        self._depth = depth
        self._acquired_at = time.monotonic()
        self._watch.note_acquired(self)

    def _is_owned(self) -> bool:
        return self._owner == _thread.get_ident()


# -- process-wide installation --------------------------------------------------

_ACTIVE: Optional[LockWatch] = None
_ORIGINALS: Optional[Tuple] = None
_DEPTH = 0


def active_watch() -> Optional[LockWatch]:
    return _ACTIVE


def _caller_site(skip_self: bool = True) -> str:
    """``file.py:line`` of the nearest frame outside threading/lockwatch."""
    frame = sys._getframe(1)
    own = __file__
    while frame is not None:
        filename = frame.f_code.co_filename
        if filename != own and "threading" not in os.path.basename(filename):
            return f"{os.path.basename(filename)}:{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>"


def _caller_is_project() -> bool:
    frame = sys._getframe(1)
    own = __file__
    while frame is not None:
        filename = frame.f_code.co_filename
        if filename != own and "threading" not in os.path.basename(filename):
            return "repro" in filename.replace(os.sep, "/").split("/")
        frame = frame.f_back
    return False


def install(watch: Optional[LockWatch] = None) -> LockWatch:
    """Monkeypatch ``threading.Lock``/``RLock`` to produce watched locks.

    Only locks created from inside the ``repro`` package are watched —
    everything else (pytest, logging, stdlib machinery) gets the real
    primitive, so the ordering graph stays about project code.

    Reentrant: calling ``install`` while a watch is active returns the
    active watch and increments a depth counter, so a test-local
    install/uninstall pair cannot tear down a session-level watch
    (``REPRO_LOCKWATCH=1``) out from under the rest of the suite.
    """
    global _ACTIVE, _ORIGINALS, _DEPTH
    if _ACTIVE is not None:
        _DEPTH += 1
        return _ACTIVE
    watch = watch or LockWatch()
    real_lock, real_rlock = threading.Lock, threading.RLock

    def lock_factory():
        if _caller_is_project():
            return WatchedLock(watch, _caller_site())
        return real_lock()

    def rlock_factory():
        if _caller_is_project():
            return WatchedRLock(watch, _caller_site())
        return real_rlock()

    _ORIGINALS = (real_lock, real_rlock)
    threading.Lock = lock_factory
    threading.RLock = rlock_factory
    _ACTIVE = watch
    _DEPTH = 1
    return watch


def uninstall() -> None:
    """Undo one :func:`install`; only the outermost call unpatches."""
    global _ACTIVE, _ORIGINALS, _DEPTH
    if _DEPTH > 1:
        _DEPTH -= 1
        return
    if _ORIGINALS is not None:
        threading.Lock, threading.RLock = _ORIGINALS
    _ACTIVE = None
    _ORIGINALS = None
    _DEPTH = 0


def install_from_env() -> Optional[LockWatch]:
    """Install iff ``REPRO_LOCKWATCH=1``; honours the tuning env vars."""
    if os.environ.get(ENV_ENABLE, "") not in ("1", "true", "yes"):
        return None
    max_hold = float(os.environ.get(ENV_MAX_HOLD_MS, DEFAULT_MAX_HOLD_MS))
    exempt = DEFAULT_EXEMPT
    raw = os.environ.get(ENV_EXEMPT)
    if raw:
        exempt = tuple(p.strip() for p in raw.split(",") if p.strip())
    return install(LockWatch(max_hold_ms=max_hold, exempt=exempt))


def _sccs(graph: Dict[str, Set[str]]) -> List[Set[str]]:
    """Iterative Tarjan over an adjacency-set graph."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    out: List[Set[str]] = []
    counter = [0]
    for root in graph:
        if root in index:
            continue
        work = [(root, iter(sorted(graph[root])))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, neighbours = work[-1]
            advanced = False
            for nxt in neighbours:
                if nxt not in index:
                    index[nxt] = lowlink[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(sorted(graph[nxt]))))
                    advanced = True
                    break
                if nxt in on_stack:
                    lowlink[node] = min(lowlink[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                out.append(component)
    return out

"""Shared AST model the rules analyze: locks, guards, and held-lock flow.

One parse per file, one flow walk per function; every rule consumes the
same extracted facts:

* **Lock declarations** — ``self._x = threading.Lock()/RLock()`` (and
  ``Condition(...)``) inside methods, plus bare ``name = threading.Lock()``
  at module/function scope (fixture support).  A ``Condition`` built over
  a declared lock *aliases* it: ``threading.Condition(self._lock)`` and
  ``self._lock`` are the same mutex, and the model canonicalises every
  acquisition to the alias root so two condition views of one lock can
  never produce a phantom ordering edge — and nesting them *is* flagged
  as a self-deadlock.

* **Guard declarations** — a ``# guarded-by: _lock`` comment on an
  attribute assignment declares that attribute lock-guarded; rule
  ``GUARD001`` then requires every other access to hold that lock.  A
  ``# holds: _lock`` comment on a ``def`` line declares the convention
  "caller must hold the lock" for helper methods.

* **Flow facts** — for every function: each lock acquisition (with the
  locks already held), every ``self.<attr>`` access and every call with
  the held-lock set at that point, and calls to sibling methods (used to
  propagate acquisitions one call level for ordering edges).  ``with``
  blocks and linear ``.acquire()``/``.release()`` pairs are tracked;
  functions defined *inside* a ``with lock:`` block are treated as
  running under that lock (they are invariably sort keys / callbacks
  invoked before the block exits).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

GUARDED_BY_RE = re.compile(r"guarded-by:\s*([A-Za-z_]\w*)")
HOLDS_RE = re.compile(r"#\s*holds:\s*([A-Za-z_][\w,\s]*)")
IGNORE_RE = re.compile(r"#\s*analysis:\s*ignore(?:\[([A-Z0-9_,\s]+)\])?")
PRAGMA_EXACT_PATH = "# analysis: exact-path"

#: threading factory name -> lock kind
_LOCK_FACTORIES = {
    "Lock": "lock",
    "RLock": "rlock",
    "Condition": "condition",
}


@dataclass(frozen=True)
class LockDecl:
    """One declared lock attribute/name."""

    name: str
    kind: str  # "lock" | "rlock" | "condition"
    alias_of: Optional[str]  # Condition over another declared lock
    line: int


@dataclass(frozen=True)
class GuardDecl:
    """``attr`` must only be accessed while ``lock`` is held."""

    attr: str
    lock: str
    line: int


@dataclass(frozen=True)
class Acquire:
    lock: str  # canonical lock id
    kind: str  # kind of the alias root
    line: int
    column: int
    held: Tuple[str, ...]  # canonical ids held at acquisition, outer first


@dataclass(frozen=True)
class Access:
    attr: str
    line: int
    column: int
    held: Tuple[str, ...]


@dataclass(frozen=True)
class CallSite:
    node: ast.Call
    line: int
    column: int
    held: Tuple[str, ...]


@dataclass(frozen=True)
class SelfCall:
    method: str
    line: int
    held: Tuple[str, ...]


@dataclass
class FunctionFacts:
    qualname: str
    name: str
    node: ast.AST
    acquires: List[Acquire] = field(default_factory=list)
    accesses: List[Access] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    self_calls: List[SelfCall] = field(default_factory=list)


@dataclass
class ClassModel:
    name: str
    node: ast.ClassDef
    locks: Dict[str, LockDecl] = field(default_factory=dict)
    guards: Dict[str, GuardDecl] = field(default_factory=dict)

    def root_of(self, lock_name: str) -> Optional[LockDecl]:
        """Follow Condition aliases to the underlying mutex declaration."""
        decl = self.locks.get(lock_name)
        seen = set()
        while decl is not None and decl.alias_of and decl.alias_of not in seen:
            seen.add(decl.name)
            parent = self.locks.get(decl.alias_of)
            if parent is None:
                break
            decl = parent
        return decl


class ModuleModel:
    """Everything the rules need from one parsed source file."""

    def __init__(self, path: str, rel_path: str, source: str) -> None:
        self.path = path
        self.rel_path = rel_path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        self.exact_path = PRAGMA_EXACT_PATH in source
        self.classes: Dict[str, ClassModel] = {}
        self.module_locks: Dict[str, LockDecl] = {}
        self.functions: List[Tuple[Optional[ClassModel], ast.AST]] = []
        self._collect()

    # -- source helpers --------------------------------------------------------

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def suppressed_rules(self, line: int) -> Optional[set]:
        """Rules an inline ``# analysis: ignore[...]`` waives on ``line``.

        Returns ``None`` when there is no pragma, the empty set for a
        bare ``ignore`` (waives every rule), else the listed rule ids.
        """
        match = IGNORE_RE.search(self.line_text(line))
        if match is None:
            return None
        if match.group(1) is None:
            return set()
        return {rule.strip() for rule in match.group(1).split(",")}

    # -- declaration collection -------------------------------------------------

    def _collect(self) -> None:
        for node in self.tree.body:
            if isinstance(node, ast.ClassDef):
                model = ClassModel(name=node.name, node=node)
                self.classes[node.name] = model
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        self._collect_method_decls(model, item)
                        self.functions.append((model, item))
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions.append((None, node))
            else:
                self._collect_lock_assign(node, None)

    def _collect_method_decls(
        self, model: ClassModel, func: ast.AST
    ) -> None:
        for stmt in ast.walk(func):
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                self._collect_lock_assign(stmt, model)
                self._collect_guard_decl(stmt, model)

    def _assign_targets(self, stmt: ast.AST) -> List[ast.expr]:
        if isinstance(stmt, ast.Assign):
            return stmt.targets
        if isinstance(stmt, ast.AnnAssign):
            return [stmt.target]
        return []

    def _collect_lock_assign(
        self, stmt: ast.AST, model: Optional[ClassModel]
    ) -> None:
        value = getattr(stmt, "value", None)
        factory = _lock_factory(value)
        if factory is None:
            return
        kind, alias = factory
        for target in self._assign_targets(stmt):
            if (
                model is not None
                and isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                model.locks[target.attr] = LockDecl(
                    name=target.attr,
                    kind=kind,
                    alias_of=alias,
                    line=stmt.lineno,
                )
            elif isinstance(target, ast.Name):
                self.module_locks[target.id] = LockDecl(
                    name=target.id, kind=kind, alias_of=alias, line=stmt.lineno
                )

    def _collect_guard_decl(
        self, stmt: ast.AST, model: ClassModel
    ) -> None:
        for target in self._assign_targets(stmt):
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            match = GUARDED_BY_RE.search(self.line_text(stmt.lineno))
            if match is None:
                continue
            model.guards[target.attr] = GuardDecl(
                attr=target.attr, lock=match.group(1), line=stmt.lineno
            )

    # -- lock id resolution ------------------------------------------------------

    def resolve_lock(
        self, expr: ast.expr, model: Optional[ClassModel]
    ) -> Optional[Tuple[str, str]]:
        """``(canonical lock id, root kind)`` for a lock expression."""
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and model is not None
            and expr.attr in model.locks
        ):
            root = model.root_of(expr.attr)
            assert root is not None
            return f"{self.rel_path}::{model.name}.{root.name}", root.kind
        if isinstance(expr, ast.Name) and expr.id in self.module_locks:
            decl = self.module_locks[expr.id]
            return f"{self.rel_path}::{decl.name}", decl.kind
        return None

    def declared_holds(
        self, func: ast.AST, model: Optional[ClassModel]
    ) -> Tuple[str, ...]:
        """Canonical ids a ``# holds: _lock`` def-line pragma seeds."""
        match = HOLDS_RE.search(self.line_text(func.lineno))
        if match is None:
            return ()
        held = []
        for name in match.group(1).split(","):
            name = name.strip()
            if not name:
                continue
            fake = ast.Attribute(
                value=ast.Name(id="self", ctx=ast.Load()),
                attr=name,
                ctx=ast.Load(),
            )
            resolved = self.resolve_lock(fake, model)
            if resolved is None and name in self.module_locks:
                resolved = self.resolve_lock(
                    ast.Name(id=name, ctx=ast.Load()), model
                )
            if resolved is not None:
                held.append(resolved[0])
        return tuple(held)

    def guard_lock_id(
        self, model: ClassModel, guard: GuardDecl
    ) -> Optional[str]:
        root = model.root_of(guard.lock)
        if root is None:
            return None
        return f"{self.rel_path}::{model.name}.{root.name}"

    # -- flow extraction ---------------------------------------------------------

    def function_facts(
        self, model: Optional[ClassModel], func: ast.AST
    ) -> FunctionFacts:
        qualname = (
            f"{model.name}.{func.name}" if model is not None else func.name
        )
        facts = FunctionFacts(qualname=qualname, name=func.name, node=func)
        seeded = self.declared_holds(func, model)
        _FlowWalker(self, model, facts).walk(func.body, list(seeded))
        return facts

    def all_function_facts(self) -> List[Tuple[Optional[ClassModel], FunctionFacts]]:
        return [
            (model, self.function_facts(model, func))
            for model, func in self.functions
        ]


def _lock_factory(
    value: Optional[ast.expr],
) -> Optional[Tuple[str, Optional[str]]]:
    """``(kind, alias_of)`` when ``value`` constructs a threading lock."""
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        if func.value.id != "threading":
            return None
        name = func.attr
    elif isinstance(func, ast.Name):
        name = func.id
    else:
        return None
    kind = _LOCK_FACTORIES.get(name)
    if kind is None:
        return None
    alias = None
    if kind == "condition" and value.args:
        arg = value.args[0]
        if (
            isinstance(arg, ast.Attribute)
            and isinstance(arg.value, ast.Name)
            and arg.value.id == "self"
        ):
            alias = arg.attr
    return kind, alias


class _FlowWalker:
    """Statement walker tracking the held-lock set through a function."""

    def __init__(
        self,
        module: ModuleModel,
        model: Optional[ClassModel],
        facts: FunctionFacts,
    ) -> None:
        self.module = module
        self.model = model
        self.facts = facts

    def walk(self, stmts: List[ast.stmt], held: List[str]) -> None:
        held = list(held)
        for stmt in stmts:
            self._statement(stmt, held)

    def _statement(self, stmt: ast.stmt, held: List[str]) -> None:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner = list(held)
            for item in stmt.items:
                resolved = self.module.resolve_lock(
                    item.context_expr, self.model
                )
                if resolved is not None:
                    lock_id, kind = resolved
                    self.facts.acquires.append(
                        Acquire(
                            lock=lock_id,
                            kind=kind,
                            line=item.context_expr.lineno,
                            column=item.context_expr.col_offset,
                            held=tuple(inner),
                        )
                    )
                    inner.append(lock_id)
                else:
                    self._expression(item.context_expr, held)
                if item.optional_vars is not None:
                    self._expression(item.optional_vars, held)
            self.walk(stmt.body, inner)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # closure heuristic: a def inside a with-lock block runs
            # under that lock (sort keys, callbacks invoked in-block)
            self.walk(stmt.body, held)
        elif isinstance(stmt, ast.ClassDef):
            pass
        elif isinstance(stmt, ast.If):
            self._expression(stmt.test, held)
            self.walk(stmt.body, held)
            self.walk(stmt.orelse, held)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._expression(stmt.iter, held)
            self._expression(stmt.target, held)
            self.walk(stmt.body, held)
            self.walk(stmt.orelse, held)
        elif isinstance(stmt, ast.While):
            self._expression(stmt.test, held)
            self.walk(stmt.body, held)
            self.walk(stmt.orelse, held)
        elif isinstance(stmt, ast.Try):
            self.walk(stmt.body, held)
            for handler in stmt.handlers:
                self.walk(handler.body, held)
            self.walk(stmt.orelse, held)
            self.walk(stmt.finalbody, held)
        else:
            # linear statement: scan expressions, then apply any
            # top-level acquire()/release() effect to what follows
            for expr in ast.iter_child_nodes(stmt):
                if isinstance(expr, ast.expr):
                    self._expression(expr, held)
            effect = self._acquire_release_effect(stmt)
            if effect is not None:
                verb, lock_id, kind, line, column = effect
                if verb == "acquire":
                    self.facts.acquires.append(
                        Acquire(
                            lock=lock_id,
                            kind=kind,
                            line=line,
                            column=column,
                            held=tuple(held),
                        )
                    )
                    held.append(lock_id)
                elif lock_id in held:
                    # remove the innermost matching hold
                    for at in range(len(held) - 1, -1, -1):
                        if held[at] == lock_id:
                            del held[at]
                            break

    def _acquire_release_effect(self, stmt: ast.stmt):
        value = getattr(stmt, "value", None)
        if not (isinstance(stmt, ast.Expr) and isinstance(value, ast.Call)):
            return None
        func = value.func
        if not isinstance(func, ast.Attribute):
            return None
        if func.attr not in ("acquire", "release"):
            return None
        resolved = self.module.resolve_lock(func.value, self.model)
        if resolved is None:
            return None
        lock_id, kind = resolved
        verb = "acquire" if func.attr == "acquire" else "release"
        return verb, lock_id, kind, value.lineno, value.col_offset

    def _expression(self, expr: ast.expr, held: List[str]) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self.facts.calls.append(
                    CallSite(
                        node=node,
                        line=node.lineno,
                        column=node.col_offset,
                        held=tuple(held),
                    )
                )
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "self"
                ):
                    self.facts.self_calls.append(
                        SelfCall(
                            method=func.attr,
                            line=node.lineno,
                            held=tuple(held),
                        )
                    )
            elif (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                self.facts.accesses.append(
                    Access(
                        attr=node.attr,
                        line=node.lineno,
                        column=node.col_offset,
                        held=tuple(held),
                    )
                )

"""Analysis driver: parse sources, run the rule catalogue, apply the
baseline and inline suppressions, and render the report.

Exit-code contract of the CLI built on this: 0 when every finding is
baselined or suppressed, 1 when any *new* finding exists (regardless of
severity — a new warning is still an unreviewed regression), 2 on usage
errors.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.errors import AnalysisUsageError
from repro.analysis.findings import SCHEMA_VERSION, Finding
from repro.analysis.model import ModuleModel
from repro.analysis.rules import Rule, all_rules


def default_root() -> pathlib.Path:
    """The ``repro`` package directory — what CI analyzes."""
    import repro

    return pathlib.Path(repro.__file__).resolve().parent


def default_baseline_path() -> pathlib.Path:
    """``analysis-baseline.json`` at the repository root."""
    return default_root().parents[1] / "analysis-baseline.json"


@dataclass
class AnalysisReport:
    root: str
    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    rules: List[Rule] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_json(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "root": self.root,
            "counts": {
                "new": len(self.findings),
                "baselined": len(self.baselined),
                "suppressed": self.suppressed,
            },
            "rules": [rule.describe() for rule in self.rules],
            "findings": [finding.to_dict() for finding in self.findings],
            "baselined": [finding.to_dict() for finding in self.baselined],
        }

    def render_text(self) -> str:
        lines = []
        for finding in self.findings:
            lines.append(finding.render())
        lines.append(
            f"analysis: {len(self.findings)} new, "
            f"{len(self.baselined)} baselined, "
            f"{self.suppressed} suppressed"
        )
        return "\n".join(lines)


def iter_sources(root: pathlib.Path) -> List[pathlib.Path]:
    if root.is_file():
        return [root]
    return sorted(root.rglob("*.py"))


def analyze_paths(
    paths: Optional[Sequence] = None,
    baseline: Optional[Baseline] = None,
    root: Optional[pathlib.Path] = None,
    rules: Optional[Iterable[Rule]] = None,
) -> AnalysisReport:
    """Run the catalogue over ``paths`` (default: the whole package).

    ``root`` anchors the relative paths used in findings and
    fingerprints; it defaults to the package directory so fingerprints
    are identical across checkouts.
    """
    root = pathlib.Path(root) if root is not None else default_root()
    root = root.resolve()
    if paths:
        targets: List[pathlib.Path] = []
        for path in paths:
            path = pathlib.Path(path).resolve()
            if not path.exists():
                raise AnalysisUsageError(f"no such path: {path}")
            targets.extend(iter_sources(path))
    else:
        targets = iter_sources(root)

    active = list(rules) if rules is not None else all_rules()
    baseline = baseline if baseline is not None else Baseline()

    new: List[Finding] = []
    known: List[Finding] = []
    suppressed = 0
    for target in targets:
        try:
            rel = target.relative_to(root).as_posix()
        except ValueError:
            rel = target.name
        try:
            source = target.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            raise AnalysisUsageError(f"cannot read {target}: {exc}") from exc
        try:
            module = ModuleModel(str(target), rel, source)
        except SyntaxError as exc:
            raise AnalysisUsageError(
                f"cannot parse {target}: {exc}"
            ) from exc
        for rule in active:
            for finding in rule.check(module):
                waived = module.suppressed_rules(finding.line)
                if waived is not None and (
                    not waived or finding.rule in waived
                ):
                    suppressed += 1
                elif finding.fingerprint in baseline:
                    known.append(finding)
                else:
                    new.append(finding)

    order = lambda f: (f.path, f.line, f.column, f.rule)  # noqa: E731
    return AnalysisReport(
        root=str(root),
        findings=sorted(new, key=order),
        baselined=sorted(known, key=order),
        suppressed=suppressed,
        rules=active,
    )


def write_json_report(report: AnalysisReport, path) -> None:
    pathlib.Path(path).write_text(
        json.dumps(report.to_json(), indent=2) + "\n", encoding="utf-8"
    )

"""Project-specific static analysis and runtime sanitizers.

Six PRs of concurrent serving code rest on hand-maintained invariants:
artifacts are never unpickled, numpy fast paths stay behind exactness
bounds, published snapshots are immutable, and the serving/fleet tier
holds a growing web of locks.  This package turns those invariants into
machine-checked rules:

* :mod:`repro.analysis.engine` — an AST pass (stdlib :mod:`ast`, no new
  dependencies) running the project rule set over ``src/repro`` with a
  checked-in baseline, surfaced as ``python -m repro analyze`` and a CI
  gate.  See :mod:`repro.analysis.rules` for the rule catalogue.
* :mod:`repro.analysis.lockwatch` — an opt-in instrumented
  ``Lock``/``RLock`` wrapper (``REPRO_LOCKWATCH=1``) that records the
  *runtime* lock-order graph while the concurrency tests run and fails
  on ordering cycles, self-deadlocks, and over-long holds — the dynamic
  complement of the static lock-discipline rules.
"""

from repro.analysis.baseline import Baseline, write_baseline
from repro.analysis.engine import AnalysisReport, analyze_paths, default_root
from repro.analysis.errors import (
    AnalysisError,
    BaselineFormatError,
    LockOrderError,
)
from repro.analysis.findings import Finding

__all__ = [
    "AnalysisError",
    "AnalysisReport",
    "Baseline",
    "BaselineFormatError",
    "Finding",
    "LockOrderError",
    "analyze_paths",
    "default_root",
    "write_baseline",
]

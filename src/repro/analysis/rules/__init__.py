"""The rule catalogue.  Ids are stable forever; retired rules leave a gap."""

from __future__ import annotations

from typing import List

from repro.analysis.rules.base import Rule
from repro.analysis.rules.exactness import ExactnessRule
from repro.analysis.rules.guarded import GuardedStateRule
from repro.analysis.rules.locks import (
    BlockingUnderLockRule,
    LockOrderRule,
    NestedLockRule,
)
from repro.analysis.rules.nopickle import NoPickleRule
from repro.analysis.rules.raises import TypedRaiseRule

__all__ = [
    "Rule",
    "all_rules",
    "BlockingUnderLockRule",
    "ExactnessRule",
    "GuardedStateRule",
    "LockOrderRule",
    "NestedLockRule",
    "NoPickleRule",
    "TypedRaiseRule",
]


def all_rules() -> List[Rule]:
    return [
        LockOrderRule(),
        BlockingUnderLockRule(),
        NestedLockRule(),
        GuardedStateRule(),
        NoPickleRule(),
        ExactnessRule(),
        TypedRaiseRule(),
    ]

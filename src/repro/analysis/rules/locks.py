"""Lock-discipline rules: ordering (LOCK001), blocking work under a lock
(LOCK002), and nested re-acquisition of a non-reentrant lock (LOCK003).

The acquisition graph is built from the per-function flow facts: every
acquisition made while other locks are held contributes ``held -> new``
edges, and calls to sibling methods propagate the callee's acquisitions
into the caller's held context (one fixpoint over the class, so helper
indirection does not hide an ordering edge).  A cycle in that graph is a
potential deadlock whichever thread interleaving you pick — LOCK001.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.findings import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Finding,
)
from repro.analysis.model import ModuleModel
from repro.analysis.rules.base import Rule

#: project functions that do file/pipe I/O — calling them under a lock
#: serialises unrelated requests behind the disk
PROJECT_IO_FUNCS = {
    "open",
    "write_message",
    "read_message",
    "save_artifact",
    "load_artifact",
    "write_manifest",
    "read_manifest",
    "write_stage",
    "read_stage_records",
}

#: method names that block the calling thread regardless of receiver
_BLOCKING_METHODS = {
    "sleep",
    "result",
    "communicate",
    "check_call",
    "check_output",
    "shutdown",
}

_SUBPROCESS_CALLS = {"run", "call", "check_call", "check_output", "Popen"}

_JOIN_RECEIVER_RE = re.compile(r"(?i)thread|proc|work|dispatch|read|writ")


def _call_name(func: ast.expr) -> str:
    """Dotted-ish printable name of a call target."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return f"{_call_name(func.value)}.{func.attr}"
    return "<expr>"


def _receiver_tail(expr: ast.expr) -> str:
    """Last identifier of a call receiver (``self._queue`` -> ``_queue``)."""
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return ""


class LockOrderRule(Rule):
    id = "LOCK001"
    category = "lock-discipline"
    severity = SEVERITY_ERROR
    description = (
        "lock-acquisition graph (including acquisitions reached through "
        "sibling-method calls) must be cycle-free"
    )

    def check(self, module: ModuleModel) -> List[Finding]:
        edges: Dict[Tuple[str, str], Tuple[int, int, str]] = {}
        per_class: Dict[int, List] = {}
        for model, facts in module.all_function_facts():
            per_class.setdefault(id(model), []).append((model, facts))

        for group in per_class.values():
            # fixpoint: the full set of locks each method may acquire,
            # following self-calls
            acquires: Dict[str, Set[str]] = {}
            callees: Dict[str, Set[str]] = {}
            for _model, facts in group:
                acquires.setdefault(facts.name, set()).update(
                    acq.lock for acq in facts.acquires
                )
                callees.setdefault(facts.name, set()).update(
                    call.method for call in facts.self_calls
                )
            changed = True
            while changed:
                changed = False
                for name, called in callees.items():
                    for callee in called:
                        extra = acquires.get(callee, set()) - acquires[name]
                        if extra:
                            acquires[name].update(extra)
                            changed = True

            for _model, facts in group:
                for acq in facts.acquires:
                    for held in acq.held:
                        if held != acq.lock:
                            edges.setdefault(
                                (held, acq.lock),
                                (acq.line, acq.column, facts.qualname),
                            )
                for call in facts.self_calls:
                    if not call.held:
                        continue
                    for lock in acquires.get(call.method, set()):
                        for held in call.held:
                            if held != lock:
                                edges.setdefault(
                                    (held, lock),
                                    (call.line, 0, facts.qualname),
                                )

        return self._cycles(module, edges)

    def _cycles(
        self,
        module: ModuleModel,
        edges: Dict[Tuple[str, str], Tuple[int, int, str]],
    ) -> List[Finding]:
        graph: Dict[str, Set[str]] = {}
        for src, dst in edges:
            graph.setdefault(src, set()).add(dst)
            graph.setdefault(dst, set())

        sccs = _tarjan(graph)
        findings = []
        for component in sccs:
            if len(component) < 2:
                continue
            members = sorted(component)
            in_cycle = [
                (edge, site)
                for edge, site in edges.items()
                if edge[0] in component and edge[1] in component
            ]
            line, column, symbol = min(site for _edge, site in in_cycle)
            pretty = " <-> ".join(m.rsplit("::", 1)[-1] for m in members)
            findings.append(
                Finding(
                    rule=self.id,
                    severity=self.severity,
                    path=module.rel_path,
                    line=line,
                    column=column,
                    symbol=symbol,
                    message=(
                        f"lock-order inversion: {pretty} are acquired in "
                        f"conflicting orders (potential deadlock)"
                    ),
                    subject="|".join(members),
                )
            )
        return findings


class BlockingUnderLockRule(Rule):
    id = "LOCK002"
    category = "lock-discipline"
    severity = SEVERITY_WARNING
    description = (
        "no blocking work (file/pipe I/O, sleeps, joins, future waits) "
        "while holding a lock"
    )

    def check(self, module: ModuleModel) -> List[Finding]:
        findings = []
        for _model, facts in module.all_function_facts():
            for site in facts.calls:
                if not site.held:
                    continue
                reason = self._blocking_reason(module, _model, site)
                if reason is None:
                    continue
                callee = _call_name(site.node.func)
                findings.append(
                    Finding(
                        rule=self.id,
                        severity=self.severity,
                        path=module.rel_path,
                        line=site.line,
                        column=site.column,
                        symbol=facts.qualname,
                        message=(
                            f"{reason} while holding "
                            f"{', '.join(h.rsplit('::', 1)[-1] for h in site.held)}"
                        ),
                        subject=callee,
                    )
                )
        return findings

    def _blocking_reason(self, module, model, site) -> Optional[str]:
        func = site.node.func
        if isinstance(func, ast.Name):
            if func.id in PROJECT_IO_FUNCS:
                return f"blocking call {func.id}() (I/O)"
            return None
        if not isinstance(func, ast.Attribute):
            return None
        name = func.attr
        receiver = func.value

        if name in ("wait", "wait_for"):
            resolved = module.resolve_lock(receiver, model)
            if resolved is not None and resolved[0] in site.held:
                return None  # condition wait releases the held lock
            return f"blocking call .{name}()"
        if (
            isinstance(receiver, ast.Name)
            and receiver.id == "subprocess"
            and name in _SUBPROCESS_CALLS
        ):
            return f"blocking call subprocess.{name}()"
        if name in _BLOCKING_METHODS:
            return f"blocking call .{name}()"
        if name in PROJECT_IO_FUNCS:
            return f"blocking call .{name}() (I/O)"
        if name == "join" and _JOIN_RECEIVER_RE.search(
            _receiver_tail(receiver)
        ):
            return "blocking call .join()"
        if (
            name == "get"
            and "queue" in _receiver_tail(receiver).lower()
            and not any(kw.arg == "timeout" for kw in site.node.keywords)
        ):
            return "blocking call .get() with no timeout"
        return None


class NestedLockRule(Rule):
    id = "LOCK003"
    category = "lock-discipline"
    severity = SEVERITY_ERROR
    description = (
        "a non-reentrant lock must not be re-acquired while already held "
        "(guaranteed self-deadlock)"
    )

    def check(self, module: ModuleModel) -> List[Finding]:
        findings = []
        for _model, facts in module.all_function_facts():
            for acq in facts.acquires:
                if acq.lock not in acq.held:
                    continue
                if acq.kind == "rlock":
                    continue
                # a bare Condition() wraps its own RLock — reentrant
                if acq.kind == "condition":
                    continue
                short = acq.lock.rsplit("::", 1)[-1]
                findings.append(
                    Finding(
                        rule=self.id,
                        severity=self.severity,
                        path=module.rel_path,
                        line=acq.line,
                        column=acq.column,
                        symbol=facts.qualname,
                        message=(
                            f"non-reentrant lock {short} re-acquired while "
                            f"already held — this deadlocks"
                        ),
                        subject=acq.lock,
                    )
                )
        return findings


def _tarjan(graph: Dict[str, Set[str]]) -> List[Set[str]]:
    """Strongly connected components, iterative Tarjan."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[Set[str]] = []
    counter = [0]

    for root in graph:
        if root in index:
            continue
        work = [(root, iter(sorted(graph[root])))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, neighbours = work[-1]
            advanced = False
            for nxt in neighbours:
                if nxt not in index:
                    index[nxt] = lowlink[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(sorted(graph[nxt]))))
                    advanced = True
                    break
                if nxt in on_stack:
                    lowlink[node] = min(lowlink[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                sccs.append(component)
    return sccs

"""PICKLE001 — no pickle-family deserialization, no dynamic code eval.

The artifact tier's core guarantee (PR 5) is that nothing loaded from
disk ever goes through ``pickle`` — artifacts are JSON/ndjson with
explicit codecs, so a corrupted or attacker-supplied artifact can fail
checksum validation but never execute code.  This rule keeps that true
by construction: importing any pickle-family module or calling
``eval``/``exec`` on anything anywhere under ``src/repro`` is an error.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.findings import SEVERITY_ERROR, Finding
from repro.analysis.model import ModuleModel
from repro.analysis.rules.base import Rule

_BANNED_MODULES = {"pickle", "cPickle", "_pickle", "marshal", "shelve", "dill"}
_BANNED_CALLS = {"eval", "exec"}


class NoPickleRule(Rule):
    id = "PICKLE001"
    category = "safe-decode"
    severity = SEVERITY_ERROR
    description = (
        "pickle/marshal/shelve/dill imports and eval/exec calls are banned "
        "(artifacts must stay safe to decode)"
    )

    def check(self, module: ModuleModel) -> List[Finding]:
        findings = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".", 1)[0]
                    if root in _BANNED_MODULES:
                        findings.append(
                            self._finding(
                                module,
                                node,
                                f"import of banned module {alias.name!r}",
                                subject=f"import:{root}",
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".", 1)[0]
                if root in _BANNED_MODULES:
                    findings.append(
                        self._finding(
                            module,
                            node,
                            f"import from banned module {node.module!r}",
                            subject=f"import:{root}",
                        )
                    )
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Name) and func.id in _BANNED_CALLS:
                    findings.append(
                        self._finding(
                            module,
                            node,
                            f"call to {func.id}() — dynamic code execution",
                            subject=f"call:{func.id}",
                        )
                    )
        return findings

    def _finding(self, module, node, message, subject) -> Finding:
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=module.rel_path,
            line=node.lineno,
            column=node.col_offset,
            symbol=module.rel_path,
            message=message,
            subject=subject,
        )

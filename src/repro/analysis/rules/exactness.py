"""EXACT001 — numpy fast paths in exact-result modules stay guarded.

Modules carrying the ``# analysis: exact-path`` pragma promise bit-exact
results: their numpy code is only valid below proven overflow/precision
bounds, with a pure-python bigint fallback above them (PR 3's
``bincount_safe`` / ``_FLOAT64_EXACT`` pattern).  The rule enforces the
shape of that promise: every function touching numpy must either be
*guard-bearing* — it names a bound check (any identifier matching
``safe``/``exact``/``bound``) — or be reachable only from guard-bearing
functions in the same module, so a new unguarded fast path cannot slip
in next to the guarded one.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Set

from repro.analysis.findings import SEVERITY_ERROR, Finding
from repro.analysis.model import ModuleModel
from repro.analysis.rules.base import Rule

_GUARD_RE = re.compile(r"(?i)safe|exact|bound")


class ExactnessRule(Rule):
    id = "EXACT001"
    category = "exactness"
    severity = SEVERITY_ERROR
    description = (
        "in '# analysis: exact-path' modules, numpy-using functions must "
        "carry a bound check or be called only from functions that do"
    )

    def check(self, module: ModuleModel) -> List[Finding]:
        if not module.exact_path:
            return []
        numpy_names = _numpy_aliases(module.tree)
        if not numpy_names:
            return []

        funcs = {}
        for _model, node in module.functions:
            funcs.setdefault(node.name, node)

        uses_numpy: Set[str] = set()
        guard_bearing: Set[str] = set()
        callers: Dict[str, Set[str]] = {name: set() for name in funcs}

        for name, node in funcs.items():
            idents = _identifiers(node)
            if idents & numpy_names:
                uses_numpy.add(name)
            if any(_GUARD_RE.search(ident) for ident in idents):
                guard_bearing.add(name)
            # any bare reference to another module function counts as a
            # call edge (covers pool.map(_worker, ...) dispatch)
            for other in funcs:
                if other != name and other in idents:
                    callers[other].add(name)

        compliant = set(guard_bearing)
        changed = True
        while changed:
            changed = False
            for name in funcs:
                if name in compliant:
                    continue
                if callers[name] and callers[name] <= compliant:
                    compliant.add(name)
                    changed = True

        findings = []
        for name in sorted(uses_numpy - compliant):
            node = funcs[name]
            findings.append(
                Finding(
                    rule=self.id,
                    severity=self.severity,
                    path=module.rel_path,
                    line=node.lineno,
                    column=node.col_offset,
                    symbol=name,
                    message=(
                        f"{name}() uses numpy in an exact-path module but "
                        f"neither checks a bound (safe/exact/bound "
                        f"identifier) nor is reached only via functions "
                        f"that do"
                    ),
                    subject=name,
                )
            )
        return findings


def _numpy_aliases(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".", 1)[0] == "numpy":
                    names.add(alias.asname or alias.name.split(".", 1)[0])
        elif isinstance(node, ast.ImportFrom):
            if (node.module or "").split(".", 1)[0] == "numpy":
                for alias in node.names:
                    names.add(alias.asname or alias.name)
    return names


def _identifiers(func: ast.AST) -> Set[str]:
    idents: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Name):
            idents.add(node.id)
        elif isinstance(node, ast.Attribute):
            idents.add(node.attr)
        elif isinstance(node, ast.arg):
            idents.add(node.arg)
        elif isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            idents.add(node.name)
    return idents

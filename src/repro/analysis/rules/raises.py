"""RAISE001 — serving/fleet/artifact/analysis raise their typed errors.

The wire protocol (PR 6) maps exceptions by type name, the router keys
failover decisions on the error hierarchy, and callers are documented to
catch ``ServingError``/``FleetError``/``ArtifactError``.  A bare
``RuntimeError`` in those tiers silently falls out of all three
contracts, so raising a builtin exception type there is flagged.

Constructor exemption: ``__init__``/``__post_init__`` argument
validation raising ``ValueError``/``TypeError`` is the stdlib-wide
convention (misuse at the call site, not a runtime failure of the tier)
and stays allowed.  ``AssertionError`` and ``NotImplementedError`` are
never flagged.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.findings import SEVERITY_WARNING, Finding
from repro.analysis.model import ModuleModel
from repro.analysis.rules.base import Rule

#: path segments (under the package root) where typed errors are required
TYPED_PACKAGES = {"serving", "fleet", "artifact", "analysis"}

_BANNED = {
    "ValueError",
    "RuntimeError",
    "TypeError",
    "KeyError",
    "IndexError",
    "Exception",
    "BaseException",
    "OSError",
    "IOError",
    "LookupError",
    "ArithmeticError",
    "StopIteration",
}

_EXEMPT_FUNCS = {"__init__", "__post_init__"}


class TypedRaiseRule(Rule):
    id = "RAISE001"
    category = "typed-errors"
    severity = SEVERITY_WARNING
    description = (
        "serving/fleet/artifact/analysis code raises package error types, "
        "not builtin exceptions (constructor validation exempt)"
    )

    def check(self, module: ModuleModel) -> List[Finding]:
        segments = set(module.rel_path.split("/")[:-1])
        if not segments & TYPED_PACKAGES:
            return []
        findings = []
        for _model, func in module.functions:
            if func.name in _EXEMPT_FUNCS:
                continue
            qualname = (
                f"{_model.name}.{func.name}" if _model else func.name
            )
            for node in ast.walk(func):
                if not isinstance(node, ast.Raise) or node.exc is None:
                    continue
                exc = node.exc
                name = None
                if isinstance(exc, ast.Call) and isinstance(
                    exc.func, ast.Name
                ):
                    name = exc.func.id
                elif isinstance(exc, ast.Name):
                    name = exc.id
                if name not in _BANNED:
                    continue
                findings.append(
                    Finding(
                        rule=self.id,
                        severity=self.severity,
                        path=module.rel_path,
                        line=node.lineno,
                        column=node.col_offset,
                        symbol=qualname,
                        message=(
                            f"raise {name} in a typed-error tier — use the "
                            f"package error hierarchy so wire mapping and "
                            f"failover keep working"
                        ),
                        subject=name,
                    )
                )
        return findings

"""Rule interface: one class per rule id, stateless over a ModuleModel."""

from __future__ import annotations

from typing import List

from repro.analysis.findings import Finding
from repro.analysis.model import ModuleModel


class Rule:
    """One invariant with a stable id, checked per module."""

    #: stable rule id, e.g. ``LOCK001`` — never renumber
    id: str = ""
    #: short category slug for the JSON report
    category: str = ""
    #: default severity of this rule's findings
    severity: str = "error"
    #: one-line description for ``--json`` and the README table
    description: str = ""

    def check(self, module: ModuleModel) -> List[Finding]:
        raise NotImplementedError

    def describe(self) -> dict:
        return {
            "id": self.id,
            "category": self.category,
            "severity": self.severity,
            "description": self.description,
        }

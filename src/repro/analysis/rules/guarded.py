"""GUARD001 — declared lock-guarded attributes are only touched under
their lock.

The convention is opt-in per attribute: a ``# guarded-by: _lock`` comment
on the attribute's assignment (anywhere in the class, normally
``__init__``) declares the invariant, and from then on every
``self.<attr>`` access in the class must run while the named lock — or a
``Condition`` built over it — is held.  ``__init__``/``__post_init__``
are exempt (no concurrent access before the constructor returns), and a
``# holds: _lock`` pragma on a helper's ``def`` line records the
"caller must hold" contract so locked helpers pass without noise.
"""

from __future__ import annotations

from typing import List

from repro.analysis.findings import SEVERITY_ERROR, Finding
from repro.analysis.model import ModuleModel
from repro.analysis.rules.base import Rule

_EXEMPT_METHODS = {"__init__", "__post_init__"}


class GuardedStateRule(Rule):
    id = "GUARD001"
    category = "guarded-state"
    severity = SEVERITY_ERROR
    description = (
        "attributes declared '# guarded-by: <lock>' are only accessed "
        "while that lock is held"
    )

    def check(self, module: ModuleModel) -> List[Finding]:
        findings = []
        for model, facts in module.all_function_facts():
            if model is None or not model.guards:
                continue
            if facts.name in _EXEMPT_METHODS:
                continue
            for access in facts.accesses:
                guard = model.guards.get(access.attr)
                if guard is None:
                    continue
                lock_id = module.guard_lock_id(model, guard)
                if lock_id is None:
                    findings.append(
                        Finding(
                            rule=self.id,
                            severity=self.severity,
                            path=module.rel_path,
                            line=guard.line,
                            column=0,
                            symbol=f"{model.name}.{guard.attr}",
                            message=(
                                f"guarded-by names unknown lock "
                                f"{guard.lock!r} (no matching declaration)"
                            ),
                            subject=f"{guard.attr}:unknown-lock",
                        )
                    )
                    continue
                if lock_id in access.held:
                    continue
                findings.append(
                    Finding(
                        rule=self.id,
                        severity=self.severity,
                        path=module.rel_path,
                        line=access.line,
                        column=access.column,
                        symbol=facts.qualname,
                        message=(
                            f"self.{access.attr} is guarded by "
                            f"{guard.lock} but accessed without holding it"
                        ),
                        subject=access.attr,
                    )
                )
        return _dedupe(findings)


def _dedupe(findings: List[Finding]) -> List[Finding]:
    """One finding per (symbol, attr): the first offending line."""
    seen = {}
    for finding in findings:
        key = (finding.symbol, finding.subject)
        if key not in seen or finding.line < seen[key].line:
            seen[key] = finding
    return sorted(seen.values(), key=lambda f: (f.line, f.column))

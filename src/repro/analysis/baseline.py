"""The checked-in baseline: known findings the gate accepts, justified.

A baseline entry is a *decision record*: either a violation that is
intentional (with a one-line justification saying why) or debt accepted
when a rule was introduced.  The gate fails on any finding whose
fingerprint is not in the baseline, so the file can only shrink silently
— growing it is a reviewed diff.

Format (JSON, sorted by fingerprint for stable diffs)::

    {
      "schema_version": 1,
      "suppressions": [
        {"fingerprint": "...", "rule": "...", "path": "...",
         "symbol": "...", "justification": "one line"},
        ...
      ]
    }
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.analysis.errors import BaselineFormatError
from repro.analysis.findings import SCHEMA_VERSION, Finding

_PLACEHOLDER = "TODO: justify or fix"


@dataclass(frozen=True)
class BaselineEntry:
    fingerprint: str
    rule: str
    path: str
    symbol: str
    justification: str

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "rule": self.rule,
            "path": self.path,
            "symbol": self.symbol,
            "justification": self.justification,
        }


class Baseline:
    """Fingerprint -> entry lookup over one baseline file."""

    def __init__(self, entries: Iterable[BaselineEntry] = ()) -> None:
        self.entries: Dict[str, BaselineEntry] = {
            entry.fingerprint: entry for entry in entries
        }

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def unused(self, findings: Iterable[Finding]) -> List[BaselineEntry]:
        """Entries no current finding matches (candidates for removal)."""
        seen = {finding.fingerprint for finding in findings}
        return [
            entry
            for fingerprint, entry in sorted(self.entries.items())
            if fingerprint not in seen
        ]

    @classmethod
    def load(cls, path) -> "Baseline":
        path = pathlib.Path(path)
        if not path.exists():
            return cls()
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except ValueError as exc:
            raise BaselineFormatError(
                f"baseline {path} is not valid JSON: {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise BaselineFormatError(f"baseline {path} must be an object")
        version = payload.get("schema_version")
        if version != SCHEMA_VERSION:
            raise BaselineFormatError(
                f"baseline {path} has schema_version {version!r}; this "
                f"analyzer speaks {SCHEMA_VERSION}"
            )
        raw = payload.get("suppressions")
        if not isinstance(raw, list):
            raise BaselineFormatError(
                f"baseline {path} needs a 'suppressions' list"
            )
        entries = []
        for item in raw:
            if not isinstance(item, dict) or "fingerprint" not in item:
                raise BaselineFormatError(
                    f"baseline {path}: every suppression needs a fingerprint"
                )
            entries.append(
                BaselineEntry(
                    fingerprint=str(item["fingerprint"]),
                    rule=str(item.get("rule", "")),
                    path=str(item.get("path", "")),
                    symbol=str(item.get("symbol", "")),
                    justification=str(item.get("justification", "")),
                )
            )
        return cls(entries)


def write_baseline(
    path, findings: Iterable[Finding], existing: Baseline | None = None
) -> int:
    """Write a baseline accepting ``findings``; keeps old justifications.

    Returns the number of entries written.  New entries get a placeholder
    justification that a reviewer is expected to replace.
    """
    existing = existing or Baseline()
    by_fingerprint: Dict[str, BaselineEntry] = {}
    for finding in findings:
        kept = existing.entries.get(finding.fingerprint)
        justification = (
            kept.justification
            if kept is not None and kept.justification
            else _PLACEHOLDER
        )
        by_fingerprint[finding.fingerprint] = BaselineEntry(
            fingerprint=finding.fingerprint,
            rule=finding.rule,
            path=finding.path,
            symbol=finding.symbol,
            justification=justification,
        )
    payload = {
        "schema_version": SCHEMA_VERSION,
        "suppressions": [
            by_fingerprint[fp].to_dict() for fp in sorted(by_fingerprint)
        ],
    }
    pathlib.Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=False) + "\n",
        encoding="utf-8",
    )
    return len(by_fingerprint)

"""Clustering quality against the world model's ground truth.

The paper evaluates communities qualitatively (Figure 7) and through the
end-task (expert retrieval).  Because our substrate has ground-truth topic
labels, we can additionally quantify clustering quality — used by tests
(sanity floors) and the ABL1 ablation bench.
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.community.partition import Partition


def purity(partition: Partition, truth: Mapping[str, str]) -> float:
    """Weighted purity: vertices in their community's majority gold class.

    Vertices missing from ``truth`` are ignored.  Returns a value in
    [0, 1]; 1.0 means every community is gold-homogeneous.
    """
    total = 0
    agreeing = 0
    for community in partition.communities():
        tally: dict[str, int] = {}
        for vertex in partition.members(community):
            gold = truth.get(vertex)
            if gold is None:
                continue
            tally[gold] = tally.get(gold, 0) + 1
        if not tally:
            continue
        total += sum(tally.values())
        agreeing += max(tally.values())
    return agreeing / total if total else 0.0


def normalized_mutual_information(
    partition: Partition, truth: Mapping[str, str]
) -> float:
    """NMI between the found partition and gold labels (arithmetic norm).

    Only vertices present in ``truth`` participate.  Returns 0.0 when
    either side is a single class (no information).
    """
    vertices = [v for v in partition.vertices() if v in truth]
    n = len(vertices)
    if n == 0:
        return 0.0
    found_counts: dict[str, int] = {}
    gold_counts: dict[str, int] = {}
    joint: dict[tuple[str, str], int] = {}
    for vertex in vertices:
        f = partition.community_of(vertex)
        g = truth[vertex]
        found_counts[f] = found_counts.get(f, 0) + 1
        gold_counts[g] = gold_counts.get(g, 0) + 1
        joint[(f, g)] = joint.get((f, g), 0) + 1

    def entropy(counts: dict[str, int]) -> float:
        return -sum(
            (c / n) * math.log(c / n) for c in counts.values() if c > 0
        )

    h_found = entropy(found_counts)
    h_gold = entropy(gold_counts)
    if h_found == 0.0 or h_gold == 0.0:
        return 0.0
    mutual = 0.0
    for (f, g), c in joint.items():
        p_joint = c / n
        p_f = found_counts[f] / n
        p_g = gold_counts[g] / n
        mutual += p_joint * math.log(p_joint / (p_f * p_g))
    return mutual / ((h_found + h_gold) / 2)

"""The paper's parallel modularity-maximisation algorithm (§4.2.2, Fig. 3–4).

Each iteration runs the three steps of §4.2.2:

1. **Neighbourhood creation** — for every community, list the connected
   communities whose union would increase total modularity (ΔMod > 0).
2. **Neighbourhood separation** — every community keeps only its *closest*
   neighbourhood: the candidate with the largest ΔMod (ties broken on the
   smaller community name; the paper leaves ties unspecified).
3. **Aggregation** — communities in the same neighbourhood merge.

Step 3 admits three readings, all implemented (``ParallelConfig.merge_mode``):

* ``"pointer"`` (default) — the literal Figure 4 semantics: every
  community's members are relabelled to the chosen target in one jump.
  Two communities that choose each other swap labels without structurally
  changing, so convergence is detected on partition *structure*.
* ``"matching"`` — pointer jumps, but a *mutual* choice (A picks B and B
  picks A) merges the pair under the smaller name (the Figure 3 picture).
* ``"components"`` — the whole functional graph of choices is collapsed
  with union-find, so chains of choices merge in one iteration.  Fastest
  convergence, coarsest output.

``"pointer"`` is the default because it is both the literal reading of the
published SQL *and* the one that reproduces the paper's observed behaviour:
on our synthetic graphs it converges in 7–9 iterations with the Figure 5
count profile and yields the Figure 6 size distribution (modal bucket 2–10
queries, no giant communities), whereas running the merge process to
ΔMod-exhaustion (``matching``/``components``) hits modularity's well-known
resolution limit and collapses whole domains into giants — communities far
too coarse for query expansion.  The mutual-choice stalemate of the pointer
semantics acts as an implicit regulariser; see the ABL1 bench for numbers.

Both modes are pure Python over dict-based community statistics; the
relational execution of the same algorithm lives in
:mod:`repro.community.sql_runner` and is cross-checked against
``"pointer"`` mode in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.community.modularity import CommunityStats, delta_modularity
from repro.community.partition import Partition, singleton_partition
from repro.simgraph.graph import MultiGraph


@dataclass(frozen=True)
class ParallelConfig:
    """Knobs of the parallel detector."""

    max_iterations: int = 30
    merge_mode: str = "pointer"  # "pointer" | "matching" | "components"
    #: stop early when the community count reaches this floor (the paper's
    #: "satisfying number of communities" criterion); 0 disables it
    target_communities: int = 0

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.merge_mode not in ("matching", "components", "pointer"):
            raise ValueError(
                f"merge_mode must be 'matching', 'components' or 'pointer', "
                f"got {self.merge_mode!r}"
            )
        if self.target_communities < 0:
            raise ValueError("target_communities must be >= 0")


@dataclass
class IterationTrace:
    """Per-iteration record — the series plotted in Figure 5."""

    iteration: int
    communities: int
    merges: int
    modularity_gain: float


class ParallelCommunityDetector:
    """Runs the parallel algorithm to convergence."""

    def __init__(
        self, graph: MultiGraph, config: ParallelConfig | None = None
    ) -> None:
        self.graph = graph
        self.config = config or ParallelConfig()
        self.history: list[IterationTrace] = []

    # -- single iteration ------------------------------------------------------

    def choose_targets(self, partition: Partition) -> dict[str, str]:
        """Steps 1–2: each community's best positive-gain neighbour."""
        stats = CommunityStats.from_partition(self.graph, partition)
        best: dict[str, tuple[float, str]] = {}
        for (c1, c2), between in stats.between_edges.items():
            gain = delta_modularity(
                between,
                stats.degree_sum.get(c1, 0),
                stats.degree_sum.get(c2, 0),
                stats.total_edges,
            )
            if gain <= 0:
                continue
            for source, target in ((c1, c2), (c2, c1)):
                incumbent = best.get(source)
                candidate = (gain, target)
                if incumbent is None:
                    best[source] = candidate
                elif candidate[0] > incumbent[0] or (
                    candidate[0] == incumbent[0] and candidate[1] < incumbent[1]
                ):
                    best[source] = candidate
        return {source: target for source, (_, target) in best.items()}

    def apply_targets(
        self, partition: Partition, targets: dict[str, str]
    ) -> Partition:
        """Step 3 under the configured merge mode."""
        if self.config.merge_mode == "pointer":
            return partition.relabel(targets)
        if self.config.merge_mode == "matching":
            return partition.relabel(_resolve_mutual(targets))
        return partition.relabel(_collapse_components(targets))

    # -- full run ------------------------------------------------------------

    def run(self, initial: Partition | None = None) -> Partition:
        """Iterate to convergence; populates :attr:`history` (Figure 5)."""
        partition = initial or singleton_partition(self.graph.vertices())
        partition.validate_covers(self.graph)
        self.history = [
            IterationTrace(
                iteration=0,
                communities=partition.community_count(),
                merges=0,
                modularity_gain=0.0,
            )
        ]
        for iteration in range(1, self.config.max_iterations + 1):
            targets = self.choose_targets(partition)
            if not targets:
                break
            next_partition = self.apply_targets(partition, targets)
            gain = _applied_gain(self.graph, partition, next_partition)
            merges = partition.community_count() - next_partition.community_count()
            self.history.append(
                IterationTrace(
                    iteration=iteration,
                    communities=next_partition.community_count(),
                    merges=merges,
                    modularity_gain=gain,
                )
            )
            converged = partition.same_structure(next_partition)
            partition = next_partition
            if converged:
                break
            if (
                self.config.target_communities
                and partition.community_count() <= self.config.target_communities
            ):
                break
        return partition

    def community_counts(self) -> list[int]:
        """Community count per iteration — the Figure 5 series."""
        return [trace.communities for trace in self.history]


def _resolve_mutual(targets: dict[str, str]) -> dict[str, str]:
    """Pointer jumps, with mutual choices merged under the smaller name.

    A pair that elects each other would swap labels forever under pure
    pointer semantics; §4.2.2 step 3 clearly intends them to aggregate.
    """
    mapping: dict[str, str] = {}
    for source, target in targets.items():
        if targets.get(target) == source:
            mapping[source] = min(source, target)
        else:
            mapping[source] = target
    return mapping


def _collapse_components(targets: dict[str, str]) -> dict[str, str]:
    """Union-find over the functional graph of merge choices.

    Every weakly connected component of ``{c → targets[c]}`` becomes one
    community named after its lexicographically smallest member, which
    keeps runs deterministic.
    """
    parent: dict[str, str] = {}

    def find(node: str) -> str:
        root = node
        while parent.get(root, root) != root:
            root = parent[root]
        while parent.get(node, node) != node:  # path compression
            parent[node], node = root, parent[node]
        return root

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            # attach the larger name under the smaller for determinism
            if ra < rb:
                parent[rb] = ra
            else:
                parent[ra] = rb

    for source, target in targets.items():
        union(source, target)

    mapping: dict[str, str] = {}
    involved = set(targets) | set(targets.values())
    for community in involved:
        mapping[community] = find(community)
    return mapping


def _applied_gain(
    graph: MultiGraph, before: Partition, after: Partition
) -> float:
    """Total-modularity difference realised by one iteration."""
    from repro.community.modularity import total_modularity

    return total_modularity(graph, after) - total_modularity(graph, before)

"""The paper's parallel modularity-maximisation algorithm (§4.2.2, Fig. 3–4).

Each iteration runs the three steps of §4.2.2:

1. **Neighbourhood creation** — for every community, list the connected
   communities whose union would increase total modularity (ΔMod > 0).
2. **Neighbourhood separation** — every community keeps only its *closest*
   neighbourhood: the candidate with the largest ΔMod (ties broken on the
   smaller community name; the paper leaves ties unspecified).
3. **Aggregation** — communities in the same neighbourhood merge.

Step 3 admits three readings, all implemented (``ParallelConfig.merge_mode``):

* ``"pointer"`` (default) — the literal Figure 4 semantics: every
  community's members are relabelled to the chosen target in one jump.
  Two communities that choose each other swap labels without structurally
  changing, so convergence is detected on partition *structure*.
* ``"matching"`` — pointer jumps, but a *mutual* choice (A picks B and B
  picks A) merges the pair under the smaller name (the Figure 3 picture).
* ``"components"`` — the whole functional graph of choices is collapsed
  with union-find, so chains of choices merge in one iteration.  Fastest
  convergence, coarsest output.

``"pointer"`` is the default because it is both the literal reading of the
published SQL *and* the one that reproduces the paper's observed behaviour:
on our synthetic graphs it converges in 7–9 iterations with the Figure 5
count profile and yields the Figure 6 size distribution (modal bucket 2–10
queries, no giant communities), whereas running the merge process to
ΔMod-exhaustion (``matching``/``components``) hits modularity's well-known
resolution limit and collapses whole domains into giants — communities far
too coarse for query expansion.  The mutual-choice stalemate of the pointer
semantics acts as an implicit regulariser; see the ABL1 bench for numbers.

Both modes are pure Python over dict-based community statistics; the
relational execution of the same algorithm lives in
:mod:`repro.community.sql_runner` and is cross-checked against
``"pointer"`` mode in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.community.modularity import CommunityStats, delta_modularity
from repro.community.partition import Partition
from repro.simgraph.graph import InternedGraph, MultiGraph


@dataclass(frozen=True)
class ParallelConfig:
    """Knobs of the parallel detector."""

    max_iterations: int = 30
    merge_mode: str = "pointer"  # "pointer" | "matching" | "components"
    #: stop early when the community count reaches this floor (the paper's
    #: "satisfying number of communities" criterion); 0 disables it
    target_communities: int = 0

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.merge_mode not in ("matching", "components", "pointer"):
            raise ValueError(
                f"merge_mode must be 'matching', 'components' or 'pointer', "
                f"got {self.merge_mode!r}"
            )
        if self.target_communities < 0:
            raise ValueError("target_communities must be >= 0")


@dataclass
class IterationTrace:
    """Per-iteration record — the series plotted in Figure 5."""

    iteration: int
    communities: int
    merges: int
    modularity_gain: float


class ParallelCommunityDetector:
    """Runs the parallel algorithm to convergence."""

    def __init__(
        self, graph: MultiGraph, config: ParallelConfig | None = None
    ) -> None:
        self.graph = graph
        self.config = config or ParallelConfig()
        self.history: list[IterationTrace] = []

    # -- single iteration ------------------------------------------------------

    def choose_targets(self, partition: Partition) -> dict[str, str]:
        """Steps 1–2: each community's best positive-gain neighbour."""
        stats = CommunityStats.from_partition(self.graph, partition)
        best: dict[str, tuple[float, str]] = {}
        for (c1, c2), between in stats.between_edges.items():
            gain = delta_modularity(
                between,
                stats.degree_sum.get(c1, 0),
                stats.degree_sum.get(c2, 0),
                stats.total_edges,
            )
            if gain <= 0:
                continue
            for source, target in ((c1, c2), (c2, c1)):
                incumbent = best.get(source)
                candidate = (gain, target)
                if incumbent is None:
                    best[source] = candidate
                elif candidate[0] > incumbent[0] or (
                    candidate[0] == incumbent[0] and candidate[1] < incumbent[1]
                ):
                    best[source] = candidate
        return {source: target for source, (_, target) in best.items()}

    def apply_targets(
        self, partition: Partition, targets: dict[str, str]
    ) -> Partition:
        """Step 3 under the configured merge mode."""
        if self.config.merge_mode == "pointer":
            return partition.relabel(targets)
        if self.config.merge_mode == "matching":
            return partition.relabel(_resolve_mutual(targets))
        return partition.relabel(_collapse_components(targets))

    # -- full run ------------------------------------------------------------

    def run(self, initial: Partition | None = None) -> Partition:
        """Iterate to convergence; populates :attr:`history` (Figure 5).

        The loop runs entirely on the graph's interned integer-id view —
        int-keyed community statistics instead of string dicts with
        per-iteration copies.  Ids are assigned in sorted-label order, so
        every smaller-name tie-break behaves exactly as it does in the
        string-space :meth:`choose_targets`/:meth:`apply_targets` pair
        (which remain the executable single-step specification and are
        cross-checked against this loop in the tests).  Labels reappear
        only in the final :class:`Partition`.
        """
        interned = self.graph.interned()
        labels = interned.labels
        if not initial:
            comm_labels: tuple[str, ...] = labels
            comm_of = list(range(len(labels)))
        else:
            initial.validate_covers(self.graph)
            comm_labels = tuple(sorted(set(initial.assignment.values())))
            comm_index = {name: i for i, name in enumerate(comm_labels)}
            comm_of = [
                comm_index[initial.community_of(label)] for label in labels
            ]
        comm_of, self.history = _run_pointer_loop(
            interned, comm_of, self.config
        )
        return Partition(
            {
                labels[vertex]: comm_labels[community]
                for vertex, community in enumerate(comm_of)
            }
        )

    def community_counts(self) -> list[int]:
        """Community count per iteration — the Figure 5 series."""
        return [trace.communities for trace in self.history]


def _resolve_mutual(targets: dict[str, str]) -> dict[str, str]:
    """Pointer jumps, with mutual choices merged under the smaller name.

    A pair that elects each other would swap labels forever under pure
    pointer semantics; §4.2.2 step 3 clearly intends them to aggregate.
    """
    mapping: dict[str, str] = {}
    for source, target in targets.items():
        if targets.get(target) == source:
            mapping[source] = min(source, target)
        else:
            mapping[source] = target
    return mapping


def _collapse_components(targets: dict[str, str]) -> dict[str, str]:
    """Union-find over the functional graph of merge choices.

    Every weakly connected component of ``{c → targets[c]}`` becomes one
    community named after its lexicographically smallest member, which
    keeps runs deterministic.
    """
    parent: dict[str, str] = {}

    def find(node: str) -> str:
        root = node
        while parent.get(root, root) != root:
            root = parent[root]
        while parent.get(node, node) != node:  # path compression
            parent[node], node = root, parent[node]
        return root

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            # attach the larger name under the smaller for determinism
            if ra < rb:
                parent[rb] = ra
            else:
                parent[ra] = rb

    for source, target in targets.items():
        union(source, target)

    mapping: dict[str, str] = {}
    involved = set(targets) | set(targets.values())
    for community in involved:
        mapping[community] = find(community)
    return mapping


def _applied_gain(
    graph: MultiGraph, before: Partition, after: Partition
) -> float:
    """Total-modularity difference realised by one iteration."""
    from repro.community.modularity import total_modularity

    return total_modularity(graph, after) - total_modularity(graph, before)


# -- interned-id inner loops ---------------------------------------------------


def _apply_merge_mode(
    targets: dict[int, int], merge_mode: str
) -> dict[int, int]:
    """Step 3's community mapping under one of the three readings."""
    if merge_mode == "pointer":
        return targets
    if merge_mode == "matching":
        return _resolve_mutual(targets)
    return _collapse_components(targets)


def _run_pointer_loop(
    interned: InternedGraph,
    comm_of: list[int],
    config: ParallelConfig,
) -> tuple[list[int], list[IterationTrace]]:
    """The §4.2.2 iteration to convergence, over any interned view.

    Shared by :class:`ParallelCommunityDetector` (whole graph) and the
    incremental clusterer (a dirty-region sub-view carrying the union
    graph's ``m_G``), so there is exactly one executable copy of the
    loop's convergence and trace semantics.
    """
    history = [
        IterationTrace(
            iteration=0,
            communities=len(set(comm_of)),
            merges=0,
            modularity_gain=0.0,
        )
    ]
    for iteration in range(1, config.max_iterations + 1):
        targets = _choose_targets_ids(interned, comm_of)
        if not targets:
            break
        mapping = _apply_merge_mode(targets, config.merge_mode)
        next_comm_of = [mapping.get(c, c) for c in comm_of]
        gain = _modularity_ids(interned, next_comm_of) - _modularity_ids(
            interned, comm_of
        )
        count = len(set(next_comm_of))
        merges = len(set(comm_of)) - count
        history.append(
            IterationTrace(
                iteration=iteration,
                communities=count,
                merges=merges,
                modularity_gain=gain,
            )
        )
        converged = _canonical_ids(comm_of) == _canonical_ids(next_comm_of)
        comm_of = next_comm_of
        if converged:
            break
        if (
            config.target_communities
            and count <= config.target_communities
        ):
            break
    return comm_of, history


def _choose_targets_ids(
    interned: InternedGraph, comm_of: list[int]
) -> dict[int, int]:
    """Steps 1–2 on integer community ids (id order == label order)."""
    degree_sum: dict[int, int] = {}
    for vertex, degree in enumerate(interned.degrees):
        community = comm_of[vertex]
        degree_sum[community] = degree_sum.get(community, 0) + degree
    between: dict[tuple[int, int], int] = {}
    for u, neighbours in enumerate(interned.adjacency):
        cu = comm_of[u]
        for v, multiplicity in neighbours.items():
            if u < v:
                cv = comm_of[v]
                if cu != cv:
                    key = (cu, cv) if cu < cv else (cv, cu)
                    between[key] = between.get(key, 0) + multiplicity
    total_edges = interned.total_edges
    best: dict[int, tuple[float, int]] = {}
    for (c1, c2), links in between.items():
        gain = delta_modularity(
            links, degree_sum.get(c1, 0), degree_sum.get(c2, 0), total_edges
        )
        if gain <= 0:
            continue
        for source, target in ((c1, c2), (c2, c1)):
            incumbent = best.get(source)
            if (
                incumbent is None
                or gain > incumbent[0]
                or (gain == incumbent[0] and target < incumbent[1])
            ):
                best[source] = (gain, target)
    return {source: target for source, (_, target) in best.items()}


def _modularity_ids(interned: InternedGraph, comm_of: list[int]) -> float:
    """Eq. 2 on integer ids; float-sum order matches the string path."""
    total_edges = interned.total_edges
    if total_edges == 0:
        return 0.0
    degree_sum: dict[int, int] = {}
    for vertex, degree in enumerate(interned.degrees):
        community = comm_of[vertex]
        degree_sum[community] = degree_sum.get(community, 0) + degree
    internal: dict[int, int] = {}
    for u, neighbours in enumerate(interned.adjacency):
        cu = comm_of[u]
        for v, multiplicity in neighbours.items():
            if u < v and comm_of[v] == cu:
                internal[cu] = internal.get(cu, 0) + multiplicity
    total_degree = 2 * total_edges
    return sum(
        internal.get(community, 0)
        - total_edges * (degree_sum[community] / total_degree) ** 2
        for community in sorted(degree_sum)
    )


def _canonical_ids(comm_of: list[int]) -> list[int]:
    """Label-independent structure: each vertex mapped to the smallest
    vertex id sharing its community (cheap :meth:`Partition.same_structure`)."""
    first_member: dict[int, int] = {}
    return [
        first_member.setdefault(community, vertex)
        for vertex, community in enumerate(comm_of)
    ]

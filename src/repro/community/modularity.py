"""Modularity arithmetic, equations 1–9 of the paper.

The paper works with the *unnormalised* modularity

    Mod(C)   = m_C − m_G · (D_C / D_G)²                       (Eq. 6)

and the pairwise merge gain with its computational shortcut

    ΔMod     = m_{1↔2} − D_1 · D_2 / (2 m_G)                  (Eq. 8–9)

where ``m_C`` counts unit edges inside C, ``D_C`` sums member degrees,
``m_G`` is the graph's unit-edge total and ``D_G = 2 m_G``.  A hypothesis
test asserts the shortcut equals the direct three-term form (Eq. 7) for
random graphs and partitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.community.partition import Partition
from repro.simgraph.graph import MultiGraph


@dataclass
class CommunityStats:
    """Per-community quantities the algorithms maintain between iterations."""

    #: D_C — sum of member degrees
    degree_sum: dict[str, int] = field(default_factory=dict)
    #: m_C — unit edges with both endpoints inside the community
    internal_edges: dict[str, int] = field(default_factory=dict)
    #: m_{1↔2} — unit edges between two communities, keyed by sorted pair
    between_edges: dict[tuple[str, str], int] = field(default_factory=dict)
    #: m_G
    total_edges: int = 0

    @classmethod
    def from_partition(cls, graph: MultiGraph, partition: Partition) -> "CommunityStats":
        """One O(V + E) pass computing every quantity.

        Reads the graph through its cached zero-copy accessors — the
        per-iteration sorts the seed paid here are gone.
        """
        stats = cls(total_edges=graph.total_edges)
        for vertex in graph.sorted_vertices():
            community = partition.community_of(vertex)
            stats.degree_sum[community] = (
                stats.degree_sum.get(community, 0) + graph.degree(vertex)
            )
        for community in partition.communities():
            stats.internal_edges.setdefault(community, 0)
            stats.degree_sum.setdefault(community, 0)
        for u, v, multiplicity in graph.sorted_edges():
            cu, cv = partition.community_of(u), partition.community_of(v)
            if cu == cv:
                stats.internal_edges[cu] = (
                    stats.internal_edges.get(cu, 0) + multiplicity
                )
            else:
                key = (cu, cv) if cu < cv else (cv, cu)
                stats.between_edges[key] = (
                    stats.between_edges.get(key, 0) + multiplicity
                )
        return stats

    def between(self, c1: str, c2: str) -> int:
        key = (c1, c2) if c1 < c2 else (c2, c1)
        return self.between_edges.get(key, 0)


def community_modularity(
    internal_edges: int, degree_sum: int, total_edges: int
) -> float:
    """Eq. 6: ``Mod(C) = m_C − m_G (D_C / D_G)²``; 0 for an empty graph."""
    if total_edges == 0:
        return 0.0
    total_degree = 2 * total_edges
    return internal_edges - total_edges * (degree_sum / total_degree) ** 2


def total_modularity(graph: MultiGraph, partition: Partition) -> float:
    """Eq. 2: the sum of community modularities."""
    stats = CommunityStats.from_partition(graph, partition)
    return sum(
        community_modularity(
            stats.internal_edges.get(community, 0),
            stats.degree_sum.get(community, 0),
            stats.total_edges,
        )
        for community in partition.communities()
    )


def delta_modularity(
    between_edges: int, degree_sum_1: int, degree_sum_2: int, total_edges: int
) -> float:
    """Eq. 8–9 shortcut: ``ΔMod = m_{1↔2} − D_1 D_2 / (2 m_G)``."""
    if total_edges == 0:
        return 0.0
    return between_edges - (degree_sum_1 * degree_sum_2) / (2 * total_edges)


def delta_modularity_direct(
    graph: MultiGraph, partition: Partition, c1: str, c2: str
) -> float:
    """Eq. 7 three-term form: ``Mod(C1 ∪ C2) − Mod(C1) − Mod(C2)``.

    Exists for verification only; quadratic-ish and recomputes stats.
    """
    if c1 == c2:
        raise ValueError("delta modularity requires two distinct communities")
    stats = CommunityStats.from_partition(graph, partition)
    m1 = stats.internal_edges.get(c1, 0)
    m2 = stats.internal_edges.get(c2, 0)
    d1 = stats.degree_sum.get(c1, 0)
    d2 = stats.degree_sum.get(c2, 0)
    between = stats.between(c1, c2)
    merged = community_modularity(m1 + m2 + between, d1 + d2, stats.total_edges)
    return (
        merged
        - community_modularity(m1, d1, stats.total_edges)
        - community_modularity(m2, d2, stats.total_edges)
    )

"""S5 — Community detection over the term-similarity graph (§4.2).

Implements the paper's modularity arithmetic (Eq. 1–9), its parallel
SQL-expressible merge algorithm (Figures 3–4), the classic sequential
baselines (Newman's greedy CNM), and the "other paradigms" that §8 names
as future work (Louvain, label propagation) for the ablation bench.

Two implementations of the paper's algorithm exist and are cross-checked
in tests: a pure-Python fast path (:mod:`repro.community.parallel`) and a
literal SQL run of Figure 4 on the relational engine
(:mod:`repro.community.sql_runner`).
"""

from repro.community.partition import Partition, singleton_partition
from repro.community.modularity import (
    CommunityStats,
    community_modularity,
    delta_modularity,
    delta_modularity_direct,
    total_modularity,
)
from repro.community.parallel import (
    IterationTrace,
    ParallelCommunityDetector,
    ParallelConfig,
)
from repro.community.incremental import (
    IncrementalClusterer,
    IncrementalClusteringConfig,
    IncrementalOutcome,
)
from repro.community.sql_runner import SqlCommunityDetector, FIGURE4_SQL
from repro.community.newman import NewmanGreedyDetector
from repro.community.louvain import LouvainDetector
from repro.community.labelprop import LabelPropagationDetector
from repro.community.sizes import SizeBucket, size_distribution
from repro.community.neighbours import closest_communities
from repro.community.quality import normalized_mutual_information, purity

__all__ = [
    "CommunityStats",
    "FIGURE4_SQL",
    "IncrementalClusterer",
    "IncrementalClusteringConfig",
    "IncrementalOutcome",
    "IterationTrace",
    "LabelPropagationDetector",
    "LouvainDetector",
    "NewmanGreedyDetector",
    "ParallelCommunityDetector",
    "ParallelConfig",
    "Partition",
    "SizeBucket",
    "SqlCommunityDetector",
    "closest_communities",
    "community_modularity",
    "delta_modularity",
    "delta_modularity_direct",
    "normalized_mutual_information",
    "purity",
    "singleton_partition",
    "size_distribution",
    "total_modularity",
]

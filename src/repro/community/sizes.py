"""Community-size distribution — the Figure 6 histogram.

The paper buckets community sizes as 1 (orphans), 2–10, 10–50 and "more
than 50" and reports ≈20% orphans, ≈60% of communities holding 2–10
queries, and very few above 50.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.community.partition import Partition

#: Figure 6's bucket boundaries: label, inclusive low, inclusive high.
FIGURE6_BUCKETS: tuple[tuple[str, int, int], ...] = (
    ("1", 1, 1),
    ("2 to 10", 2, 10),
    ("10 to 50", 11, 50),
    ("More than 50", 51, 10**9),
)


@dataclass(frozen=True)
class SizeBucket:
    label: str
    low: int
    high: int
    count: int
    fraction: float


def size_distribution(partition: Partition) -> list[SizeBucket]:
    """Bucket the partition's community sizes Figure-6 style."""
    sizes = partition.sizes()
    total = len(sizes)
    buckets: list[SizeBucket] = []
    for label, low, high in FIGURE6_BUCKETS:
        count = sum(1 for size in sizes if low <= size <= high)
        fraction = count / total if total else 0.0
        buckets.append(
            SizeBucket(
                label=label, low=low, high=high, count=count, fraction=fraction
            )
        )
    return buckets


def orphan_fraction(partition: Partition) -> float:
    """Fraction of communities of size 1."""
    sizes = partition.sizes()
    if not sizes:
        return 0.0
    return sum(1 for size in sizes if size == 1) / len(sizes)

"""Label propagation — the cheapest "other paradigm" for ablation ABL1.

Asynchronous weighted label propagation (Raghavan et al. 2007): every
vertex repeatedly adopts the label carrying the most incident edge weight.
Vertex visit order is shuffled per sweep from a seeded RNG; ties break on
the smaller label, so a (seed, graph) pair is fully deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.community.partition import Partition
from repro.simgraph.graph import MultiGraph


@dataclass(frozen=True)
class LabelPropagationConfig:
    seed: int = 2016
    max_sweeps: int = 50

    def __post_init__(self) -> None:
        if self.max_sweeps < 1:
            raise ValueError("max_sweeps must be >= 1")


class LabelPropagationDetector:
    def __init__(
        self, graph: MultiGraph, config: LabelPropagationConfig | None = None
    ) -> None:
        self.graph = graph
        self.config = config or LabelPropagationConfig()
        self.sweeps_run = 0

    def run(self) -> Partition:
        rng = random.Random(self.config.seed)
        labels = {vertex: vertex for vertex in self.graph.vertices()}
        order = list(labels)
        self.sweeps_run = 0
        for _ in range(self.config.max_sweeps):
            self.sweeps_run += 1
            rng.shuffle(order)
            changed = False
            for vertex in order:
                tally: dict[str, int] = {}
                for neighbour, multiplicity in self.graph.neighbours(vertex):
                    label = labels[neighbour]
                    tally[label] = tally.get(label, 0) + multiplicity
                if not tally:
                    continue
                best_label = min(
                    tally, key=lambda label: (-tally[label], label)
                )
                if best_label != labels[vertex]:
                    labels[vertex] = best_label
                    changed = True
            if not changed:
                break
        return Partition(labels)

"""Incremental partition maintenance for the delta-refresh pipeline.

A delta batch of impressions touches a handful of similarity-graph
vertices; re-running the §4.2.2 detector over the whole graph to absorb
them is the batch reading of a fundamentally local event.  This module
applies **seed-and-local moves**: the previous partition is kept for
every community the delta cannot have affected, and only the *dirty
region* — the connected components containing a touched vertex — is
re-clustered, from singletons, with the parallel pointer algorithm.

Two properties keep this honest:

* **Global arithmetic.**  ΔMod (Eq. 8–9) depends on the graph-wide
  ``m_G``; the local run therefore injects the *union graph's* total
  edge count into its restricted view, so every merge decision inside
  the dirty region is computed with exactly the numbers a full run on
  the union graph would use.
* **An exactness escape hatch.**  Merge decisions *outside* the dirty
  region also shift when ``m_G`` moves, so after splicing the local
  result back, one full-width pointer step verifies the combined
  partition is a fixed point of the global algorithm.  If it is not —
  or if ``m_G`` shrank (the check can spot missing merges but never
  needed splits), or the churn (dirty vertices / all vertices) exceeds
  the configured threshold, or a global stopping knob like
  ``target_communities`` is in play — the incremental path falls back
  to a full re-cluster, which is exact by determinism.

Two honest limits of the local path, by design:

* The fixed-point check is necessary, not sufficient: converged points
  of the pointer algorithm are not unique, so a grown ``m_G`` that
  flips a gain *ordering* inside a clean component could in principle
  leave the splice at a different fixed point than a from-singletons
  run.  No such divergence has surfaced across the randomized property
  tests (join-level, graph-level and pipeline-level, both regimes);
  the equivalence guarantee is *property-tested and guarded*, not
  theorem-proved.  ``churn_threshold=0.0`` buys certainty at full-
  recluster cost.
* The dirty region is the **component closure** of the touched
  vertices — the unit for which degree sums and adjacency stay
  self-contained.  On a store whose similarity graph is one giant
  component (the dense standard-scale benchmark world), that closure
  is most of the graph and the churn fallback runs a full re-cluster —
  which is the right call there anyway: the full detector costs ~30 ms
  against a ~2 s batch rebuild, and the delta path's wins come from
  ingest and the join.  The local path pays off on many-component
  domain stores, where it re-clusters only the islands a delta touched.

Labels of a spliced partition are canonicalised to each community's
smallest member, so locally-rebuilt communities can never collide with
kept ones (and domain ids derived from them are stable across rebuild
paths).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.community.parallel import (
    IterationTrace,
    ParallelCommunityDetector,
    ParallelConfig,
    _apply_merge_mode,
    _canonical_ids,
    _choose_targets_ids,
    _run_pointer_loop,
)
from repro.community.partition import Partition
from repro.simgraph.graph import InternedGraph, MultiGraph


@dataclass(frozen=True)
class IncrementalClusteringConfig:
    """Knobs of the incremental partition update."""

    #: dirty-vertex fraction beyond which a full re-cluster is cheaper
    #: (and exact); 0.0 forces the full path on any change
    churn_threshold: float = 0.25
    #: run one global pointer step over the spliced partition and fall
    #: back to a full re-cluster unless it is a fixed point
    verify_fixed_point: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.churn_threshold <= 1.0:
            raise ValueError(
                f"churn_threshold must be in [0,1], got {self.churn_threshold}"
            )


@dataclass
class IncrementalOutcome:
    """One incremental update, with its provenance."""

    partition: Partition
    #: "unchanged" | "local" | "full"
    mode: str
    #: why the full path ran (None on the local/unchanged paths):
    #: "churn" | "target-communities" | "m-shrank" | "unstable"
    fallback_reason: str | None
    #: dirty vertices / graph vertices
    churn: float
    dirty_vertices: int
    #: pointer-iteration trace of whichever loop ran (dirty region only
    #: on the local path)
    history: list[IterationTrace] = field(default_factory=list)


class IncrementalClusterer:
    """Maintains a partition across graph deltas (stateless between calls)."""

    def __init__(
        self,
        config: ParallelConfig | None = None,
        incremental: IncrementalClusteringConfig | None = None,
    ) -> None:
        self.config = config or ParallelConfig()
        self.incremental = incremental or IncrementalClusteringConfig()

    # -- the one entry point ----------------------------------------------

    def update(
        self,
        graph: MultiGraph,
        previous: Partition,
        touched: set[str],
        previous_total_edges: int | None = None,
    ) -> IncrementalOutcome:
        """Absorb a delta: ``graph`` is the union graph, ``touched`` the
        vertices whose incident (multi-)edges or existence changed.

        Every touched vertex must be a vertex of ``graph``; every
        untouched graph vertex must be covered by ``previous``.
        ``previous_total_edges`` (the pre-delta ``m_G``) arms one more
        fallback: see below.
        """
        if not touched:
            return IncrementalOutcome(
                partition=previous,
                mode="unchanged",
                fallback_reason=None,
                churn=0.0,
                dirty_vertices=0,
            )
        interned = graph.interned()
        index = interned.index
        missing = [vertex for vertex in touched if vertex not in index]
        if missing:
            raise ValueError(
                f"touched vertices not in graph: {sorted(missing)[:5]}"
            )
        if self.config.target_communities:
            # a global community-count floor cannot be evaluated locally
            return self._full(graph, touched, reason="target-communities")
        if (
            previous_total_edges is not None
            and interned.total_edges < previous_total_edges
        ):
            # a shrinking m_G makes every merge *less* attractive
            # (ΔMod = m_{1↔2} − D1·D2/(2 m_G)), so clean-region merges
            # decided under the larger old m_G may no longer be ones a
            # full run would make — and the fixed-point check below can
            # only detect missing merges, never splits.  Fall back.
            return self._full(graph, touched, reason="m-shrank")

        dirty_ids = self._component_closure(interned, touched)
        churn = len(dirty_ids) / interned.vertex_count
        if churn > self.incremental.churn_threshold:
            return self._full(graph, touched, reason="churn", churn=churn)

        dirty_labels = {interned.labels[vertex] for vertex in dirty_ids}
        uncovered = [
            label
            for label in interned.labels
            if label not in dirty_labels and label not in previous.assignment
        ]
        if uncovered:
            raise ValueError(
                "previous partition does not cover the clean region: "
                f"{sorted(uncovered)[:5]}"
            )

        sub = self._sub_interned(interned, sorted(dirty_ids))
        local_assignment, history = self._pointer_loop(sub)

        assignment = {
            label: community
            for label, community in previous.assignment.items()
            if label not in dirty_labels and label in index
        }
        assignment.update(local_assignment)
        partition = _canonical_labels(Partition(assignment))

        if self.incremental.verify_fixed_point and not self._is_fixed_point(
            interned, partition
        ):
            return self._full(graph, touched, reason="unstable", churn=churn)

        return IncrementalOutcome(
            partition=partition,
            mode="local",
            fallback_reason=None,
            churn=churn,
            dirty_vertices=len(dirty_ids),
            history=history,
        )

    # -- fallback ----------------------------------------------------------

    def _full(
        self,
        graph: MultiGraph,
        touched: set[str],
        reason: str,
        churn: float | None = None,
    ) -> IncrementalOutcome:
        detector = ParallelCommunityDetector(graph, self.config)
        partition = detector.run()
        return IncrementalOutcome(
            partition=partition,
            mode="full",
            fallback_reason=reason,
            churn=(
                churn
                if churn is not None
                else len(touched) / max(graph.vertex_count, 1)
            ),
            dirty_vertices=len(touched),
            history=detector.history,
        )

    # -- dirty region ------------------------------------------------------

    @staticmethod
    def _component_closure(
        interned: InternedGraph, touched: set[str]
    ) -> set[int]:
        """Ids of every vertex connected to a touched vertex (BFS)."""
        seen: set[int] = set()
        stack = [interned.index[vertex] for vertex in touched]
        seen.update(stack)
        while stack:
            vertex = stack.pop()
            for neighbour in interned.adjacency[vertex]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    stack.append(neighbour)
        return seen

    @staticmethod
    def _sub_interned(
        interned: InternedGraph, dirty_sorted: list[int]
    ) -> InternedGraph:
        """The dirty region as its own interned graph — with global m_G.

        The dirty region is component-closed, so every neighbour of a
        dirty vertex is dirty and degrees carry over unchanged.  The
        ``total_edges`` is deliberately the *union graph's*: ΔMod's
        denominator must match what a full run would use.
        """
        labels = tuple(interned.labels[vertex] for vertex in dirty_sorted)
        remap = {old: new for new, old in enumerate(dirty_sorted)}
        adjacency = tuple(
            {
                remap[neighbour]: multiplicity
                for neighbour, multiplicity in interned.adjacency[old].items()
            }
            for old in dirty_sorted
        )
        return InternedGraph(
            labels=labels,
            index={label: i for i, label in enumerate(labels)},
            adjacency=adjacency,
            degrees=tuple(interned.degrees[old] for old in dirty_sorted),
            total_edges=interned.total_edges,
        )

    # -- the local pointer loop -------------------------------------------

    def _pointer_loop(
        self, sub: InternedGraph
    ) -> tuple[dict[str, str], list[IterationTrace]]:
        """§4.2.2 from singletons over the dirty region (global m_G)."""
        comm_of, history = _run_pointer_loop(
            sub, list(range(sub.vertex_count)), self.config
        )
        return (
            {
                sub.labels[vertex]: sub.labels[community]
                for vertex, community in enumerate(comm_of)
            },
            history,
        )

    # -- the escape hatch --------------------------------------------------

    def _is_fixed_point(
        self, interned: InternedGraph, partition: Partition
    ) -> bool:
        """Would one global pointer step leave the structure unchanged?"""
        comm_labels = tuple(sorted(set(partition.assignment.values())))
        comm_index = {name: i for i, name in enumerate(comm_labels)}
        comm_of = [
            comm_index[partition.assignment[label]]
            for label in interned.labels
        ]
        targets = _choose_targets_ids(interned, comm_of)
        if not targets:
            return True
        mapping = _apply_merge_mode(targets, self.config.merge_mode)
        next_comm_of = [mapping.get(c, c) for c in comm_of]
        return _canonical_ids(next_comm_of) == _canonical_ids(comm_of)


def _canonical_labels(partition: Partition) -> Partition:
    """Relabel every community to its smallest member (collision-free)."""
    return partition.relabel(
        {
            community: min(partition.members(community))
            for community in partition.communities()
        }
    )

"""Closest communities of a community — the Figure 7 view.

Figure 7 plots the community containing "49ers" together with its three
*closest* communities.  Closeness between two communities is their merge
gain's link component relative to size — we rank by total inter-community
edge weight, which is what the figure's layout visibly encodes (thick
bundles of edges between the dark-blue and neighbouring groups).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.community.modularity import CommunityStats
from repro.community.partition import Partition
from repro.simgraph.graph import MultiGraph


@dataclass(frozen=True)
class CommunityNeighbour:
    """One nearby community and its connection strength."""

    community: str
    members: tuple[str, ...]
    link_weight: int


def closest_communities(
    graph: MultiGraph,
    partition: Partition,
    seed_term: str,
    count: int = 3,
) -> tuple[tuple[str, ...], list[CommunityNeighbour]]:
    """Return (members of seed community, its ``count`` closest communities).

    Raises ``KeyError`` when ``seed_term`` is not a graph vertex.
    """
    home = partition.community_of(seed_term)
    stats = CommunityStats.from_partition(graph, partition)
    links: dict[str, int] = {}
    for (c1, c2), weight in stats.between_edges.items():
        if c1 == home:
            links[c2] = links.get(c2, 0) + weight
        elif c2 == home:
            links[c1] = links.get(c1, 0) + weight
    ranked = sorted(links.items(), key=lambda item: (-item[1], item[0]))
    neighbours = [
        CommunityNeighbour(
            community=community,
            members=tuple(sorted(partition.members(community))),
            link_weight=weight,
        )
        for community, weight in ranked[:count]
    ]
    return tuple(sorted(partition.members(home))), neighbours

"""Partitions: vertex → community assignments with validation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.simgraph.graph import MultiGraph


@dataclass
class Partition:
    """A hard partition of a vertex set into named communities."""

    assignment: dict[str, str]
    _members: dict[str, set[str]] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._members = {}
        for vertex, community in self.assignment.items():
            self._members.setdefault(community, set()).add(vertex)

    # -- accessors -------------------------------------------------------

    def community_of(self, vertex: str) -> str:
        try:
            return self.assignment[vertex]
        except KeyError:
            raise KeyError(f"vertex {vertex!r} is not assigned") from None

    def members(self, community: str) -> set[str]:
        try:
            return set(self._members[community])
        except KeyError:
            raise KeyError(f"unknown community {community!r}") from None

    def communities(self) -> list[str]:
        return sorted(self._members)

    def community_count(self) -> int:
        return len(self._members)

    def sizes(self) -> list[int]:
        return sorted(len(members) for members in self._members.values())

    def vertices(self) -> Iterator[str]:
        return iter(self.assignment)

    def __len__(self) -> int:
        return len(self._members)

    # -- structure comparison ----------------------------------------------

    def as_frozen(self) -> frozenset[frozenset[str]]:
        """Label-independent structure: the set of member sets.

        Pointer-style iterations can swap two community labels without
        changing the partition; convergence checks therefore compare this
        form, not the raw assignment (DESIGN.md §6 item 4).
        """
        return frozenset(
            frozenset(members) for members in self._members.values()
        )

    def same_structure(self, other: "Partition") -> bool:
        return self.as_frozen() == other.as_frozen()

    # -- derived partitions ---------------------------------------------------

    def relabel(self, mapping: dict[str, str]) -> "Partition":
        """Map community names; unmapped communities keep their name."""
        return Partition(
            {
                vertex: mapping.get(community, community)
                for vertex, community in self.assignment.items()
            }
        )

    def validate_covers(self, graph: MultiGraph) -> None:
        """Raise unless this partition covers exactly the graph's vertices."""
        graph_vertices = set(graph.vertices())
        assigned = set(self.assignment)
        if graph_vertices != assigned:
            missing = sorted(graph_vertices - assigned)[:5]
            extra = sorted(assigned - graph_vertices)[:5]
            raise ValueError(
                f"partition does not cover graph: missing={missing} extra={extra}"
            )

    def __repr__(self) -> str:
        return (
            f"Partition(vertices={len(self.assignment)}, "
            f"communities={len(self._members)})"
        )


def singleton_partition(vertices: Iterable[str]) -> Partition:
    """Every vertex in its own community, named after itself (§4.2.2 init)."""
    return Partition({vertex: vertex for vertex in vertices})

"""Figure 4 executed as SQL on the relational engine.

The paper presents the iteration body in pseudo-SQL.  We regularise it into
standard syntax (the original elides join conditions and the final FROM
clause) and run it on :class:`repro.relational.SqlSession`:

* ``graph(query1, query2, weight)`` lists every unit-edge bundle in **both
  directions**, the conventional relational encoding of an undirected
  graph; grouping on ``(comm1, comm2)`` then yields exactly ``m_{1↔2}``.
* ``communities(comm_name, query)`` is the current assignment.
* ``ModulGain(comm1, comm2, links)`` is a scalar UDF closing over the
  per-community degree sums maintained by the driver — Eq. 9 needs only
  ``D_1``, ``D_2`` and ``m_G`` beyond the link count.
* the pseudo-SQL's rename step drops communities that found no positive
  neighbour; we keep them under their current name (the only reading that
  leaves a valid partition), applied by the driver after the argmax query.

The relabelling follows the literal pointer semantics of the figure, so
this runner is cross-checked against ``ParallelCommunityDetector`` in
``merge_mode="pointer"``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.community.modularity import CommunityStats
from repro.community.parallel import IterationTrace, ParallelConfig
from repro.community.partition import Partition, singleton_partition
from repro.relational.engine import Engine
from repro.relational.sql import SqlSession
from repro.relational.table import Table
from repro.simgraph.graph import MultiGraph

#: The regularised Figure 4 iteration body.  ``{...}`` placeholders are not
#: used — the statements run verbatim; only the catalog contents change
#: between iterations.
FIGURE4_SQL = """
links = SELECT c1.comm_name AS comm1, c2.comm_name AS comm2,
               sum(g.weight) AS links
        FROM graph g
        INNER JOIN communities c1 ON g.query1 = c1.query
        INNER JOIN communities c2 ON g.query2 = c2.query
        WHERE c1.comm_name <> c2.comm_name
        GROUP BY c1.comm_name, c2.comm_name;

neighbors = SELECT comm1, comm2, ModulGain(comm1, comm2, links) AS gain
            FROM links
            WHERE ModulGain(comm1, comm2, links) > 0;

partitions = SELECT comm2, argmax(gain, comm1) AS target
             FROM neighbors
             GROUP BY comm2;
"""


@dataclass
class SqlRunStats:
    """Engine-level accounting of one full clustering run."""

    iterations: int = 0
    rows_read: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    shuffled_bytes: int = 0


class SqlCommunityDetector:
    """Drives the Figure 4 SQL to convergence."""

    def __init__(
        self,
        graph: MultiGraph,
        config: ParallelConfig | None = None,
        engine: Engine | None = None,
    ) -> None:
        base = config or ParallelConfig()
        if base.merge_mode != "pointer":
            base = ParallelConfig(
                max_iterations=base.max_iterations,
                merge_mode="pointer",
                target_communities=base.target_communities,
            )
        self.graph = graph
        self.config = base
        self.session = SqlSession(engine or Engine(join_strategy="hash"))
        self.history: list[IterationTrace] = []
        self.run_stats = SqlRunStats()
        self._register_graph()

    def _register_graph(self) -> None:
        rows = []
        for u, v, multiplicity in self.graph.sorted_edges():
            rows.append((u, v, multiplicity))
            rows.append((v, u, multiplicity))
        table = Table.from_dicts(
            ["query1", "query2", "weight"],
            [
                {"query1": q1, "query2": q2, "weight": w}
                for q1, q2, w in rows
            ],
        )
        self.session.register("graph", table)

    def _register_partition(self, partition: Partition) -> None:
        records = [
            {"comm_name": community, "query": vertex}
            for vertex, community in sorted(partition.assignment.items())
        ]
        self.session.register(
            "communities", Table.from_dicts(["comm_name", "query"], records)
        )

    def _register_gain_udf(self, partition: Partition) -> None:
        stats = CommunityStats.from_partition(self.graph, partition)
        total_edges = stats.total_edges
        degree_sum = stats.degree_sum

        def modul_gain(comm1: str, comm2: str, links: int) -> float:
            if total_edges == 0:
                return 0.0
            d1 = degree_sum.get(comm1, 0)
            d2 = degree_sum.get(comm2, 0)
            return links - (d1 * d2) / (2 * total_edges)

        self.session.register_function("ModulGain", modul_gain)

    def iterate_once(self, partition: Partition) -> Partition:
        """One Figure 4 round: SQL body + driver-side rename."""
        self._register_partition(partition)
        self._register_gain_udf(partition)
        result = self.session.run(FIGURE4_SQL)
        targets = {row[0]: row[1] for row in result.rows}
        return partition.relabel(targets)

    def run(self, initial: Partition | None = None) -> Partition:
        partition = initial or singleton_partition(self.graph.vertices())
        partition.validate_covers(self.graph)
        self.history = [
            IterationTrace(0, partition.community_count(), 0, 0.0)
        ]
        for iteration in range(1, self.config.max_iterations + 1):
            next_partition = self.iterate_once(partition)
            merges = (
                partition.community_count() - next_partition.community_count()
            )
            self.history.append(
                IterationTrace(
                    iteration, next_partition.community_count(), merges, 0.0
                )
            )
            converged = partition.same_structure(next_partition)
            partition = next_partition
            if converged:
                break
        engine_stats = self.session.engine.stats
        self.run_stats = SqlRunStats(
            iterations=len(self.history) - 1,
            rows_read=engine_stats.rows_read,
            bytes_read=engine_stats.bytes_read,
            bytes_written=engine_stats.bytes_written,
            shuffled_bytes=engine_stats.shuffled_bytes,
        )
        return partition

    def community_counts(self) -> list[int]:
        return [trace.communities for trace in self.history]

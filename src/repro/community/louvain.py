"""Louvain community detection — §8's "different community detection
paradigms" future work, used in the ablation bench ABL1.

Standard two-phase algorithm (Blondel et al. 2008) on integer edge
multiplicities: local moves to the best neighbouring community until no
vertex improves modularity, then aggregation of communities into a
super-graph (with self-loops), repeated until stable.  Deterministic:
vertices are visited in sorted order and ties break on the smaller
community label.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.community.partition import Partition
from repro.simgraph.graph import MultiGraph


@dataclass(frozen=True)
class LouvainConfig:
    max_levels: int = 10
    max_sweeps_per_level: int = 20

    def __post_init__(self) -> None:
        if self.max_levels < 1 or self.max_sweeps_per_level < 1:
            raise ValueError("levels and sweeps must be >= 1")


class LouvainDetector:
    def __init__(self, graph: MultiGraph, config: LouvainConfig | None = None) -> None:
        self.graph = graph
        self.config = config or LouvainConfig()
        self.levels: list[int] = []  # community count after each level

    def run(self) -> Partition:
        """Run on the graph's interned integer-id view.

        ``_one_level``/``_aggregate`` are key-generic; ids are assigned
        in sorted-label order, so visit order and smaller-label
        tie-breaks match the string keys exactly while the inner loops
        hash and compare machine ints.  Level-0 adjacency reuses the
        interned per-vertex dicts without copying (aggregation builds
        fresh super-graph dicts, never mutating the originals).
        """
        interned = self.graph.interned()
        labels = interned.labels
        adjacency: dict[int, dict[int, int]] = {
            vertex: neighbours
            for vertex, neighbours in enumerate(interned.adjacency)
        }

        # mapping from original vertex ids to current-level nodes
        membership = {vertex: vertex for vertex in adjacency}
        self.levels = []

        for _ in range(self.config.max_levels):
            assignment, changed = self._one_level(adjacency)
            self.levels.append(len(set(assignment.values())))
            membership = {
                vertex: assignment[node] for vertex, node in membership.items()
            }
            if not changed:
                break
            adjacency = _aggregate(adjacency, assignment)

        return Partition(
            {
                labels[vertex]: labels[community]
                for vertex, community in membership.items()
            }
        )

    def _one_level(
        self, adjacency: dict[int, dict[int, int]]
    ) -> tuple[dict[int, int], bool]:
        """Local-move phase; returns (assignment, any_move_happened)."""
        two_m = sum(
            sum(weights.values()) for weights in adjacency.values()
        )  # counts each edge twice, self-loops once
        two_m += sum(weights.get(node, 0) for node, weights in adjacency.items())
        if two_m == 0:
            return {node: node for node in adjacency}, False

        node_degree = {
            node: sum(weights.values()) + weights.get(node, 0)
            for node, weights in adjacency.items()
        }
        community = {node: node for node in adjacency}
        community_degree = dict(node_degree)

        moved_any = False
        for _ in range(self.config.max_sweeps_per_level):
            moved_this_sweep = False
            for node in sorted(adjacency):
                home = community[node]
                degree = node_degree[node]
                community_degree[home] -= degree
                # links from node to each neighbouring community
                links: dict[int, int] = {}
                for neighbour, weight in adjacency[node].items():
                    if neighbour == node:
                        continue
                    links[community[neighbour]] = (
                        links.get(community[neighbour], 0) + weight
                    )
                best_community, best_gain = home, 0.0
                for candidate, link_weight in sorted(links.items()):
                    gain = link_weight - community_degree[candidate] * degree / two_m
                    if gain > best_gain or (
                        gain == best_gain
                        and gain > 0
                        and candidate < best_community
                    ):
                        best_community, best_gain = candidate, gain
                community[node] = best_community
                community_degree[best_community] = (
                    community_degree.get(best_community, 0) + degree
                )
                if best_community != home:
                    moved_this_sweep = True
                    moved_any = True
            if not moved_this_sweep:
                break
        return community, moved_any


def _aggregate(
    adjacency: dict[int, dict[int, int]], assignment: dict[int, int]
) -> dict[int, dict[int, int]]:
    """Build the super-graph: communities become nodes, intra-edges self-loops."""
    aggregated: dict[int, dict[int, int]] = {
        community: {} for community in set(assignment.values())
    }
    seen: set[tuple[int, int]] = set()
    for node, weights in adjacency.items():
        for neighbour, weight in weights.items():
            if node == neighbour:
                cu = assignment[node]
                aggregated[cu][cu] = aggregated[cu].get(cu, 0) + weight
                continue
            key = (node, neighbour) if node < neighbour else (neighbour, node)
            if key in seen:
                continue
            seen.add(key)
            cu, cv = assignment[node], assignment[neighbour]
            if cu == cv:
                aggregated[cu][cu] = aggregated[cu].get(cu, 0) + weight
            else:
                aggregated[cu][cv] = aggregated[cu].get(cv, 0) + weight
                aggregated[cv][cu] = aggregated[cv].get(cu, 0) + weight
    return aggregated

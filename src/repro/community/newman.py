"""Newman's sequential greedy heuristic (§4.2.1) — the CNM baseline.

The seminal single-machine algorithm the paper builds on: start from
singletons, repeatedly merge the *globally* best pair (largest ΔMod > 0),
stop when no merge improves modularity or a target community count is
reached.  Implemented with a lazy max-heap: stale entries are skipped by
checking a per-community version counter.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.community.modularity import CommunityStats, delta_modularity
from repro.community.partition import Partition, singleton_partition
from repro.simgraph.graph import MultiGraph


@dataclass(frozen=True)
class NewmanConfig:
    #: stop when this many communities remain (0 = only stop on no-gain)
    target_communities: int = 0
    max_merges: int | None = None

    def __post_init__(self) -> None:
        if self.target_communities < 0:
            raise ValueError("target_communities must be >= 0")


class NewmanGreedyDetector:
    """Greedy pairwise merging with a lazy priority queue."""

    def __init__(self, graph: MultiGraph, config: NewmanConfig | None = None) -> None:
        self.graph = graph
        self.config = config or NewmanConfig()
        self.merge_sequence: list[tuple[str, str, float]] = []

    def run(self, initial: Partition | None = None) -> Partition:
        partition = initial or singleton_partition(self.graph.vertices())
        partition.validate_covers(self.graph)
        stats = CommunityStats.from_partition(self.graph, partition)
        total_edges = stats.total_edges
        degree = dict(stats.degree_sum)
        internal = dict(stats.internal_edges)
        # neighbour maps: community -> {neighbour: between_edges}
        neighbours: dict[str, dict[str, int]] = {c: {} for c in degree}
        for (c1, c2), between in stats.between_edges.items():
            neighbours[c1][c2] = between
            neighbours[c2][c1] = between

        version = {community: 0 for community in degree}
        heap: list[tuple[float, str, str, int, int]] = []

        def push(c1: str, c2: str) -> None:
            gain = delta_modularity(
                neighbours[c1].get(c2, 0), degree[c1], degree[c2], total_edges
            )
            if gain > 0:
                heapq.heappush(
                    heap, (-gain, c1, c2, version[c1], version[c2])
                )

        for (c1, c2) in stats.between_edges:
            push(c1, c2)

        assignment = dict(partition.assignment)
        label_of: dict[str, str] = {c: c for c in degree}
        community_count = len(degree)
        merges_done = 0

        while heap:
            if (
                self.config.target_communities
                and community_count <= self.config.target_communities
            ):
                break
            if (
                self.config.max_merges is not None
                and merges_done >= self.config.max_merges
            ):
                break
            neg_gain, c1, c2, v1, v2 = heapq.heappop(heap)
            if version.get(c1) != v1 or version.get(c2) != v2:
                continue  # stale entry
            # merge c2 into c1 (keep the smaller name for determinism)
            keep, absorb = (c1, c2) if c1 < c2 else (c2, c1)
            self.merge_sequence.append((keep, absorb, -neg_gain))
            between = neighbours[keep].pop(absorb, 0)
            neighbours[absorb].pop(keep, None)
            internal[keep] = (
                internal.get(keep, 0) + internal.get(absorb, 0) + between
            )
            degree[keep] += degree[absorb]
            for other, edges in neighbours[absorb].items():
                neighbours[other].pop(absorb, None)
                neighbours[keep][other] = neighbours[keep].get(other, 0) + edges
                neighbours[other][keep] = neighbours[keep][other]
            del neighbours[absorb], degree[absorb], internal[absorb]
            del version[absorb]
            version[keep] += 1
            label_of[absorb] = keep
            community_count -= 1
            merges_done += 1
            for other in neighbours[keep]:
                push(*((keep, other) if keep < other else (other, keep)))

        # resolve label chains (absorb → keep may itself be absorbed later)
        def resolve(label: str) -> str:
            seen = []
            while label_of[label] != label:
                seen.append(label)
                label = label_of[label]
            for item in seen:
                label_of[item] = label
            return label

        return Partition(
            {vertex: resolve(community) for vertex, community in assignment.items()}
        )

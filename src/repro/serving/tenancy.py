"""Multi-tenant serving: many corpora behind one process's shared engine.

Tenancy is a first-class dimension of the stack, not a dict of services
bolted on the side.  One :class:`MultiTenantService` owns exactly one of
each expensive shared component — result cache, single-flight table,
micro-batch scheduler, worker pools, and a
:class:`~repro.serving.quotas.FairAdmissionController` — while each
tenant keeps what *must* be tenant-scoped: its own
:class:`~repro.core.esharp.ESharp` system, and with it its own
:class:`~repro.serving.snapshot.SnapshotHolder` whose versions form an
independent monotonic sequence.  Isolation falls out of keying: every
cache/single-flight/batch key is prefixed with the tenant name, so the
same query string on two tenants can never share a cache entry, a
coalescing slot, or a batch leader.

The :class:`TenantRegistry` loads per-tenant artifact directories
lazily (first request warm-starts the tenant) and evicts the
least-recently-used *idle* tenants past ``max_resident``.  Because the
shared cache outlives an eviction and a reload republishes at the same
artifact version, an evicted-then-reloaded tenant comes back with its
cached answers still warm.  Tenants whose in-memory state has diverged
from their artifact directory (a ``refresh_delta`` or a promotion) are
marked dirty and never evicted — their state is not reconstructible
from disk.

The plain single-tenant :class:`~repro.serving.service.ExpertService`
is the trivial one-tenant case of all of this and is byte-identical to
a one-tenant registry (proven by tests).
"""

from __future__ import annotations

import re
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.serving.cache import LRUCache
from repro.serving.errors import (
    ServiceClosedError,
    ServingError,
    TenantStageError,
    UnknownTenantError,
)
from repro.serving.quotas import (
    FairAdmissionController,
    TenantAdmissionStats,
    TenantQuota,
)
from repro.serving.service import (
    DEFAULT_TENANT,
    ExpertService,
    PartialPool,
    ReplicaHealthReport,
    ServedAnswer,
    ServiceConfig,
    ServiceSnapshot,
    ServiceStats,
    TenantHealth,
)
from repro.serving.singleflight import SingleFlight
from repro.serving.workers import MicroBatchScheduler, WorkerPool

#: tenant names are path- and flag-safe identifiers
TENANT_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: a name, its artifact directory, and (optionally) an
    admission quota.  ``quota=None`` means the tenant may use the whole
    shared admission envelope — the right default for a one-tenant
    deployment, and an explicit opt-in to fair-share splitting for
    many-tenant ones."""

    name: str
    artifact_dir: str
    quota: Optional[TenantQuota] = None

    def __post_init__(self) -> None:
        if not TENANT_NAME_PATTERN.match(self.name):
            raise ValueError(
                f"invalid tenant name {self.name!r} (want "
                "[A-Za-z0-9][A-Za-z0-9._-]*, at most 64 chars)"
            )


class _ResidentTenant:
    """One loaded tenant (registry-internal).

    ``pins``/``dirty`` are owned by the registry's lock; the ``system``
    and ``service`` references are immutable after construction.
    """

    __slots__ = ("spec", "system", "service", "pins", "dirty")

    def __init__(self, spec: TenantSpec, system, service) -> None:
        self.spec = spec
        self.system = system
        self.service = service
        self.pins = 0  # guarded-by: TenantRegistry._cond
        self.dirty = False  # guarded-by: TenantRegistry._cond


class TenantRegistry:
    """Lazy loader + LRU evictor for per-tenant serving state.

    ``build_resident(spec)`` (injected by :class:`MultiTenantService`;
    artifact I/O) runs **outside** the registry lock — concurrent first
    requests for the same tenant coalesce on a loading marker instead
    of double-loading, and requests for already-resident tenants are
    never blocked behind another tenant's warm start.
    """

    def __init__(
        self,
        specs: Iterable[TenantSpec],
        *,
        build_resident: Callable[[TenantSpec], Tuple[object, ExpertService]],
        max_resident: Optional[int] = None,
    ) -> None:
        specs = tuple(specs)
        if not specs:
            raise ValueError("a tenant registry needs at least one tenant")
        if max_resident is not None and max_resident < 1:
            raise ValueError(
                f"max_resident must be >= 1, got {max_resident}"
            )
        by_name: "OrderedDict[str, TenantSpec]" = OrderedDict()
        for spec in specs:
            if spec.name in by_name:
                raise ValueError(f"duplicate tenant name {spec.name!r}")
            by_name[spec.name] = spec
        #: immutable after construction
        self._specs = by_name
        self._build_resident = build_resident
        self.max_resident = max_resident
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        #: name -> resident, in LRU order (oldest first)
        self._resident: "OrderedDict[str, _ResidentTenant]" = OrderedDict()  # guarded-by: _cond
        self._loading: set = set()  # guarded-by: _cond
        self._loads = 0  # guarded-by: _cond
        self._evictions = 0  # guarded-by: _cond
        self._closed = False  # guarded-by: _cond

    # -- lookup ------------------------------------------------------------------

    def names(self) -> Tuple[str, ...]:
        return tuple(self._specs)

    def spec(self, tenant: str) -> TenantSpec:
        spec = self._specs.get(tenant)
        if spec is None:
            raise UnknownTenantError(tenant, self._specs)
        return spec

    # -- the pin protocol --------------------------------------------------------

    def acquire(self, tenant: str) -> _ResidentTenant:
        """Pin a tenant resident (loading it first if cold).

        A pinned resident is never evicted; callers pair this with
        :meth:`release` in a ``finally``.
        """
        spec = self.spec(tenant)
        with self._cond:
            while True:
                if self._closed:
                    raise ServiceClosedError("tenant registry is closed")
                resident = self._resident.get(tenant)
                if resident is not None:
                    resident.pins += 1
                    self._resident.move_to_end(tenant)
                    return resident
                if tenant in self._loading:
                    # another request is warm-starting this tenant;
                    # coalesce on it rather than double-loading
                    self._cond.wait()
                    continue
                self._loading.add(tenant)
                break
        # artifact I/O strictly outside the lock: other tenants keep
        # serving (and loading) while this warm start runs
        try:
            system, service = self._build_resident(spec)
        except BaseException:
            with self._cond:
                self._loading.discard(tenant)
                self._cond.notify_all()
            raise
        resident = _ResidentTenant(spec, system, service)
        rejected = False
        victims: List[_ResidentTenant] = []
        with self._cond:
            self._loading.discard(tenant)
            if self._closed:
                rejected = True
            else:
                resident.pins = 1
                self._resident[tenant] = resident
                self._loads += 1
                victims = self._evict_locked()
            self._cond.notify_all()
        for victim in victims:
            victim.service.close()
        if rejected:
            service.close()
            raise ServiceClosedError("tenant registry is closed")
        return resident

    def release(self, resident: _ResidentTenant) -> None:
        with self._cond:
            if resident.pins <= 0:
                raise ServingError(
                    f"release of unpinned tenant {resident.spec.name!r}"
                )
            resident.pins -= 1
            self._cond.notify_all()

    def mark_dirty(self, tenant: str) -> None:
        """Exempt a tenant from eviction: its in-memory generation has
        diverged from its artifact directory (delta refresh, promotion)
        and cannot be reconstructed by a reload."""
        with self._cond:
            resident = self._resident.get(tenant)
            if resident is not None:
                resident.dirty = True

    def _evict_locked(self) -> List[_ResidentTenant]:  # holds: _cond
        """Pop LRU residents past ``max_resident`` (idle + clean only)."""
        if self.max_resident is None:
            return []
        victims: List[_ResidentTenant] = []
        while len(self._resident) > self.max_resident:
            victim_name = None
            for name, resident in self._resident.items():  # oldest first
                if resident.pins > 0 or resident.dirty:
                    continue
                victim_name = name
                break
            if victim_name is None:
                break  # everything evictable is pinned or dirty
            victims.append(self._resident.pop(victim_name))
            self._evictions += 1
        return victims

    # -- observability / lifecycle ----------------------------------------------

    def residents(self) -> Tuple[_ResidentTenant, ...]:
        """A point-in-time snapshot of the loaded tenants (unpinned —
        read-only observers tolerate a concurrent eviction)."""
        with self._cond:
            return tuple(self._resident.values())

    def loaded(self) -> Tuple[str, ...]:
        with self._cond:
            return tuple(self._resident)

    @property
    def loads(self) -> int:
        with self._cond:
            return self._loads

    @property
    def evictions(self) -> int:
        with self._cond:
            return self._evictions

    def close(self) -> Tuple[_ResidentTenant, ...]:
        """Stop loading/serving; hand the residents back for teardown."""
        with self._cond:
            self._closed = True
            residents = tuple(self._resident.values())
            self._resident.clear()
            self._cond.notify_all()
            return residents


class MultiTenantService:
    """Many corpora, one engine: the registry plus the shared components.

    The public surface mirrors :class:`ExpertService` with a leading
    ``tenant`` argument on every serving call.  One shared result cache,
    single-flight table, micro-batcher, worker pools, and fair admission
    controller serve every tenant; per-tenant isolation is by key prefix
    and per-tenant quota, not by duplicated infrastructure.
    """

    def __init__(
        self,
        specs: Iterable[TenantSpec],
        config: ServiceConfig | None = None,
        *,
        max_resident: Optional[int] = None,
        loader: Optional[Callable[[TenantSpec], object]] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self._loader = loader if loader is not None else _load_system
        self._cache = LRUCache(
            self.config.cache_capacity, self.config.cache_ttl_seconds
        )
        self._flight: SingleFlight | None = (
            SingleFlight() if self.config.single_flight else None
        )
        # a tenant without an explicit quota may fill the whole envelope
        self._admission = FairAdmissionController(
            max_in_flight=self.config.max_in_flight,
            timeout_seconds=self.config.admission_timeout_seconds,
            default_quota=TenantQuota(
                max_in_flight=self.config.max_in_flight,
                max_queue_depth=self.config.max_queue_depth,
            ),
        )
        self._detect_pool = WorkerPool(
            self.config.detection_workers, name="repro-detect"
        )
        self._batch_pool = WorkerPool(
            self.config.batch_workers, name="repro-batch"
        )
        self._batcher = MicroBatchScheduler(
            self._batch_pool,
            window_seconds=self.config.batch_window_seconds,
            max_batch=self.config.max_batch,
        )
        self._registry = TenantRegistry(
            specs,
            build_resident=self._build_resident,
            max_resident=max_resident,
        )
        for name in self._registry.names():
            self._admission.register(name, self._registry.spec(name).quota)
        self._staged_lock = threading.Lock()
        #: per-tenant staged generations awaiting promote
        self._staged: Dict[str, object] = {}  # guarded-by: _staged_lock
        # lock-free close flag, same discipline as ExpertService
        self._closed = False

    # -- wiring ------------------------------------------------------------------

    def _build_resident(self, spec: TenantSpec):
        system = self._loader(spec)
        service = ExpertService(
            system,
            self.config,
            tenant=spec.name,
            cache=self._cache,
            flight=self._flight,
            admission=self._admission,
            detect_pool=self._detect_pool,
            batcher=self._batcher,
        )
        return system, service

    # -- the serving surface -----------------------------------------------------

    def tenants(self) -> Tuple[str, ...]:
        """Every tenant this process serves (loaded or cold)."""
        return self._registry.names()

    def query(
        self,
        tenant: str,
        query: str,
        min_zscore: float | None = None,
        *,
        budget_seconds: float | None = None,
    ) -> ServedAnswer:
        if self._closed:
            raise ServiceClosedError("service is closed")
        resident = self._registry.acquire(tenant)
        try:
            return resident.service.query(
                query, min_zscore, budget_seconds=budget_seconds
            )
        finally:
            self._registry.release(resident)

    def score_partial(
        self,
        tenant: str,
        query: str,
        indexed_terms,
        *,
        budget_seconds: float | None = None,
    ) -> PartialPool:
        if self._closed:
            raise ServiceClosedError("service is closed")
        resident = self._registry.acquire(tenant)
        try:
            return resident.service.score_partial(
                query, indexed_terms, budget_seconds=budget_seconds
            )
        finally:
            self._registry.release(resident)

    def submit(self, tenant: str, query: str, min_zscore: float | None = None):
        """Micro-batched async submit; the tenant stays pinned until the
        future resolves (an eviction cannot close the service under a
        scheduled batch)."""
        if self._closed:
            raise ServiceClosedError("service is closed")
        resident = self._registry.acquire(tenant)
        try:
            future = resident.service.submit(query, min_zscore)
        except BaseException:
            self._registry.release(resident)
            raise
        future.add_done_callback(
            lambda _done: self._registry.release(resident)
        )
        return future

    # -- tenant-scoped refresh ---------------------------------------------------

    def refresh_domains(self, tenant: str, querylog_config=None) -> ServiceSnapshot:
        """One tenant's zero-downtime rebuild; every other tenant's
        snapshot (and warm cache) is untouched."""
        if self._closed:
            raise ServiceClosedError("service is closed")
        resident = self._registry.acquire(tenant)
        try:
            self._registry.mark_dirty(tenant)
            return resident.service.refresh_domains(querylog_config)
        finally:
            self._registry.release(resident)

    def refresh_delta(self, tenant: str, delta) -> ServiceSnapshot:
        """Incrementally fold a delta into one tenant only.

        Tenant-scoped by construction: the delta lands in this tenant's
        own :class:`ESharp`/:class:`SnapshotHolder`, so another tenant's
        version never moves and its cached answers stay warm.
        """
        if self._closed:
            raise ServiceClosedError("service is closed")
        resident = self._registry.acquire(tenant)
        try:
            self._registry.mark_dirty(tenant)
            return resident.service.refresh_delta(delta)
        finally:
            self._registry.release(resident)

    # -- tenant-scoped two-phase promotion (the fleet warm-start path) -----------

    def stage(self, tenant: str, artifact_dir: str) -> int:
        """Phase one of a tenant-scoped promote: load + verify the
        artifact off the serving path; returns the staged version."""
        if self._closed:
            raise ServiceClosedError("service is closed")
        resident = self._registry.acquire(tenant)
        try:
            staged = resident.system.stage_artifact(artifact_dir)
        finally:
            self._registry.release(resident)
        with self._staged_lock:
            self._staged[tenant] = staged
        return staged.version

    def promote(self, tenant: str, expected_version: int | None = None) -> int:
        """Phase two: atomically flip one tenant to its staged
        generation (CAS on ``expected_version``); other tenants' holders
        never rotate."""
        if self._closed:
            raise ServiceClosedError("service is closed")
        with self._staged_lock:
            staged = self._staged.pop(tenant, None)
        if staged is None:
            raise TenantStageError(
                f"tenant {tenant!r}: promote before stage"
            )
        resident = self._registry.acquire(tenant)
        try:
            self._registry.mark_dirty(tenant)
            snapshot = resident.system.promote_staged(
                staged, expected_version=expected_version
            )
            return snapshot.version
        finally:
            self._registry.release(resident)

    # -- observability -----------------------------------------------------------

    def tenant_version(self, tenant: str) -> Optional[int]:
        """The loaded tenant's current snapshot version (None when cold)."""
        self._registry.spec(tenant)  # typed error for unknown names
        for resident in self._registry.residents():
            if resident.spec.name == tenant:
                return resident.service.snapshot_version
        return None

    def _tenant_breakdown(self) -> Tuple[TenantHealth, ...]:
        return tuple(
            sorted(
                (
                    resident.service.tenant_health()
                    for resident in self._registry.residents()
                ),
                key=lambda health: health.tenant,
            )
        )

    def health(self) -> ReplicaHealthReport:
        """One replica-shaped report with the per-tenant breakdown.

        The scalar ``snapshot_version`` is the *default* tenant's (0
        when it is not resident) — real multi-tenant consumers read
        ``tenants`` and never the scalar.
        """
        breakdown = self._tenant_breakdown()
        admission = self._admission.stats()
        scalar_version = 0
        for entry in breakdown:
            if entry.tenant == DEFAULT_TENANT:
                scalar_version = entry.snapshot_version
        return ReplicaHealthReport(
            snapshot_version=scalar_version,
            cache_hit_ratio=self._cache.cache_info().hit_rate,
            requests=sum(entry.requests for entry in breakdown),
            partial_requests=sum(
                entry.partial_requests for entry in breakdown
            ),
            in_flight=admission.in_flight,
            waiting=admission.waiting,
            tenants=breakdown,
        )

    def stats(self) -> ServiceStats:
        """Aggregate counters in the familiar :class:`ServiceStats`
        shape, with the per-tenant breakdown in ``tenants``."""
        breakdown = self._tenant_breakdown()
        residents = self._registry.residents()
        refreshes = 0
        delta_refreshes = 0
        for resident in residents:
            resident_stats = resident.service.stats()
            refreshes += resident_stats.refreshes
            delta_refreshes += resident_stats.delta_refreshes
        scalar_version = 0
        for entry in breakdown:
            if entry.tenant == DEFAULT_TENANT:
                scalar_version = entry.snapshot_version
        flight = self._flight
        return ServiceStats(
            requests=sum(entry.requests for entry in breakdown),
            partial_requests=sum(
                entry.partial_requests for entry in breakdown
            ),
            refreshes=refreshes,
            delta_refreshes=delta_refreshes,
            snapshot_version=scalar_version,
            cache=self._cache.cache_info(),
            admission=self._admission.stats(),
            flight_leaders=flight.leaders if flight is not None else 0,
            flight_coalesced=flight.coalesced if flight is not None else 0,
            batches_dispatched=self._batcher.batches_dispatched,
            batch_coalesced=self._batcher.coalesced,
            detection_pool=self._detect_pool.stats(),
            tenants=breakdown,
        )

    def tenant_admission(self) -> Tuple[TenantAdmissionStats, ...]:
        return self._admission.tenant_stats()

    def describe_tenants(self) -> List[dict]:
        """The ``tenants`` introspection verb: every tenant (loaded or
        cold) with its directory, quota, version, and counters."""
        loaded = {
            resident.spec.name: resident
            for resident in self._registry.residents()
        }
        admission = {
            stats.tenant: stats for stats in self._admission.tenant_stats()
        }
        rows = []
        for name in sorted(self._registry.names()):
            spec = self._registry.spec(name)
            row: dict = {
                "tenant": name,
                "artifact_dir": str(spec.artifact_dir),
                "loaded": name in loaded,
                "snapshot_version": None,
            }
            quota = spec.quota
            row["quota"] = (
                None
                if quota is None
                else {
                    "max_in_flight": quota.max_in_flight,
                    "max_queue_depth": quota.max_queue_depth,
                    "weight": quota.weight,
                }
            )
            resident = loaded.get(name)
            if resident is not None:
                health = resident.service.tenant_health()
                row["snapshot_version"] = health.snapshot_version
                row["cache_hit_ratio"] = health.cache_hit_ratio
                row["requests"] = health.requests
                row["partial_requests"] = health.partial_requests
            gauge = admission.get(name)
            if gauge is not None:
                row["admission"] = {
                    "admitted": gauge.admitted,
                    "rejected_queue_full": gauge.rejected_queue_full,
                    "rejected_timeout": gauge.rejected_timeout,
                    "in_flight": gauge.in_flight,
                    "waiting": gauge.waiting,
                }
            rows.append(row)
        return rows

    @property
    def registry(self) -> TenantRegistry:
        return self._registry

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> bool:
        """Drain every tenant, then tear the shared components down."""
        self._closed = True
        self._admission.close()
        remaining = self._admission.drain(self.config.drain_timeout_seconds)
        for resident in self._registry.close():
            # shared components: this only flags the service closed and
            # re-drains its (already idle) tenant
            resident.service.close()
        self._batcher.close()
        self._batch_pool.shutdown()
        self._detect_pool.shutdown()
        return remaining == 0

    def __enter__(self) -> "MultiTenantService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class TenantClient:
    """A single-tenant view over a :class:`MultiTenantService`.

    Duck-types the slice of :class:`ExpertService` the load harness and
    the fleet benches use, so per-tenant workloads replay through the
    existing :class:`~repro.serving.loadgen.LoadGenerator` unchanged.
    """

    def __init__(self, service: MultiTenantService, tenant: str) -> None:
        service.registry.spec(tenant)  # typed error for unknown names
        self.service = service
        self.tenant = tenant

    def query(
        self,
        query: str,
        min_zscore: float | None = None,
        *,
        budget_seconds: float | None = None,
    ) -> ServedAnswer:
        return self.service.query(
            self.tenant, query, min_zscore, budget_seconds=budget_seconds
        )

    def submit(self, query: str, min_zscore: float | None = None):
        return self.service.submit(self.tenant, query, min_zscore)

    def tenant_health(self) -> TenantHealth:
        for entry in self.service.health().tenants:
            if entry.tenant == self.tenant:
                return entry
        return TenantHealth(
            tenant=self.tenant,
            snapshot_version=0,
            cache_hit_ratio=0.0,
            requests=0,
        )

    def stats(self) -> ServiceStats:
        return self.service.stats()


def _load_system(spec: TenantSpec):
    """Default tenant loader: warm-start the tenant's artifact directory."""
    from repro.core.esharp import ESharp

    return ESharp.from_artifact(spec.artifact_dir)

"""Admission control: bounded concurrency with backpressure.

An interactive service protects its latency target by refusing work it
cannot start soon, instead of queueing unboundedly.  The controller
tracks two populations: requests *executing* (at most ``max_in_flight``)
and requests *waiting* for a slot (at most ``max_queue_depth``).  A
request that would overflow the wait queue — or that waits longer than
``timeout_seconds`` — is rejected with a typed
:class:`~repro.serving.errors.ServiceOverloadedError` so clients can
back off deliberately.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.serving.errors import (
    AdmissionProtocolError,
    ServiceClosedError,
    ServiceOverloadedError,
)


@dataclass(frozen=True)
class AdmissionStats:
    """Counters for the ops surface (rejections are split by cause)."""

    admitted: int
    rejected_queue_full: int
    rejected_timeout: int
    in_flight: int
    waiting: int

    @property
    def rejected(self) -> int:
        return self.rejected_queue_full + self.rejected_timeout


class AdmissionController:
    """Slot-based admission with a bounded wait queue and wait deadline."""

    def __init__(
        self,
        max_in_flight: int = 16,
        max_queue_depth: int = 64,
        timeout_seconds: float = 5.0,
    ) -> None:
        if max_in_flight < 1:
            raise ValueError(f"max_in_flight must be >= 1, got {max_in_flight}")
        if max_queue_depth < 0:
            raise ValueError(
                f"max_queue_depth must be >= 0, got {max_queue_depth}"
            )
        if timeout_seconds <= 0:
            raise ValueError(
                f"timeout_seconds must be positive, got {timeout_seconds}"
            )
        self.max_in_flight = max_in_flight
        self.max_queue_depth = max_queue_depth
        self.timeout_seconds = timeout_seconds
        self._lock = threading.Lock()
        self._condition = threading.Condition(self._lock)
        #: signalled whenever the controller goes fully idle (drain())
        self._idle = threading.Condition(self._lock)
        self._in_flight = 0  # guarded-by: _condition
        self._waiting = 0  # guarded-by: _condition
        self._admitted = 0  # guarded-by: _condition
        self._rejected_queue_full = 0  # guarded-by: _condition
        self._rejected_timeout = 0  # guarded-by: _condition
        self._closed = False  # guarded-by: _condition

    @contextmanager
    def slot(self) -> Iterator[None]:
        """Hold one execution slot for the duration of the ``with`` body."""
        self.acquire()
        try:
            yield
        finally:
            self.release()

    def acquire(self) -> None:
        """Block until a slot frees up, or reject with backpressure."""
        deadline = time.monotonic() + self.timeout_seconds
        with self._condition:
            if self._closed:
                raise ServiceClosedError("admission controller is closed")
            if self._in_flight < self.max_in_flight:
                self._in_flight += 1
                self._admitted += 1
                return
            if self._waiting >= self.max_queue_depth:
                self._rejected_queue_full += 1
                raise ServiceOverloadedError(
                    "queue full",
                    in_flight=self._in_flight,
                    waiting=self._waiting,
                )
            self._waiting += 1
            try:
                while self._in_flight >= self.max_in_flight:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._condition.wait(remaining):
                        self._rejected_timeout += 1
                        # a release() may have notified *this* waiter in
                        # the instant its wait timed out; raising now
                        # would swallow that wakeup and leave a free slot
                        # idle while the remaining waiters run out their
                        # own deadlines — pass the baton on first
                        self._condition.notify()
                        raise ServiceOverloadedError(
                            "admission timeout",
                            in_flight=self._in_flight,
                            waiting=self._waiting,
                        )
                self._in_flight += 1
                self._admitted += 1
            finally:
                self._waiting -= 1
                self._notify_if_idle()

    def release(self) -> None:
        with self._condition:
            if self._in_flight <= 0:
                raise AdmissionProtocolError(
                    "release() without a matching acquire()"
                )
            self._in_flight -= 1
            self._condition.notify()
            self._notify_if_idle()

    def close(self) -> None:
        """Refuse all further admissions (typed); idempotent."""
        with self._condition:
            self._closed = True
            # wake every waiter: each re-checks and either proceeds into
            # a free slot (it was admitted to the queue before the
            # close) or keeps waiting out its own deadline
            self._condition.notify_all()

    def drain(self, timeout: float | None = None) -> int:
        """Block until no request is executing or waiting (or timeout).

        The serving tier's graceful shutdown: the caller first stops
        admitting new work (:meth:`close`), then drains, then tears down
        the pools the in-flight requests are still using.  Returns the
        number of requests still admitted or queued when the call gave
        up — ``0`` means the controller went fully idle, a positive
        count means the timeout expired with that many stragglers (a
        stuck worker therefore bounds shutdown instead of blocking it
        forever, and the caller knows exactly how much work it orphaned).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while self._in_flight > 0 or self._waiting > 0:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return self._in_flight + self._waiting
                self._idle.wait(remaining)
            return 0

    def _notify_if_idle(self) -> None:  # holds: _condition
        """Caller must hold the lock."""
        if self._in_flight == 0 and self._waiting == 0:
            self._idle.notify_all()

    @property
    def in_flight(self) -> int:
        with self._condition:
            return self._in_flight

    @property
    def waiting(self) -> int:
        with self._condition:
            return self._waiting

    def stats(self) -> AdmissionStats:
        with self._condition:
            return AdmissionStats(
                admitted=self._admitted,
                rejected_queue_full=self._rejected_queue_full,
                rejected_timeout=self._rejected_timeout,
                in_flight=self._in_flight,
                waiting=self._waiting,
            )

"""Single-flight execution: duplicate concurrent calls cost one pass.

Expert queries are heavily head-skewed (the Table 1 sets are drawn from
the most popular logged queries), so a traffic burst is dominated by
duplicates.  When several threads ask for the same key at the same time,
exactly one (the *leader*) computes; the rest (*followers*) block on the
leader's future and share its result — or its exception.  Combined with
the result cache this means a cold popular query is scored once, not
once per concurrent requester.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import Callable, Dict, Generic, Hashable, Tuple, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class SingleFlight(Generic[K, V]):
    """Coalesce concurrent calls with equal keys onto one execution."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: Dict[K, "Future[V]"] = {}  # guarded-by: _lock
        self._leaders = 0  # guarded-by: _lock
        self._coalesced = 0  # guarded-by: _lock

    def do(
        self,
        key: K,
        fn: Callable[[], V],
        timeout: float | None = None,
    ) -> Tuple[V, bool]:
        """Run ``fn`` once per in-flight ``key``.

        Returns ``(value, leader)`` where ``leader`` tells the caller
        whether *this* invocation computed the value (leaders typically
        go on to populate a cache; followers must not).  Exceptions from
        the leader propagate to every waiter.
        """
        with self._lock:
            existing = self._flights.get(key)
            if existing is not None:
                self._coalesced += 1
            else:
                flight: "Future[V]" = Future()
                self._flights[key] = flight
                self._leaders += 1

        if existing is not None:
            return existing.result(timeout=timeout), False

        # leader: compute outside the lock, publish, then retire the flight
        try:
            value = fn()
        except BaseException as exc:
            flight.set_exception(exc)
            raise
        else:
            flight.set_result(value)
            return value, True
        finally:
            with self._lock:
                self._flights.pop(key, None)

    @property
    def in_flight(self) -> int:
        with self._lock:
            return len(self._flights)

    @property
    def leaders(self) -> int:
        """How many calls actually executed their function."""
        with self._lock:
            return self._leaders

    @property
    def coalesced(self) -> int:
        """How many calls were served by someone else's execution."""
        with self._lock:
            return self._coalesced

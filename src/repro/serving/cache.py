"""The serving tier's result cache — a bounded LRU with TTL.

The unbounded per-term memoisation the detector shipped with is fine
for a one-shot evaluation sweep but fatal for a long-running service: a
heavy query stream touches an ever-growing key space.  The serving tier
keys this cache on ``(snapshot version, normalised query, threshold)``
so a domain refresh simply starts a new key space and old generations
age out via LRU.

The implementation lives in :mod:`repro.utils.cache` (a dependency-free
building block the detector layer also uses for its score memo); this
module is the serving tier's public name for it.
"""

from __future__ import annotations

from repro.utils.cache import CacheInfo, LRUCache

__all__ = ["CacheInfo", "LRUCache"]

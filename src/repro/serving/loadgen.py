"""Zipf workload replay + latency harness for the serving engine.

Web query traffic is famously head-skewed, and the paper's own
evaluation sets (Table 1) are drawn from the most popular logged
queries.  :func:`build_workload` reproduces that shape: it ranks the
simulated log's supported queries by popularity and samples requests
Zipf-distributed over that head, so a replayed workload is naturally
duplicate-heavy — exactly the regime the result cache and single-flight
are built for.

:class:`LoadGenerator` replays a workload from ``concurrency`` client
threads and aggregates per-stage latencies into a
:class:`LatencyReport` (throughput plus p50/p95/p99), the serving
analogue of the paper's Table 9 online-latency numbers.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.utils.stats import percentile
from repro.utils.zipf import ZipfSampler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.esharp import ESharp
    from repro.serving.service import ExpertService, ServiceConfig, ServiceStats


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of a replayed query stream."""

    requests: int = 200
    #: how many distinct queries the stream draws from (the "head")
    max_unique: int = 64
    #: Zipf skew; >1 concentrates traffic on the few most popular queries
    zipf_exponent: float = 1.1
    seed: int = 2016

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError(f"requests must be >= 1, got {self.requests}")
        if self.max_unique < 1:
            raise ValueError(f"max_unique must be >= 1, got {self.max_unique}")


def candidate_queries_from(store, domain_store, limit: int) -> List[str]:
    """The ``limit`` most popular supported queries of a query log.

    Falls back to domain-store keywords when the log yields nothing
    (tiny worlds), so the generator always has material.  Split from
    :func:`candidate_queries` so callers holding raw artifact stages (a
    fleet router warm-starts from the stage files, never building an
    :class:`ESharp`) can reuse the exact workload definition.
    """
    frequency = {
        query: store.query_count(query) for query in store.supported_queries()
    }
    ranked = sorted(frequency, key=lambda q: (-frequency[q], q))
    if not ranked:
        ranked = sorted(domain_store.known_keywords())[:limit]
    return ranked[:limit]


def candidate_queries(system: "ESharp", limit: int) -> List[str]:
    """The ``limit`` most popular supported queries of the simulated log."""
    return candidate_queries_from(
        system.offline.store, system.offline.domain_store, limit
    )


def build_workload_from(
    store, domain_store, config: WorkloadConfig | None = None
) -> List[str]:
    """Sample a duplicate-heavy request stream from raw artifact stages.

    The stage-level twin of :func:`build_workload`, for callers (the
    fleet CLI, fleet benches) that hold a query log + domain store
    without a built :class:`ESharp` system.
    """
    config = config or WorkloadConfig()
    head = candidate_queries_from(store, domain_store, config.max_unique)
    if not head:
        raise ValueError("no candidate queries available for the workload")
    sampler = ZipfSampler(
        len(head),
        exponent=config.zipf_exponent,
        rng=random.Random(config.seed),
    )
    return [head[sampler.sample()] for _ in range(config.requests)]


def build_workload(
    system: "ESharp", config: WorkloadConfig | None = None
) -> List[str]:
    """Sample a duplicate-heavy request stream over the popular head."""
    return build_workload_from(
        system.offline.store, system.offline.domain_store, config
    )


@dataclass(frozen=True)
class RequestRecord:
    """Outcome of one replayed request."""

    query: str
    ok: bool
    total_seconds: float
    expansion_seconds: float
    detection_seconds: float
    cache_hit: bool
    coalesced: bool
    snapshot_version: int
    error: str | None = None


@dataclass(frozen=True)
class LatencyReport:
    """Aggregated replay outcome — throughput and tail latencies."""

    requests: int
    errors: int
    concurrency: int
    wall_seconds: float
    #: successfully answered queries per second (rejections don't count)
    qps: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float
    expansion_p95_ms: float
    detection_p95_ms: float
    cache_hit_rate: float
    cache_hits: int
    coalesced: int
    snapshot_versions: tuple

    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["snapshot_versions"] = list(self.snapshot_versions)
        return payload

    def render(self, title: str = "serving replay") -> str:
        lines = [
            f"{title}",
            f"  requests:      {self.requests} "
            f"({self.errors} errors, concurrency={self.concurrency})",
            f"  throughput:    {self.qps:.1f} queries/sec "
            f"over {self.wall_seconds:.2f} s",
            f"  latency:       p50={self.p50_ms:.2f} ms  "
            f"p95={self.p95_ms:.2f} ms  p99={self.p99_ms:.2f} ms  "
            f"mean={self.mean_ms:.2f} ms",
            f"  stages (p95):  expansion={self.expansion_p95_ms:.2f} ms  "
            f"detection={self.detection_p95_ms:.2f} ms",
            f"  cache:         {self.cache_hits} hits "
            f"({self.cache_hit_rate:.1%}), {self.coalesced} coalesced",
            f"  snapshots:     versions seen {sorted(self.snapshot_versions)}",
        ]
        return "\n".join(lines)


class LoadGenerator:
    """Replay a workload against an :class:`ExpertService` from K threads."""

    def __init__(
        self,
        service: "ExpertService",
        workload: Sequence[str],
        concurrency: int = 1,
        min_zscore: float | None = None,
    ) -> None:
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        if not workload:
            raise ValueError("workload must not be empty")
        self.service = service
        self.workload = list(workload)
        self.concurrency = concurrency
        self.min_zscore = min_zscore

    def run(self) -> LatencyReport:
        records: List[Optional[RequestRecord]] = [None] * len(self.workload)
        cursor = iter(range(len(self.workload)))
        cursor_lock = threading.Lock()

        def worker() -> None:
            while True:
                with cursor_lock:
                    index = next(cursor, None)
                if index is None:
                    return
                records[index] = self._one(self.workload[index])

        threads = [
            threading.Thread(target=worker, name=f"loadgen-{i}", daemon=True)
            for i in range(self.concurrency)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - started
        done = [r for r in records if r is not None]
        return self._aggregate(done, wall)

    def _one(self, query: str) -> RequestRecord:
        started = time.perf_counter()
        try:
            answer = self.service.query(query, self.min_zscore)
        except Exception as exc:  # noqa: BLE001 - recorded, not fatal
            return RequestRecord(
                query=query,
                ok=False,
                total_seconds=time.perf_counter() - started,
                expansion_seconds=0.0,
                detection_seconds=0.0,
                cache_hit=False,
                coalesced=False,
                snapshot_version=0,
                error=f"{type(exc).__name__}: {exc}",
            )
        return RequestRecord(
            query=query,
            ok=True,
            total_seconds=answer.total_seconds,
            expansion_seconds=answer.expansion_seconds,
            detection_seconds=answer.detection_seconds,
            cache_hit=answer.cache_hit,
            coalesced=answer.coalesced,
            snapshot_version=answer.snapshot_version,
        )

    def _aggregate(
        self, records: List[RequestRecord], wall_seconds: float
    ) -> LatencyReport:
        ok = [r for r in records if r.ok]
        errors = len(records) - len(ok)
        totals = [r.total_seconds for r in ok] or [0.0]
        expansions = [r.expansion_seconds for r in ok if not r.cache_hit]
        detections = [r.detection_seconds for r in ok if not r.cache_hit]
        hits = sum(1 for r in ok if r.cache_hit)
        return LatencyReport(
            requests=len(records),
            errors=errors,
            concurrency=self.concurrency,
            wall_seconds=wall_seconds,
            qps=len(ok) / wall_seconds if wall_seconds > 0 else 0.0,
            p50_ms=percentile(totals, 0.50) * 1000,
            p95_ms=percentile(totals, 0.95) * 1000,
            p99_ms=percentile(totals, 0.99) * 1000,
            mean_ms=sum(totals) / len(totals) * 1000,
            expansion_p95_ms=percentile(expansions or [0.0], 0.95) * 1000,
            detection_p95_ms=percentile(detections or [0.0], 0.95) * 1000,
            cache_hit_rate=hits / len(ok) if ok else 0.0,
            cache_hits=hits,
            coalesced=sum(1 for r in ok if r.coalesced),
            snapshot_versions=tuple(sorted({r.snapshot_version for r in ok})),
        )


@dataclass(frozen=True)
class ServeOutcome:
    """A full `serve` run: baseline pass, measured pass, service counters."""

    report: LatencyReport
    baseline: LatencyReport | None
    stats: "ServiceStats"
    #: measured qps over serial-uncached qps (None when baseline skipped)
    speedup: float | None
    #: wall-clock of one zero-downtime domain rebuild (None when skipped)
    refresh_seconds: float | None = None
    #: wall-clock of one incremental (delta-ingest) refresh (None when skipped)
    delta_refresh_seconds: float | None = None

    def to_dict(self) -> dict:
        return {
            "qps": self.report.qps,
            "p50_ms": self.report.p50_ms,
            "p95_ms": self.report.p95_ms,
            "p99_ms": self.report.p99_ms,
            "mean_ms": self.report.mean_ms,
            "cache_hit_rate": self.report.cache_hit_rate,
            "coalesced": self.report.coalesced,
            "requests": self.report.requests,
            "errors": self.report.errors,
            "concurrency": self.report.concurrency,
            "baseline_qps": self.baseline.qps if self.baseline else None,
            "speedup_vs_serial": self.speedup,
            "snapshot_version": self.stats.snapshot_version,
            "refresh_seconds": self.refresh_seconds,
            "delta_refresh_seconds": self.delta_refresh_seconds,
            # the service's own vitals (vs the replay-side cache_hit_rate
            # above): the result cache's lifetime hit ratio and the
            # generation served — what a fleet router reads per replica
            "service": {
                "snapshot_version": self.stats.snapshot_version,
                "cache_hit_ratio": self.stats.cache_hit_ratio,
                "cache_hits": self.stats.cache.hits,
                "cache_lookups": self.stats.cache.lookups,
                "requests": self.stats.requests,
                "partial_requests": self.stats.partial_requests,
                # per-tenant version + hit-ratio breakdown: a scalar
                # version would silently alias tenants
                "tenants": {
                    tenant.tenant: tenant.to_dict()
                    for tenant in self.stats.tenants
                },
            },
        }

    def render(self) -> str:
        blocks = []
        if self.baseline is not None:
            blocks.append(
                self.baseline.render("baseline — concurrency 1, no cache")
            )
        blocks.append(self.report.render("serving engine — warm"))
        blocks.append(
            f"  service:       snapshot v{self.stats.snapshot_version}, "
            f"result-cache hit ratio {self.stats.cache_hit_ratio:.1%}"
        )
        if self.speedup is not None:
            blocks.append(f"  speedup:       {self.speedup:.1f}x over serial uncached")
        if self.refresh_seconds is not None:
            blocks.append(
                f"  domain refresh: {self.refresh_seconds:.2f}s "
                "(zero-downtime snapshot rebuild)"
            )
        if self.delta_refresh_seconds is not None:
            blocks.append(
                f"  delta refresh:  {self.delta_refresh_seconds:.2f}s "
                "(incremental ingest, zero-downtime swap)"
            )
        return "\n".join(blocks)


def run_serve(
    system: "ESharp",
    *,
    requests: int = 200,
    concurrency: int = 8,
    max_unique: int = 64,
    zipf_exponent: float = 1.1,
    seed: int = 2016,
    min_zscore: float | None = None,
    service_config: "ServiceConfig | None" = None,
    baseline: bool = True,
    warmup: bool = True,
    measure_refresh: bool = False,
) -> ServeOutcome:
    """Replay one Zipf workload through the serving engine, end to end.

    Runs (optionally) a *serial uncached* baseline pass first — one
    client thread, result cache and single-flight disabled, detector
    memo cleared — then the measured pass at ``concurrency`` against a
    fully-featured (and, by default, warmed) :class:`ExpertService`.
    Both passes start from cold detector caches, so the measured
    advantage is the serving tier's own work (result cache, coalescing,
    sharded detection), not leftover heat from the baseline.
    """
    from repro.serving.service import ExpertService, ServiceConfig

    workload = build_workload(
        system,
        WorkloadConfig(
            requests=requests,
            max_unique=max_unique,
            zipf_exponent=zipf_exponent,
            seed=seed,
        ),
    )

    baseline_report: LatencyReport | None = None
    if baseline:
        system.detector.cache_clear()
        serial_config = ServiceConfig(
            detection_workers=1,
            batch_workers=1,
            cache_capacity=0,
            single_flight=False,
            max_in_flight=1,
        )
        with ExpertService(system, serial_config) as serial:
            baseline_report = LoadGenerator(
                serial, workload, concurrency=1, min_zscore=min_zscore
            ).run()
        system.detector.cache_clear()

    service = ExpertService(system, service_config or ServiceConfig())
    refresh_seconds: float | None = None
    delta_refresh_seconds: float | None = None
    try:
        if warmup:
            for query in dict.fromkeys(workload):
                service.query(query, min_zscore)
        report = LoadGenerator(
            service, workload, concurrency=concurrency, min_zscore=min_zscore
        ).run()
        stats = service.stats()
        if measure_refresh:
            # one §6.3 weekly rebuild through the live service: extraction
            # (accumulator join) + clustering + atomic snapshot swap
            service.refresh_domains()
            refresh_seconds = service.stats().last_refresh_seconds
            # and one incremental refresh: a delta batch of ~1% of the
            # corpus fed through the resumable join + local clusterer.
            # The first delta after a full rebuild pays a one-off
            # re-seeding of the incremental state from the published
            # artifacts; a tiny warm-up batch absorbs that, so the
            # reported number is a steady-state delta refresh (matching
            # what bench_incremental.py measures)
            from dataclasses import replace as dc_replace

            from repro.querylog.generator import QueryLogGenerator

            log_config = system.config.querylog
            warm = QueryLogGenerator(
                system.offline.world,
                dc_replace(log_config, seed=log_config.seed + 2),
            )
            service.refresh_delta(
                list(warm.impressions(max(1, log_config.impressions // 1000)))
            )
            generator = QueryLogGenerator(
                system.offline.world,
                dc_replace(log_config, seed=log_config.seed + 1),
            )
            delta = list(
                generator.impressions(
                    max(1, log_config.impressions // 100)
                )
            )
            service.refresh_delta(delta)
            delta_refresh_seconds = service.stats().last_delta_refresh_seconds
    finally:
        service.close()

    speedup = None
    if baseline_report is not None and baseline_report.qps > 0:
        speedup = report.qps / baseline_report.qps
    return ServeOutcome(
        report=report,
        baseline=baseline_report,
        stats=stats,
        speedup=speedup,
        refresh_seconds=refresh_seconds,
        delta_refresh_seconds=delta_refresh_seconds,
    )

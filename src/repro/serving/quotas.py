"""Per-tenant admission quotas with weighted-fair scheduling.

The multi-tenant sibling of :mod:`repro.serving.admission`: one shared
execution capacity (``max_in_flight``) is split across tenants, each
bounded by its own :class:`TenantQuota` (concurrency cap, wait-queue
depth, fair-share weight).  A noisy tenant saturating its quota is
rejected with the *tenant-typed*
:class:`~repro.serving.errors.TenantOverloadedError`; tenants under
their quota keep being admitted, and when the shared capacity itself is
contended, freed slots are granted to the eligible waiting tenant with
the lowest ``in_flight / weight`` load — weighted fair sharing, so no
tenant starves behind another's backlog.

Grants are counters, not bare notifies: a freed slot is *reserved* for
the chosen tenant (``granted``) before its waiter wakes, so a wakeup
lost to a timing race cannot leak capacity — the next waiter of that
tenant consumes the grant instead.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from repro.serving.admission import AdmissionStats
from repro.serving.errors import (
    AdmissionProtocolError,
    ServiceClosedError,
    ServiceOverloadedError,
    TenantOverloadedError,
)


@dataclass(frozen=True)
class TenantQuota:
    """One tenant's admission envelope.

    ``max_in_flight`` caps the tenant's concurrent execution,
    ``max_queue_depth`` bounds how many of its requests may wait, and
    ``weight`` sets its share when freed capacity is contended (a
    weight-2 tenant is granted slots twice as readily as a weight-1
    tenant at equal load).
    """

    max_in_flight: int = 8
    max_queue_depth: int = 32
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.max_in_flight < 1:
            raise ValueError(
                f"max_in_flight must be >= 1, got {self.max_in_flight}"
            )
        if self.max_queue_depth < 0:
            raise ValueError(
                f"max_queue_depth must be >= 0, got {self.max_queue_depth}"
            )
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")


@dataclass(frozen=True)
class TenantAdmissionStats:
    """Per-tenant admission counters (the ops surface)."""

    tenant: str
    quota: TenantQuota
    admitted: int
    rejected_queue_full: int
    rejected_timeout: int
    in_flight: int
    waiting: int

    @property
    def rejected(self) -> int:
        return self.rejected_queue_full + self.rejected_timeout


class _TenantGate:
    """Mutable per-tenant admission state (all of it owned by the
    controller's single lock; the per-tenant ``condition`` is built over
    that same lock so waiters of one tenant wake independently)."""

    __slots__ = (
        "name",
        "quota",
        "condition",
        "in_flight",
        "waiting",
        "granted",
        "admitted",
        "rejected_queue_full",
        "rejected_timeout",
    )

    def __init__(
        self, name: str, quota: TenantQuota, lock: threading.Lock
    ) -> None:
        self.name = name
        self.quota = quota  # guarded-by: condition
        self.condition = threading.Condition(lock)
        self.in_flight = 0  # guarded-by: condition
        self.waiting = 0  # guarded-by: condition
        #: slots reserved for this tenant's waiters but not yet consumed
        self.granted = 0  # guarded-by: condition
        self.admitted = 0  # guarded-by: condition
        self.rejected_queue_full = 0  # guarded-by: condition
        self.rejected_timeout = 0  # guarded-by: condition

    def load(self) -> float:  # holds: condition
        """Weighted occupancy — the fair-share comparison key."""
        return (self.in_flight + self.granted) / self.quota.weight

    def busy(self) -> int:  # holds: condition
        return self.in_flight + self.waiting + self.granted


class FairAdmissionController:
    """Shared-capacity admission split into per-tenant quotas.

    API-compatible with :class:`AdmissionController` except that
    :meth:`slot`/:meth:`acquire`/:meth:`release` take the tenant name;
    the ``per_tenant`` class flag lets callers detect which flavour they
    were handed (mirroring the fleet's ``supports_budget`` duck-typing).
    """

    #: duck-type marker: slot()/acquire()/release() take a tenant name
    per_tenant = True

    def __init__(
        self,
        max_in_flight: int = 32,
        timeout_seconds: float = 5.0,
        default_quota: TenantQuota | None = None,
    ) -> None:
        if max_in_flight < 1:
            raise ValueError(f"max_in_flight must be >= 1, got {max_in_flight}")
        if timeout_seconds <= 0:
            raise ValueError(
                f"timeout_seconds must be positive, got {timeout_seconds}"
            )
        self.max_in_flight = max_in_flight
        self.timeout_seconds = timeout_seconds
        self.default_quota = default_quota or TenantQuota()
        self._lock = threading.Lock()
        #: signalled on every completion so drains re-check their tenant
        self._idle = threading.Condition(self._lock)
        self._gates: Dict[str, _TenantGate] = {}  # guarded-by: _idle
        self._in_flight = 0  # guarded-by: _idle
        #: reserved-but-unconsumed grants across all tenants
        self._granted = 0  # guarded-by: _idle
        self._admitted = 0  # guarded-by: _idle
        self._rejected_queue_full = 0  # guarded-by: _idle
        self._rejected_timeout = 0  # guarded-by: _idle
        self._closed = False  # guarded-by: _idle

    # -- registration ------------------------------------------------------------

    def register(self, tenant: str, quota: TenantQuota | None = None) -> None:
        """Declare a tenant's quota (first use auto-registers the default)."""
        with self._idle:
            gate = self._gates.get(tenant)
            if gate is None:
                self._gates[tenant] = _TenantGate(
                    tenant, quota or self.default_quota, self._lock
                )
            elif quota is not None:
                gate.quota = quota
                self._issue_grants()

    def _gate(self, tenant: str) -> _TenantGate:  # holds: _idle
        gate = self._gates.get(tenant)
        if gate is None:
            gate = _TenantGate(tenant, self.default_quota, self._lock)
            self._gates[tenant] = gate
        return gate

    # -- the admission protocol ---------------------------------------------------

    @contextmanager
    def slot(self, tenant: str) -> Iterator[None]:
        """Hold one of ``tenant``'s execution slots for the ``with`` body."""
        self.acquire(tenant)
        try:
            yield
        finally:
            self.release(tenant)

    def acquire(self, tenant: str) -> None:
        """Block until the tenant gets a slot, or reject typed.

        Rejection typing is the contract: a tenant at *its own*
        concurrency or queue cap fails with
        :class:`TenantOverloadedError`; a tenant under its quota that
        times out purely on global saturation fails with the plain
        :class:`ServiceOverloadedError` — so callers can tell "you are
        the noisy one" from "the box is full".
        """
        deadline = time.monotonic() + self.timeout_seconds
        with self._idle:
            if self._closed:
                raise ServiceClosedError("admission controller is closed")
            gate = self._gate(tenant)
            if (
                gate.waiting == 0
                and gate.granted == 0
                and gate.in_flight < gate.quota.max_in_flight
                and self._in_flight + self._granted < self.max_in_flight
            ):
                gate.in_flight += 1
                gate.admitted += 1
                self._in_flight += 1
                self._admitted += 1
                return
            if gate.waiting >= gate.quota.max_queue_depth:
                gate.rejected_queue_full += 1
                self._rejected_queue_full += 1
                raise TenantOverloadedError(
                    tenant,
                    "queue full",
                    in_flight=gate.in_flight,
                    waiting=gate.waiting,
                )
            gate.waiting += 1
            try:
                while True:
                    if gate.granted > 0:
                        gate.granted -= 1
                        self._granted -= 1
                        gate.in_flight += 1
                        gate.admitted += 1
                        self._in_flight += 1
                        self._admitted += 1
                        return
                    if self._closed:
                        raise ServiceClosedError(
                            "admission controller is closed"
                        )
                    remaining = deadline - time.monotonic()
                    # gate.condition wraps the held lock: wait() releases it
                    if remaining <= 0 or not gate.condition.wait(remaining):  # analysis: ignore[LOCK002]
                        if gate.granted > 0:
                            # a grant landed in the same instant the wait
                            # timed out — consume it instead of leaking
                            # the reserved slot
                            continue
                        gate.rejected_timeout += 1
                        self._rejected_timeout += 1
                        if (
                            gate.in_flight + gate.granted
                            >= gate.quota.max_in_flight
                        ):
                            raise TenantOverloadedError(
                                tenant,
                                "admission timeout",
                                in_flight=gate.in_flight,
                                waiting=gate.waiting,
                            )
                        raise ServiceOverloadedError(
                            "admission timeout",
                            in_flight=self._in_flight,
                            waiting=gate.waiting,
                        )
            finally:
                gate.waiting -= 1
                # a departing waiter can unblock a grant decision (its
                # tenant may no longer be the fair-share argmin)
                self._issue_grants()
                self._idle.notify_all()

    def release(self, tenant: str) -> None:
        with self._idle:
            gate = self._gates.get(tenant)
            if gate is None or gate.in_flight <= 0:
                raise AdmissionProtocolError(
                    f"release({tenant!r}) without a matching acquire()"
                )
            gate.in_flight -= 1
            self._in_flight -= 1
            self._issue_grants()
            self._idle.notify_all()

    def _issue_grants(self) -> None:  # holds: _idle
        """Hand freed capacity to waiters, weighted-fair.

        While shared capacity remains, pick the tenant with an ungranted
        waiter, headroom under its own cap, and the lowest weighted
        occupancy ``(in_flight + granted) / weight`` (ties to the
        lexicographically first name, for determinism); reserve the slot
        and wake exactly one of its waiters.
        """
        while self._in_flight + self._granted < self.max_in_flight:
            best: Optional[_TenantGate] = None
            for gate in self._gates.values():
                if gate.waiting <= gate.granted:
                    continue  # no waiter without a pending grant
                if gate.in_flight + gate.granted >= gate.quota.max_in_flight:
                    continue  # tenant at its own cap
                if (
                    best is None
                    or gate.load() < best.load()
                    or (gate.load() == best.load() and gate.name < best.name)
                ):
                    best = gate
            if best is None:
                return
            best.granted += 1
            self._granted += 1
            best.condition.notify()

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Refuse all further admissions (typed); idempotent.

        Waiters holding a reserved grant still proceed into their slot;
        ungranted waiters fail with :class:`ServiceClosedError` on the
        next wakeup instead of running out their deadlines.
        """
        with self._idle:
            self._closed = True
            for gate in self._gates.values():
                gate.condition.notify_all()
            self._idle.notify_all()

    def drain(self, timeout: float | None = None) -> int:
        """Block until no tenant has work executing or waiting.

        Returns the number of still-busy requests when the timeout
        expired (``0`` = fully idle), like
        :meth:`AdmissionController.drain`.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while True:
                busy = sum(gate.busy() for gate in self._gates.values())
                if busy == 0:
                    return 0
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return busy
                self._idle.wait(remaining)

    def drain_tenant(self, tenant: str, timeout: float | None = None) -> int:
        """Block until one tenant's requests have all completed.

        The shared-controller analogue of a single service's drain: a
        tenant being closed or evicted waits out only *its own*
        in-flight work, leaving every other tenant serving.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while True:
                gate = self._gates.get(tenant)
                busy = 0 if gate is None else gate.busy()
                if busy == 0:
                    return 0
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return busy
                self._idle.wait(remaining)

    # -- observability -----------------------------------------------------------

    def tenant_busy(self, tenant: str) -> int:
        """Instantaneous executing+waiting+granted count for one tenant."""
        with self._idle:
            gate = self._gates.get(tenant)
            return 0 if gate is None else gate.busy()

    @property
    def in_flight(self) -> int:
        with self._idle:
            return self._in_flight

    @property
    def waiting(self) -> int:
        with self._idle:
            return sum(gate.waiting for gate in self._gates.values())

    def stats(self) -> AdmissionStats:
        """Aggregate counters, shaped like the single-tenant controller's."""
        with self._idle:
            return AdmissionStats(
                admitted=self._admitted,
                rejected_queue_full=self._rejected_queue_full,
                rejected_timeout=self._rejected_timeout,
                in_flight=self._in_flight,
                waiting=sum(g.waiting for g in self._gates.values()),
            )

    def tenant_stats(self) -> Tuple[TenantAdmissionStats, ...]:
        with self._idle:
            return tuple(
                TenantAdmissionStats(
                    tenant=gate.name,
                    quota=gate.quota,
                    admitted=gate.admitted,
                    rejected_queue_full=gate.rejected_queue_full,
                    rejected_timeout=gate.rejected_timeout,
                    in_flight=gate.in_flight,
                    waiting=gate.waiting,
                )
                for gate in sorted(
                    self._gates.values(), key=lambda g: g.name
                )
            )
